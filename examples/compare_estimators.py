"""Head-to-head estimator comparison on the DMV-like table (Table 2 style).

Runs the full baseline zoo — query-driven, data-driven, hybrid — under a
shared memory budget and prints the paper's error quantiles for both
in-workload and random (out-of-workload) test queries.

Run:  python examples/compare_estimators.py
"""

import numpy as np

from repro import UAE, load
from repro.estimators import (BayesNetEstimator, FeedbackKDEEstimator,
                              KDEEstimator, LinearRegressionEstimator,
                              MSCNBase, MSCNSampling, Naru, SamplingEstimator,
                              SPNEstimator)
from repro.workload import generate_inworkload, generate_random, summarize


def main() -> None:
    table = load("dmv", rows=10_000)
    rng = np.random.default_rng(1)
    train = generate_inworkload(table, 300, rng)
    test_in = generate_inworkload(table, 80, rng)
    test_rand = generate_random(table, 80, rng)

    nn_kwargs = dict(hidden=64, num_blocks=2, est_samples=128,
                     dps_samples=8, seed=0)
    uae = UAE(table, **nn_kwargs)
    uae.fit(epochs=5, workload=train, mode="hybrid")

    naru = Naru(table, **nn_kwargs)
    naru.fit(epochs=5)

    # Sample sizes follow the paper's budget-derived ratio for DMV (0.2%);
    # matching raw bytes at this reduced row count would hand the
    # sampling-based estimators the entire table.
    fraction = 0.002
    sample_rows = max(24, int(fraction * table.num_rows))
    estimators = [
        LinearRegressionEstimator(table).fit(train),
        MSCNBase(table, epochs=40).fit(train),
        SamplingEstimator(table, fraction=fraction),
        BayesNetEstimator(table),
        KDEEstimator(table, sample_size=sample_rows),
        SPNEstimator(table),
        naru,
        MSCNSampling(table, epochs=40,
                     sample_budget_bytes=4 * table.num_cols
                     * sample_rows).fit(train),
        FeedbackKDEEstimator(table, sample_size=sample_rows).fit(train),
        uae,
    ]

    print(f"{'model':>14} | {'size':>7} | "
          f"{'in: mean/median/max':>24} | {'rand: mean/median/max':>24}")
    print("-" * 82)
    for est in estimators:
        ein = summarize(est.estimate_many(test_in.queries),
                        test_in.cardinalities)
        era = summarize(est.estimate_many(test_rand.queries),
                        test_rand.cardinalities)
        size_kb = est.size_bytes() / 1024
        print(f"{est.name:>14} | {size_kb:>5.0f}KB | "
              f"{ein.mean:>7.2f} {ein.median:>7.2f} {ein.maximum:>8.1f} | "
              f"{era.mean:>7.2f} {era.median:>7.2f} {era.maximum:>8.1f}")


if __name__ == "__main__":
    main()
