"""Answering SQL text with UAE: the parser + inclusion-exclusion in action.

``repro.workload.parse_query`` understands the conjunctive fragment the
paper's estimator supports, plus OR (answered through inclusion-exclusion,
Section 3), IN lists and BETWEEN.

Run:  python examples/sql_interface.py
"""

import numpy as np

from repro import UAE, load
from repro.workload import (DNFQuery, estimate_disjunction,
                            generate_inworkload, parse_query,
                            true_cardinality, true_disjunction_cardinality)


def main() -> None:
    table = load("dmv", rows=10_000)
    rng = np.random.default_rng(0)
    model = UAE(table, hidden=64, num_blocks=2, seed=0)
    model.fit(epochs=5, workload=generate_inworkload(table, 200, rng),
              mode="hybrid")

    statements = [
        "SELECT COUNT(*) FROM dmv WHERE county <= 300 AND body_type = 3",
        "SELECT COUNT(*) FROM dmv WHERE model_year BETWEEN 20 AND 60",
        "SELECT COUNT(*) FROM dmv WHERE color_code IN ('BK', 'WH')",
        "SELECT COUNT(*) FROM dmv WHERE county <= 100 OR county >= 1800",
        "SELECT COUNT(*) FROM dmv WHERE (fuel_type = 1 OR fuel_type = 3) "
        "AND scofflaw = 0",
    ]
    for sql in statements:
        parsed = parse_query(sql)
        if isinstance(parsed, DNFQuery):
            est = estimate_disjunction(model, parsed)
            truth = true_disjunction_cardinality(table, parsed)
        else:
            est = model.estimate(parsed)
            truth = true_cardinality(table, parsed)
        q = max(est, 1) / max(truth, 1)
        q = max(q, 1 / q)
        print(f"{sql}\n  -> estimate {est:,.0f}   truth {truth:,}   "
              f"q-error {q:.2f}\n")


if __name__ == "__main__":
    main()
