"""Incremental query workload (paper Section 4.5 / Table 6).

A DMV-like table is queried by workloads whose focus drifts across the
bounded attribute (think: analysts moving from 1990s registrations to
2020s).  A stale data-only model (Naru) cannot use the new feedback; UAE
ingests each workload partition with a few query-loss epochs and stays
accurate — without retraining from scratch.

Run:  python examples/workload_shift.py
"""

import numpy as np

from repro import UAE, load
from repro.estimators import Naru
from repro.workload import generate_shifted_partitions, summarize


def main() -> None:
    table = load("dmv", rows=10_000)
    rng = np.random.default_rng(7)
    partitions = generate_shifted_partitions(
        table, n_parts=4, train_per_part=300, test_per_part=40, rng=rng)

    shared = dict(hidden=64, num_blocks=2, est_samples=128, dps_samples=8,
                  batch_size=512, seed=0)
    naru = Naru(table, **shared)
    naru.fit(epochs=6)
    # Same starting knowledge; refinement uses more DPS samples.
    uae = naru.clone(dps_samples=16)

    print(f"{'partition':>9} | {'Naru (stale)':>14} | {'UAE (refined)':>14}")
    print("-" * 45)
    for i, (train, test) in enumerate(partitions, start=1):
        uae.ingest_queries(train, epochs=10)
        naru_err = summarize(naru.estimate_many(test.queries),
                             test.cardinalities)
        uae_err = summarize(uae.estimate_many(test.queries),
                            test.cardinalities)
        print(f"{i:>9} | {naru_err.mean:>14.3f} | {uae_err.mean:>14.3f}")
    print("\n(mean q-error per partition; lower is better)")


if __name__ == "__main__":
    main()
