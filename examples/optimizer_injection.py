"""Injecting learned cardinalities into a query optimizer (Figure 6).

The Selinger-style DP planner in ``repro.optimizer`` accepts any
cardinality provider, exactly like the paper's modified PostgreSQL.  This
example plans multi-way join queries with (a) Postgres-style heuristics,
(b) a trained UAE, and (c) true cardinalities, then scores every chosen
plan with true costs to show how better estimates buy better plans.

Run:  python examples/optimizer_injection.py
"""

import numpy as np

from repro.data.schema import make_imdb_large
from repro.joins import UAEJoin
from repro.joins.workload import generate_job_m_focused
from repro.optimizer import (EstimatorCardAdapter, PostgresHeuristic,
                             TrueCardOracle, plan_cost, plan_for_query,
                             run_optimizer_study)


def main() -> None:
    schema = make_imdb_large(n_titles=2000)
    rng = np.random.default_rng(4)
    train = generate_job_m_focused(schema, 120, rng)
    test = generate_job_m_focused(schema, 20, rng)

    uae = UAEJoin(schema, sample_size=8000, hidden=64, num_blocks=2,
                  est_samples=96, dps_samples=8, batch_size=512,
                  lam=1e-3, seed=0)
    uae.fit(epochs=5, workload=train, mode="hybrid")

    # Show one query's plans side by side.
    query = test.queries[0]
    oracle = TrueCardOracle(schema)
    postgres = PostgresHeuristic(schema)
    adapters = {
        "PostgreSQL": postgres.card_fn(query),
        "UAE": EstimatorCardAdapter(uae, "UAE").card_fn(query),
        "TrueCard": oracle.card_fn(query),
    }
    print(f"query: {query}\n")
    true_fn = oracle.card_fn(query)
    for name, fn in adapters.items():
        plan = plan_for_query(schema, list(query.tables), fn)
        cost = plan_cost(plan, true_fn)
        print(f"{name:>11}: plan {plan}  -> true cost {cost:,.0f}")

    # Aggregate speedups over the workload.
    results = run_optimizer_study(schema, test.queries,
                                  [EstimatorCardAdapter(uae, "UAE")])
    print("\nspeedup vs the PostgreSQL-heuristic plan "
          "(per-query execution-cost ratio):")
    for r in results:
        s = r.summary()
        print(f"{r.estimator:>11}: median {s['median']:.3f}  "
              f"mean {s['mean']:.3f}  p10 {s['p10']:.3f}  p90 {s['p90']:.3f}")


if __name__ == "__main__":
    main()
