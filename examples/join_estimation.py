"""Multi-table join estimation on the IMDB-like star schema (Table 5).

Trains the join variant of UAE on an Exact-Weight sample of the full outer
join (with indicator + fanout columns, Section 4.6) and compares it with
NeuroCard (= the same estimator, data-only) and DeepDB's SPN on both the
focused template workload and the JOB-light-style random workload.

Run:  python examples/join_estimation.py
"""

import numpy as np

from repro.data.schema import make_imdb
from repro.joins import (NeuroCard, SPNJoin, UAEJoin, generate_job_light,
                         generate_job_light_ranges_focused)
from repro.workload import summarize


def main() -> None:
    schema = make_imdb(n_titles=3000)
    rng = np.random.default_rng(3)
    train = generate_job_light_ranges_focused(schema, 150, rng)
    test_focused = generate_job_light_ranges_focused(schema, 50, rng)
    test_light = generate_job_light(schema, 50, rng)

    shared = dict(sample_size=8000, seed=0)
    # lam=10 is the paper's IMDB setting (Section 5.1.4).
    nn_kwargs = dict(hidden=64, num_blocks=2, est_samples=128,
                     dps_samples=8, batch_size=512, lam=10.0)

    estimators = []
    deepdb = SPNJoin(schema, **shared)
    estimators.append(("DeepDB", deepdb))
    neurocard = NeuroCard(schema, **shared, **nn_kwargs)
    neurocard.fit(epochs=10)
    estimators.append(("NeuroCard", neurocard))
    uae = UAEJoin(schema, **shared, **nn_kwargs)
    uae.fit(epochs=10, workload=train, mode="hybrid")
    estimators.append(("UAE", uae))

    print(f"{'model':>10} | {'focused (median/95/max)':>28} | "
          f"{'JOB-light (median/95/max)':>28}")
    print("-" * 75)
    for name, est in estimators:
        foc = summarize(est.estimate_many(test_focused.queries),
                        test_focused.cardinalities)
        lig = summarize(est.estimate_many(test_light.queries),
                        test_light.cardinalities)
        print(f"{name:>10} | {foc.median:>8.2f} {foc.p95:>8.2f} "
              f"{foc.maximum:>9.1f} | {lig.median:>8.2f} {lig.p95:>8.2f} "
              f"{lig.maximum:>9.1f}")


if __name__ == "__main__":
    main()
