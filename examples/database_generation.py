"""Database generation from the trained model (paper Section 6).

UAE is a *generative* model: unlike discriminative query-driven
estimators, sampling tuples from it needs no normalizing constant — just
ancestral sampling down the autoregressive chain.  The paper highlights
this as the future-work path to query-aware test-database generation for
DBMS testing and benchmarking.

This example trains on a Census-like table, generates a synthetic clone,
and compares marginals / correlation / query answers between the two.

Run:  python examples/database_generation.py
"""

import numpy as np

from repro import UAE, load
from repro.data.stats import dataset_skewness, ncie
from repro.workload import generate_inworkload, qerrors, true_cardinality


def main() -> None:
    source = load("census", rows=8000)
    model = UAE(source, hidden=64, num_blocks=2, wildcard_max_frac=0.25,
                seed=0)
    model.fit(epochs=20, mode="data")

    clone = model.sample_table(8000, seed=1)
    print(f"source: {source}")
    print(f"clone : {clone}\n")

    print("distribution statistics (source vs generated):")
    print(f"  frequency skewness: {dataset_skewness(source.codes):.2f} vs "
          f"{dataset_skewness(clone.codes):.2f}")
    print(f"  NCIE correlation  : {ncie(source.codes):.3f} vs "
          f"{ncie(clone.codes):.3f}")

    # The acid test for DBMS benchmarking: queries should return similar
    # cardinalities on the generated database.
    rng = np.random.default_rng(2)
    workload = generate_inworkload(source, 50, rng)
    ratios = []
    for query in workload.queries:
        real = true_cardinality(source, query)
        fake = true_cardinality(clone, query)
        ratios.append(max(fake, 1) / max(real, 1))
    ratios = np.array(ratios)
    print("\nper-query cardinality ratio clone/source:")
    print(f"  median {np.median(ratios):.2f}   "
          f"p10 {np.percentile(ratios, 10):.2f}   "
          f"p90 {np.percentile(ratios, 90):.2f}")


if __name__ == "__main__":
    main()
