"""Quickstart: train UAE on a table + workload, then estimate cardinalities.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import UAE, Predicate, Query, load
from repro.workload import generate_inworkload, summarize


def main() -> None:
    # 1. A table.  ``load`` ships synthetic stand-ins for the paper's
    #    datasets; swap in your own via Table.from_raw(...).
    table = load("census", rows=8000)
    print(f"table: {table}")

    # 2. A labeled query workload (here: generated the way the paper does;
    #    in production this is your query log with observed cardinalities).
    rng = np.random.default_rng(0)
    workload = generate_inworkload(table, 300, rng)
    print(f"workload: {len(workload)} labeled queries")

    # 3. One model, both information sources (Algorithm 3).
    model = UAE(table, hidden=64, num_blocks=2, est_samples=128,
                dps_samples=8, lam=1e-4, seed=0)
    model.fit(epochs=5, workload=workload, mode="hybrid")

    # 4. Estimate any conjunctive query.
    age = table.column("age")
    query = Query((
        Predicate("age", ">=", int(age.values[10])),
        Predicate("age", "<=", int(age.values[40])),
        Predicate("sex", "=", 1),
    ))
    from repro.workload import true_cardinality
    est = model.estimate(query)
    truth = true_cardinality(table, query)
    print(f"\nquery: {query}")
    print(f"estimate = {est:.0f}   truth = {truth}   "
          f"q-error = {max(est, 1) / max(truth, 1):.2f}")

    # 5. Batch evaluation with the paper's metric.
    test = generate_inworkload(table, 100, rng)
    errors = summarize(model.estimate_many(test.queries),
                       test.cardinalities)
    print(f"\nheld-out in-workload q-errors: {errors}")
    print(f"model size: {model.size_bytes() / 1024:.0f} KB")


if __name__ == "__main__":
    main()
