"""Gradient-parity checks: fused kernels vs. the legacy autograd path.

The training engine's contract is *numerical equivalence*: on the same
weights, the same batch, and the same random draws, the fused data-loss
backward and the fused DPS backward must reproduce the legacy graph's
parameter gradients to float32 rounding.  These helpers drive that
comparison; ``python -m repro.bench training`` records the result in
``BENCH_train.json`` and raises when it fails, and
``tests/test_train_engine.py`` asserts it on small models.
"""

from __future__ import annotations

from typing import Callable

import numpy as np


def collect_grads(module) -> dict[str, np.ndarray]:
    """Copy every parameter gradient (gradient buffers are pooled, so a
    later backward would overwrite live references)."""
    out: dict[str, np.ndarray] = {}
    for name, param in module._iter_named_params(""):
        out[name] = (np.zeros_like(param.data) if param.grad is None
                     else param.grad.copy())
    return out


def max_grad_diff(a: dict[str, np.ndarray], b: dict[str, np.ndarray]) -> float:
    """Largest absolute elementwise gradient difference across parameters."""
    worst = 0.0
    for name in a:
        worst = max(worst, float(np.abs(a[name] - b[name]).max()))
    return worst


def gradient_parity(make_uae: Callable[[str], "object"],
                    batch_codes: np.ndarray,
                    constraints: list[list],
                    true_sels: np.ndarray,
                    tolerance: float = 1e-4) -> dict:
    """Compare data-loss and query-loss gradients across backends.

    ``make_uae(backend)`` must build identically-seeded estimators whose
    only difference is ``train_backend`` — both then consume their RNG
    streams (wildcard dropout, Gumbel noise) draw for draw.  Returns the
    max abs gradient diffs, the loss-value diffs, and a ``passed`` flag
    against ``tolerance``.
    """
    grads: dict[tuple[str, str], dict[str, np.ndarray]] = {}
    losses: dict[tuple[str, str], float] = {}
    for backend in ("legacy", "engine"):
        uae = make_uae(backend)
        loss = uae.data_loss(np.asarray(batch_codes))
        uae.model.zero_grad()
        loss.backward()
        grads[("data", backend)] = collect_grads(uae.model)
        losses[("data", backend)] = loss.item()

        qloss = uae.query_loss(constraints, np.asarray(true_sels))
        uae.model.zero_grad()
        qloss.backward()
        grads[("query", backend)] = collect_grads(uae.model)
        losses[("query", backend)] = qloss.item()

    data_diff = max_grad_diff(grads[("data", "legacy")],
                              grads[("data", "engine")])
    query_diff = max_grad_diff(grads[("query", "legacy")],
                               grads[("query", "engine")])
    return {
        "tolerance": tolerance,
        "data_max_abs_grad_diff": data_diff,
        "query_max_abs_grad_diff": query_diff,
        "data_loss_abs_diff": abs(losses[("data", "legacy")]
                                  - losses[("data", "engine")]),
        "query_loss_abs_diff": abs(losses[("query", "legacy")]
                                   - losses[("query", "engine")]),
        "passed": bool(data_diff < tolerance and query_diff < tolerance),
    }
