"""Vectorized differentiable progressive sampling (the DPS fast path).

Same estimator as :meth:`repro.core.dps.DifferentiableProgressiveSampler.
estimate_batch_legacy` — Algorithm 2 with Gumbel-Softmax draws — rebuilt
as one hand-written forward/backward kernel:

* **Persistent input buffer.**  The legacy loop rebuilt the full encoded
  input via ``concatenate(segments)`` at every sampling position (one
  graph node + a batch-width copy per step).  Here soft encodings are
  written into one pooled ``[batch, input_width]`` buffer in place;
  unqueried columns' segments are never touched.
* **Step-0 wildcard dedup.**  Every (query, sample) row is identical at
  the first sampled column — all-wildcard input — so the first trunk
  forward (and its backward) runs on a single row, exactly the trick the
  inference engine plays with its wildcard-state cache.
* **Prefix-width trunks.**  Hidden degrees are sorted (see
  :func:`repro.nn.made.hidden_degrees`), so the logits of the column at
  position ``p`` depend only on the first ``hidden_prefix[p]`` hidden
  units; every per-step GEMM — trunk, head, and their backwards — runs
  on that prefix.  Early (large-domain, factorized) columns therefore
  touch a sliver of the network.
* **One hand-derived backward.**  Gradients for the whole sampled chain
  (softmax -> truncate -> GS-sample -> encode -> next step) are computed
  in numpy and written straight into parameter ``.grad`` buffers — no
  per-op closures.  Two MADE-mask facts make this compact: (1) the
  gradient reaching hidden units at step *t* is confined to the step's
  prefix, whose units only read input slots finalized *before* step t —
  the input-layer weight gradient of every step therefore contracts
  against the **final** input buffer in a single GEMM; (2) each column's
  segment is written at most once, so the gradient w.r.t. the input
  buffer (``gx``) routes each slice to exactly one step's soft sample.
* **Normalizer-free GS scores.**  The legacy path materialises the
  truncated ``log_softmax`` before adding Gumbel noise; a softmax is
  invariant to per-row constants, so the sample only needs the
  *unnormalised* truncated log-probabilities ``logits + log(weight)``
  (``log(0) = -inf`` clamped to the legacy ``NEG_INF`` fill).  That
  removes the mask-fill/exp/normalise passes from the forward and the
  whole log-softmax term from the backward — its row-sum is identically
  zero, which is also why gradients at masked-out categories vanish
  exactly, matching the legacy ``where``.

Draw-for-draw parity: the Gumbel stream is consumed with the same shapes
in the same order as the legacy path, and per-row constant shifts cancel
in every softmax, so with a shared seed the two backends agree to float32
rounding (gradient diff < 1e-4; asserted by the training bench and
``tests/test_train_engine.py``).

Like :class:`~repro.train.fused.FusedDataLoss`, ``estimate_batch``
returns a ``Tensor`` (shape ``[num_queries]``) whose ``_backward``
closure runs the fused pass, so discrepancy losses compose on top in the
ordinary autograd graph.  Buffers are pooled; at most one estimate may be
in flight per instance.
"""

from __future__ import annotations

import numpy as np

from ..infer import compile_constraints
from ..nn.encoders import EmbeddingEncoder, OneHotEncoder
from ..nn.functional import NEG_INF, sample_gumbel
from ..nn.made import ResMADE
from ..nn.tensor import Tensor
from .fused import BufferPool, TrunkGrads, trunk_backward, trunk_forward


class FusedDPS:
    """Hand-fused DPS estimates over model-column constraint lists."""

    def __init__(self, model: ResMADE):
        self.model = model
        self.pool = BufferPool()

    # ------------------------------------------------------------------
    def estimate_batch(self, constraint_lists: list[list], num_samples: int,
                       temperature: float, rng: np.random.Generator) -> Tensor:
        """Differentiable selectivity estimates ``[num_queries]``."""
        model = self.model
        pool = self.pool
        nq = len(constraint_lists)
        s = num_samples
        n = nq * s

        queried = [any(cl[c] is not None for cl in constraint_lists)
                   for c in range(model.num_cols)]
        last_pos = max((model.position[c] for c in range(model.num_cols)
                        if queried[c]), default=-1)
        if last_pos < 0:
            return Tensor(np.ones(nq, dtype=np.float32))
        positions = [p for p in range(last_pos + 1)
                     if queried[model.order[p]]]
        compiled = compile_constraints(constraint_lists, model.domain_sizes)

        wild_row = model.encode_tuples(
            np.zeros((1, model.num_cols), dtype=np.int64),
            wildcard=np.ones((1, model.num_cols), dtype=bool))
        x = pool.get("q.x", n, model.input_width)
        np.copyto(x, wild_row)

        out_l = model.output_layer
        inv_tau = np.float32(1.0 / temperature)
        density = np.ones(n, dtype=np.float32)
        hard_hi: dict[int, np.ndarray] = {}
        steps: list[dict] = []

        for pos in positions:
            col = model.order[pos]
            domain = model.domain_sizes[col]
            sl = model.logit_slices[col]
            last = pos == last_pos
            k = int(model.hidden_prefix[pos])
            valid, gain = compiled.valid_gain_rows(col, s, hard_hi)
            rows = 1 if not steps else n
            if k == 0:
                # Position 0: logits are the output bias alone.
                acts = None
                fr = None
                logits = out_l.bias.data[sl].reshape(1, -1)
            else:
                h, acts = trunk_forward(model, wild_row if rows == 1 else x,
                                        pool, f"q.t{pos}", width=k)
                fr = pool.get(f"q.fr{pos}", rows, k)
                np.maximum(h, 0.0, out=fr)
                logits = pool.get(f"q.lg{pos}", rows, domain)
                np.matmul(fr, out_l.fused_weight_t()[:k, sl], out=logits)
                logits += out_l.bias.data[sl]

            probs = pool.get(f"q.pb{pos}", rows, domain)
            np.subtract(logits, logits.max(axis=1, keepdims=True), out=probs)
            np.exp(probs, out=probs)
            probs /= probs.sum(axis=1, keepdims=True)

            weight = pool.get(f"q.w{pos}", n, domain)
            if gain is None:
                np.copyto(weight, valid)
            else:
                np.multiply(valid, gain, out=weight)
            scratch = pool.get("q.nd", n, domain)
            np.multiply(probs, weight, out=scratch)
            in_region = scratch.sum(axis=1)
            d_prev = density
            density = density * in_region

            step = {"pos": pos, "col": col, "rows": rows, "last": last,
                    "k": k, "acts": acts, "fr": fr, "probs": probs,
                    "weight": weight, "in_region": in_region,
                    "d_prev": d_prev}
            steps.append(step)
            if last:
                break

            # GS-sample from the truncated conditional (Alg. 2 lines
            # 7-9): scores need only the unnormalised truncated log-probs
            # ``logits + log(weight)`` — per-row constants cancel in the
            # softmax, and ``log(0) -> NEG_INF`` reproduces the legacy
            # mask fill (clamped so an all-masked row degrades to the
            # legacy noise-only sample instead of NaN).
            logw = scratch
            with np.errstate(divide="ignore"):
                np.log(weight, out=logw)
            np.maximum(logw, NEG_INF, out=logw)
            y = sample_gumbel((n, domain), rng,
                              out=pool.get(f"q.y{pos}", n, domain))
            y += logw
            y += logits                    # broadcasts the step-0 row
            y *= inv_tau
            y -= y.max(axis=1, keepdims=True)
            np.exp(y, out=y)
            y /= y.sum(axis=1, keepdims=True)
            hard_hi[col] = np.argmax(y, axis=1)

            enc = model.encoders[col]
            sl_in = model.input_slices[col]
            values = x[:, sl_in.start:sl_in.stop - 1]
            if isinstance(enc, OneHotEncoder):
                np.copyto(values, y)
            elif isinstance(enc, EmbeddingEncoder):
                np.matmul(y, enc.table.weight.data, out=values)
            else:                          # BinaryEncoder
                np.matmul(y, enc.code_matrix, out=values)
            x[:, sl_in.stop - 1] = 0.0     # column no longer wildcard
            step["y"] = y

        est = density.reshape(nq, s).mean(axis=1)
        state = {"steps": steps, "x": x, "wild_row": wild_row, "n": n,
                 "s": s, "inv_tau": inv_tau}
        out = Tensor(est, requires_grad=True)
        out._backward = lambda: self._backward(state, out.grad)
        return out

    # ------------------------------------------------------------------
    def _backward(self, state: dict, g_est: np.ndarray) -> None:
        model = self.model
        pool = self.pool
        steps, x, n, s = state["steps"], state["x"], state["n"], state["s"]
        inv_tau = state["inv_tau"]
        out_l = model.output_layer
        in_l = model.input_layer
        hidden = out_l.in_features

        # est = mean over the s samples of each query's density chain.
        g_density = np.repeat(
            np.asarray(g_est, dtype=np.float32) * np.float32(1.0 / s), s)

        gx = pool.zeros("q.gx", n, model.input_width)
        gh0_sum = pool.zeros("q.gh0", n, hidden)
        gw_out = pool.zeros("q.gwout", out_l.out_features, hidden)
        gb_out = np.zeros(out_l.out_features, dtype=np.float32)
        gw_in_row = np.zeros((in_l.out_features, in_l.in_features),
                             dtype=np.float32)
        gb_in = np.zeros(in_l.out_features, dtype=np.float32)
        grads = TrunkGrads(model, pool, "q.tg")

        for step in reversed(steps):
            pos, col, rows, k = step["pos"], step["col"], step["rows"], \
                step["k"]
            domain = model.domain_sizes[col]
            sl = model.logit_slices[col]
            probs = step["probs"]

            # Density chain: density_t = density_{t-1} * in_region_t.
            g_r = g_density * step["d_prev"]
            g_density = g_density * step["in_region"]

            # in_region = (probs * weight).sum(1).
            gp = pool.get("q.bgp", n, domain)
            np.multiply(step["weight"], g_r[:, None], out=gp)
            scratch = pool.get("q.bsc", n, domain)
            np.multiply(gp, probs, out=scratch)
            pdot = scratch.sum(axis=1, keepdims=True)
            np.subtract(gp, pdot, out=gp)
            gp *= probs
            g_logits = gp

            if not step["last"]:
                # Soft sample feeds later steps through the input buffer;
                # its gradient is the written slice of ``gx``.
                enc = model.encoders[col]
                sl_in = model.input_slices[col]
                g_vals = gx[:, sl_in.start:sl_in.stop - 1]
                y = step["y"]
                g_y = pool.get("q.bgy", n, domain)
                if isinstance(enc, OneHotEncoder):
                    np.copyto(g_y, g_vals)
                elif isinstance(enc, EmbeddingEncoder):
                    enc.table.weight._accumulate(y.T @ g_vals)
                    np.matmul(g_vals, enc.table.weight.data.T, out=g_y)
                else:
                    np.matmul(g_vals, enc.code_matrix.T, out=g_y)
                # y = softmax((logits + log(weight) + g) / tau); masked
                # categories have y == 0 exactly, so their logits receive
                # exactly zero gradient — no explicit valid-mask needed.
                np.multiply(g_y, y, out=scratch)
                ydot = scratch.sum(axis=1, keepdims=True)
                np.subtract(g_y, ydot, out=g_y)
                g_y *= y
                g_y *= inv_tau
                g_logits += g_y

            if rows == 1:
                # Step-0 logits were one broadcast row: fold the batch.
                g_logits = g_logits.sum(axis=0, keepdims=True)

            gb_out[sl] += g_logits.sum(axis=0)
            if k == 0:
                continue                   # bias-only position
            fr = step["fr"]
            gw_head = pool.get("q.gwh", domain, k)
            np.matmul(g_logits.T, fr, out=gw_head)
            gw_head *= out_l.mask[sl, :k]
            gw_out[sl, :k] += gw_head

            gh = pool.get("q.gfr", rows, k)
            np.matmul(g_logits, out_l.fused_weight()[sl, :k], out=gh)
            gh *= fr > 0
            gh0 = trunk_backward(model, gh, step["acts"], grads, pool,
                                 "q.tb", width=k)
            if rows == 1:
                gw_in_row[:k] += gh0.T @ state["wild_row"]
                gb_in[:k] += gh0.sum(axis=0)
            else:
                gh0_sum[:, :k] += gh0
                gb_in[:k] += gh0.sum(axis=0)
                gxt = pool.get("q.gxt", n, model.input_width)
                np.matmul(gh0, in_l.fused_weight()[:k], out=gxt)
                gx += gxt

        out_l.weight._accumulate(gw_out)
        out_l.bias._accumulate(gb_out)
        grads.flush()
        # Every step's input-weight contribution contracts against the
        # final buffer (prefix-confined gradients only touch slots already
        # final at their step — see the module docstring), so one GEMM
        # covers all batched steps; the single-row step-0 pass adds its
        # own wildcard-row term.
        gw_in = pool.get("q.gwin", in_l.out_features, in_l.in_features)
        np.matmul(gh0_sum.T, x, out=gw_in)
        gw_in += gw_in_row
        gw_in *= in_l.mask
        in_l.weight._accumulate(gw_in)
        in_l.bias._accumulate(gb_in)
