"""Fused training kernels: hand-written forward/backward for the data loss.

The legacy training path builds a dynamic autograd graph per step — one
Python closure per primitive op, a ``log_softmax`` composition and an
``np.add.at`` scatter per column for the cross-entropy — which dominates
the step time on CPU.  This module mirrors the PR 1 inference engine's
approach for *training*: the whole per-step computation is written as a
handful of numpy GEMMs over the masked layers' cached fused weights
(``MaskedLinear.fused_weight_t()``, the same version-invalidated arrays
:class:`repro.infer.CompiledModel` snapshots), with one hand-derived
backward pass that writes gradients straight into parameter ``.grad``
buffers.

The public entry point, :meth:`FusedDataLoss.loss`, still returns a
:class:`~repro.nn.tensor.Tensor`, so callers compose it with graph-built
losses (``loss = data + lam * query``) and call ``backward()`` exactly as
on the legacy path — the node's ``_backward`` closure runs the fused pass
when the graph reaches it.

Gradient contract: identical math to ``UAE.data_loss`` on the legacy
backend (per-column softmax cross-entropy over the same encoded inputs;
encoders are constants under wildcard dropout on both paths), so
gradients agree to float32 rounding — the training bench and
``tests/test_train_engine.py`` assert max abs diff < 1e-4.

Activation storage is pooled: buffers persist across steps keyed by role,
so steady-state training steps allocate almost nothing.  Consequence: at
most one fused loss may be in flight (forward done, backward pending) per
``FusedDataLoss`` instance — exactly how ``UAE.fit`` uses it.
"""

from __future__ import annotations

import numpy as np

from ..nn.made import ResMADE
from ..nn.tensor import Tensor


class BufferPool:
    """Reusable 2-D float work arrays keyed by (tag, columns, dtype)."""

    def __init__(self):
        self._arrays: dict[tuple[str, int, str], np.ndarray] = {}

    def get(self, tag: str, rows: int, cols: int,
            dtype=np.float32) -> np.ndarray:
        key = (tag, int(cols), np.dtype(dtype).str)
        arr = self._arrays.get(key)
        if arr is None or arr.shape[0] < rows:
            arr = np.empty((max(int(rows), 1), int(cols)), dtype=dtype)
            self._arrays[key] = arr
        return arr[:rows]

    def zeros(self, tag: str, rows: int, cols: int,
              dtype=np.float32) -> np.ndarray:
        arr = self.get(tag, rows, cols, dtype)
        arr[...] = 0
        return arr


def trunk_forward(model: ResMADE, x: np.ndarray, pool: BufferPool,
                  tag: str, width: int | None = None
                  ) -> tuple[np.ndarray, list[tuple]]:
    """ResMADE trunk on encoded input ``x`` with stored activations.

    Matches ``ResMADE.hidden_tensor`` numerically (same fused weights,
    same op order).  Returns the pre-ReLU final hidden state plus the
    per-block ``(h_in, a1, z1, a2)`` activations :func:`trunk_backward`
    needs; all arrays live in ``pool`` under ``tag``-prefixed keys.

    ``width`` restricts the computation to the first ``width`` hidden
    units.  With sorted hidden degrees (see
    :func:`repro.nn.made.hidden_degrees`) every unit a given sampling
    position can read lives in such a prefix, and the masks guarantee
    prefix units take no input from beyond the prefix — the restricted
    GEMMs produce bit-identical values for those units.
    """
    n = len(x)
    in_l = model.input_layer
    k = in_l.out_features if width is None else int(width)
    h = pool.get(f"{tag}.h0", n, k)
    np.matmul(x, in_l.fused_weight_t()[:, :k], out=h)
    h += in_l.bias.data[:k]
    acts: list[tuple] = []
    for bi, block in enumerate(model.blocks):
        a1 = pool.get(f"{tag}.a1.{bi}", n, k)
        np.maximum(h, 0.0, out=a1)
        z1 = pool.get(f"{tag}.z1.{bi}", n, k)
        np.matmul(a1, block.fc1.fused_weight_t()[:k, :k], out=z1)
        z1 += block.fc1.bias.data[:k]
        a2 = pool.get(f"{tag}.a2.{bi}", n, k)
        np.maximum(z1, 0.0, out=a2)
        hn = pool.get(f"{tag}.h.{bi + 1}", n, k)
        np.matmul(a2, block.fc2.fused_weight_t()[:k, :k], out=hn)
        hn += block.fc2.bias.data[:k]
        hn += h
        acts.append((h, a1, z1, a2))
        h = hn
    return h, acts


class TrunkGrads:
    """Accumulators for the trunk's block weight/bias gradients.

    One instance accumulates across any number of
    :func:`trunk_backward` passes (the fused DPS backward runs one per
    sampled column); :meth:`flush` applies the MADE masks once and pushes
    the sums into parameter ``.grad`` buffers.  The input layer is *not*
    handled here — callers own it because their input strategies differ
    (the DPS kernel folds all steps into a single GEMM against the final
    input buffer; see :mod:`repro.train.dps_fused`).
    """

    def __init__(self, model: ResMADE, pool: BufferPool, tag: str):
        self.model = model
        self.pool = pool
        self.tag = tag
        hidden = model.input_layer.out_features
        self.gw1 = [pool.zeros(f"{tag}.gw1.{bi}", hidden, hidden)
                    for bi in range(len(model.blocks))]
        self.gw2 = [pool.zeros(f"{tag}.gw2.{bi}", hidden, hidden)
                    for bi in range(len(model.blocks))]
        self.gb1 = [np.zeros(hidden, dtype=np.float32)
                    for _ in model.blocks]
        self.gb2 = [np.zeros(hidden, dtype=np.float32)
                    for _ in model.blocks]

    def flush(self) -> None:
        for bi, block in enumerate(self.model.blocks):
            gw1, gw2 = self.gw1[bi], self.gw2[bi]
            gw1 *= block.fc1.mask
            gw2 *= block.fc2.mask
            block.fc1.weight._accumulate(gw1)
            block.fc2.weight._accumulate(gw2)
            block.fc1.bias._accumulate(self.gb1[bi])
            block.fc2.bias._accumulate(self.gb2[bi])


def trunk_backward(model: ResMADE, gh: np.ndarray, acts: list[tuple],
                   grads: TrunkGrads, pool: BufferPool, tag: str,
                   width: int | None = None) -> np.ndarray:
    """Backward through the residual blocks.

    ``gh`` is the gradient w.r.t. the trunk output (pre-ReLU final
    hidden); it is consumed in place and returned as the gradient w.r.t.
    the input layer's pre-activation ``h0``.  Block weight/bias gradient
    contributions accumulate into ``grads``.  ``width`` mirrors
    :func:`trunk_forward`: gradients confined to a hidden-unit prefix
    stay in that prefix, so all GEMMs shrink accordingly.
    """
    n = len(gh)
    k = model.input_layer.out_features if width is None else int(width)
    ga = pool.get(f"{tag}.ga", n, k)
    gt = pool.get(f"{tag}.gt", n, k)
    scratch = pool.get(f"{grads.tag}.hh", k, k)
    for bi in range(len(model.blocks) - 1, -1, -1):
        block = model.blocks[bi]
        h_in, a1, z1, a2 = acts[bi]
        # hn = h_in + (relu(z1) @ W2 + b2), z1 = relu(h_in) @ W1 + b1.
        np.matmul(gh.T, a2, out=scratch)
        grads.gw2[bi][:k, :k] += scratch
        grads.gb2[bi][:k] += gh.sum(axis=0)
        np.matmul(gh, block.fc2.fused_weight()[:k, :k], out=ga)
        ga *= z1 > 0
        np.matmul(ga.T, a1, out=scratch)
        grads.gw1[bi][:k, :k] += scratch
        grads.gb1[bi][:k] += ga.sum(axis=0)
        np.matmul(ga, block.fc1.fused_weight()[:k, :k], out=gt)
        gt *= h_in > 0
        gh += gt
    return gh


class FusedDataLoss:
    """Fused forward/backward for ``sum_col CE(logits_col, codes_col)``."""

    def __init__(self, model: ResMADE):
        self.model = model
        self.pool = BufferPool()

    def loss(self, batch_codes: np.ndarray,
             wildcard: np.ndarray | None = None) -> Tensor:
        """Scalar data-NLL tensor whose backward runs the fused pass."""
        model = self.model
        codes = np.asarray(batch_codes)
        n = len(codes)
        pool = self.pool
        x = model.encode_tuples(codes, wildcard=wildcard)
        h, acts = trunk_forward(model, x, pool, "d")
        out_l = model.output_layer
        hidden = out_l.in_features
        fr = pool.get("d.fr", n, hidden)
        np.maximum(h, 0.0, out=fr)
        logits = pool.get("d.logits", n, out_l.out_features)
        np.matmul(fr, out_l.fused_weight_t(), out=logits)
        logits += out_l.bias.data

        # Per-column stable softmax cross-entropy; ``logits`` is turned
        # into dL/dlogits in place ((softmax - onehot) / n per column).
        ridx = np.arange(n)
        total = 0.0
        for c in range(model.num_cols):
            lg = logits[:, model.logit_slices[c]]
            lg -= lg.max(axis=1, keepdims=True)
            target_shift = lg[ridx, codes[:, c]].astype(np.float64)
            np.exp(lg, out=lg)
            z = lg.sum(axis=1)
            total += (np.log(z) - target_shift).sum() / n
            lg /= z[:, None]
            lg[ridx, codes[:, c]] -= 1.0
        logits *= np.float32(1.0 / n)

        state = (x, acts, h, fr, logits, n)
        out = Tensor(np.asarray(total, dtype=np.float32),
                     requires_grad=True)
        out._backward = lambda: self._backward(state, float(out.grad))
        return out

    def _backward(self, state: tuple, scale: float) -> None:
        x, acts, h, fr, grad_logits, n = state
        model = self.model
        pool = self.pool
        out_l = model.output_layer
        in_l = model.input_layer
        hidden = out_l.in_features
        if scale != 1.0:
            grad_logits *= np.float32(scale)

        gw_out = pool.get("d.gw_out", out_l.out_features, hidden)
        np.matmul(grad_logits.T, fr, out=gw_out)
        gw_out *= out_l.mask
        out_l.weight._accumulate(gw_out)
        out_l.bias._accumulate(grad_logits.sum(axis=0))

        gh = pool.get("d.gh", n, hidden)
        np.matmul(grad_logits, out_l.fused_weight(), out=gh)
        gh *= fr > 0
        grads = TrunkGrads(model, pool, "d.tg")
        gh0 = trunk_backward(model, gh, acts, grads, pool, "d.tb")
        grads.flush()

        gw_in = pool.get("d.gw_in", in_l.out_features, in_l.in_features)
        np.matmul(gh0.T, x, out=gw_in)
        gw_in *= in_l.mask
        in_l.weight._accumulate(gw_in)
        in_l.bias._accumulate(gh0.sum(axis=0))
