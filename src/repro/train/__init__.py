"""Compiled hybrid-training engine (the training fast path).

Mirror of the PR 1 inference engine for the *training* side of the paper
(Sections 4.3-4.5): hand-fused forward/backward kernels over the masked
layers' cached fused weights, pooled activation and gradient buffers, and
float32 discipline end to end.

* :class:`FusedDataLoss` — one fused pass for the data NLL (Eq. 2),
  replacing the per-column ``F.cross_entropy`` graph;
* :class:`FusedDPS` — the vectorized differentiable-progressive-sampling
  step (Algorithm 2) behind ``DifferentiableProgressiveSampler``'s
  default ``backend="engine"``;
* :func:`gradient_parity` — the legacy-vs-engine gradient check the
  training bench and tests gate on.

``UAE`` selects the backend through ``UAEConfig.train_backend``
(``"engine"`` by default, ``"legacy"`` keeps the original autograd path).
"""

from .fused import BufferPool, FusedDataLoss, TrunkGrads, trunk_backward, \
    trunk_forward
from .dps_fused import FusedDPS
from .parity import collect_grads, gradient_parity, max_grad_diff

__all__ = [
    "BufferPool", "FusedDataLoss", "TrunkGrads", "trunk_backward",
    "trunk_forward", "FusedDPS", "collect_grads", "gradient_parity",
    "max_grad_diff",
]
