"""Join queries, exact join cardinalities, and the JOB-light workloads.

A :class:`JoinQuery` names the tables it touches and carries table-qualified
predicates (``movie_companies.company_id <= 40``).  Ground truth for a star
schema is computed without materialising the join: per child, count each
fact key's matching rows that pass the child's predicates; the cardinality
is ``sum_t 1(fact preds)(t) * prod_{k in S} m_k(t)``.

Workload generators mirror the paper (Section 5.1.2):

* :func:`generate_job_light_ranges_focused` — one template (title +
  movie_companies + movie_info), ``production_year`` bounded, 2-5 random
  content filters; used for training and in-workload testing.
* :func:`generate_job_light` — random table subsets and random filters, no
  bounded attribute; the out-of-workload probe.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.schema import Schema
from ..workload.predicate import Predicate

_JOIN_OPS = ("=", "<", "<=", ">", ">=")


@dataclass(frozen=True)
class JoinQuery:
    """Predicates over a subset of a star schema's tables."""

    tables: tuple[str, ...]
    predicates: tuple[Predicate, ...] = field(default_factory=tuple)

    def __post_init__(self):
        object.__setattr__(self, "tables", tuple(sorted(self.tables)))
        object.__setattr__(self, "predicates", tuple(self.predicates))

    def predicates_for(self, table: str) -> list[Predicate]:
        """Predicates whose column belongs to ``table`` (un-qualified)."""
        prefix = table + "."
        out = []
        for pred in self.predicates:
            if pred.column.startswith(prefix):
                out.append(Predicate(pred.column[len(prefix):], pred.op,
                                     pred.value))
        return out

    def __str__(self) -> str:
        joins = " JOIN ".join(self.tables)
        preds = " AND ".join(str(p) for p in self.predicates) or "TRUE"
        return f"[{joins}] WHERE {preds}"


@dataclass
class LabeledJoinWorkload:
    queries: list[JoinQuery]
    cardinalities: np.ndarray

    def __post_init__(self):
        self.cardinalities = np.asarray(self.cardinalities, dtype=np.float64)

    def __len__(self) -> int:
        return len(self.queries)


def _table_row_mask(schema: Schema, name: str,
                    predicates: list[Predicate]) -> np.ndarray:
    table = schema.tables[name]
    keep = np.ones(table.num_rows, dtype=bool)
    for pred in predicates:
        idx = table.column_index(pred.column)
        mask = table.columns[idx].valid_mask(pred.op, pred.value)
        keep &= mask[table.codes[:, idx]]
    return keep


class UnjoinableFragmentError(ValueError):
    """The table subset admits no join closure in this schema."""


def _filtered_key_counts(schema: Schema, query: JoinQuery, fk,
                         minlength: int) -> np.ndarray:
    """Per-key match counts of ``fk.child``'s filtered rows."""
    child = schema.tables[fk.child]
    child_keep = _table_row_mask(schema, fk.child,
                                 query.predicates_for(fk.child))
    child_fk = child.raw_column(fk.child_col).astype(np.int64)
    return np.bincount(child_fk[child_keep], minlength=minlength)


def true_join_cardinality(schema: Schema, query: JoinQuery) -> int:
    """Exact star-join cardinality via per-key match counting.

    * center present — ``sum_t 1(fact preds)(t) * prod_{k in S} m_k(t)``
      with each edge counted against its own ``fk.parent_col`` keys;
    * center absent, one table — the filtered row count of that table
      (the fragment is a plain scan, *not* |fact ⋈ σ(child)|);
    * center absent, several tables — the children joined transitively
      on the shared center key (the equality closure the planner
      assumes); edges on different parent columns share no key, so that
      fragment is unrepresentable and raises
      :class:`UnjoinableFragmentError`.
    """
    center = schema.center
    fact = schema.tables[center]
    fks = {fk.child: fk for fk in schema.foreign_keys}
    stray = [t for t in query.tables if t != center and t not in fks]
    if stray:
        raise UnjoinableFragmentError(
            f"tables {stray} have no foreign key into {center!r}")

    if center in query.tables:
        if fact.num_rows == 0:
            return 0
        fact_mask = _table_row_mask(schema, center,
                                    query.predicates_for(center))
        product = np.ones(fact.num_rows, dtype=np.float64)
        for fk in schema.foreign_keys:
            if fk.child not in query.tables:
                continue
            fact_keys = fact.raw_column(fk.parent_col).astype(np.int64)
            counts = _filtered_key_counts(schema, query, fk,
                                          int(fact_keys.max()) + 1)
            product *= counts[fact_keys]
        return int((fact_mask * product).sum())

    if len(query.tables) == 1:
        name = query.tables[0]
        return int(_table_row_mask(schema, name,
                                   query.predicates_for(name)).sum())

    parent_cols = {fks[t].parent_col for t in query.tables}
    if len(parent_cols) != 1:
        raise UnjoinableFragmentError(
            f"center-absent fragment {sorted(query.tables)} spans parent "
            f"columns {sorted(parent_cols)}; no shared key joins them")
    key_arrays = []
    for name in query.tables:
        keep = _table_row_mask(schema, name, query.predicates_for(name))
        keys = schema.tables[name].raw_column(
            fks[name].child_col).astype(np.int64)[keep]
        if keys.size == 0:
            return 0
        key_arrays.append(keys)
    n_keys = max(int(keys.max()) for keys in key_arrays) + 1
    product = np.ones(n_keys, dtype=np.float64)
    for keys in key_arrays:
        product *= np.bincount(keys, minlength=n_keys)
    return int(product.sum())


def true_join_cardinalities(schema: Schema,
                            queries: list[JoinQuery]) -> np.ndarray:
    """Vector of exact cardinalities for a list of join queries."""
    return np.array([true_join_cardinality(schema, q) for q in queries],
                    dtype=np.float64)


# ----------------------------------------------------------------------
# Workload generators
# ----------------------------------------------------------------------
def _random_content_filters(schema: Schema, tables: list[str],
                            rng: np.random.Generator, n_filters: int,
                            exclude: set[str]) -> list[Predicate]:
    candidates = []
    for tname in tables:
        table = schema.tables[tname]
        for cname in table.column_names:
            qualified = f"{tname}.{cname}"
            if cname.startswith(("id", "movie_id")) or qualified in exclude:
                continue
            candidates.append((tname, cname))
    if not candidates:
        return []
    picks = rng.choice(len(candidates),
                       size=min(n_filters, len(candidates)), replace=False)
    preds = []
    for k in np.atleast_1d(picks):
        tname, cname = candidates[int(k)]
        table = schema.tables[tname]
        col = table.column(cname)
        # Literal from a random existing row so predicates hit real data.
        value = col.values[table.codes[rng.integers(0, table.num_rows),
                                       table.column_index(cname)]]
        # Exclude NULL sentinels from literals.
        if np.issubdtype(np.asarray(value).dtype, np.number) and value < 0:
            value = col.values[-1]
        op = str(rng.choice(_JOIN_OPS))
        if col.size <= 2:
            op = "="
        preds.append(Predicate(f"{tname}.{cname}", op, value))
    return preds


def generate_job_light_ranges_focused(schema: Schema, n: int,
                                      rng: np.random.Generator,
                                      center_range: tuple[float, float] = (0, 1),
                                      volume: float = 0.1,
                                      ) -> LabeledJoinWorkload:
    """The paper's training template: all three tables joined,
    ``title.production_year`` bounded, 2-5 random content filters."""
    tables = list(schema.tables)
    year_col = schema.tables["title"].column("production_year")
    queries: list[JoinQuery] = []
    cards: list[int] = []
    attempts = 0
    while len(queries) < n:
        attempts += 1
        if attempts > 200 * max(n, 1):
            raise RuntimeError("could not generate non-empty join queries")
        width = max(1, int(round(volume * year_col.size)))
        lo_rel, hi_rel = center_range
        center = int(rng.integers(int(lo_rel * (year_col.size - 1)),
                                  max(int(hi_rel * (year_col.size - 1)), 1) + 1))
        lo = max(0, center - width // 2)
        hi = min(year_col.size - 1, lo + width - 1)
        preds = [Predicate("title.production_year", ">=", year_col.values[lo]),
                 Predicate("title.production_year", "<=", year_col.values[hi])]
        nf = int(rng.integers(2, 6))
        preds += _random_content_filters(
            schema, tables, rng, nf, exclude={"title.production_year"})
        query = JoinQuery(tuple(tables), tuple(preds))
        card = true_join_cardinality(schema, query)
        if card == 0:
            continue
        queries.append(query)
        cards.append(card)
    return LabeledJoinWorkload(queries, np.asarray(cards, dtype=np.float64))


def generate_job_m_focused(schema: Schema, n: int, rng: np.random.Generator,
                           min_tables: int = 2, volume: float = 0.1,
                           center_range: tuple[float, float] = (0, 1),
                           ) -> LabeledJoinWorkload:
    """Optimizer-study workload (Figure 6): multi-way joins over 2..k-table
    subsets of the star, ``production_year`` bounded, 1-4 content filters.

    Mirrors the paper's use of one JOB-M template (6 tables, multi-way
    joins) with the JOB-light-ranges-focused generation procedure.
    """
    children = schema.children
    year_col = schema.tables["title"].column("production_year")
    queries: list[JoinQuery] = []
    cards: list[int] = []
    attempts = 0
    while len(queries) < n:
        attempts += 1
        if attempts > 200 * max(n, 1):
            raise RuntimeError("could not generate non-empty join queries")
        k = int(rng.integers(max(min_tables - 1, 1), len(children) + 1))
        subset = ["title"] + list(rng.choice(children, size=k, replace=False))
        width = max(1, int(round(volume * year_col.size)))
        lo_rel, hi_rel = center_range
        center = int(rng.integers(int(lo_rel * (year_col.size - 1)),
                                  max(int(hi_rel * (year_col.size - 1)), 1) + 1))
        lo = max(0, center - width // 2)
        hi = min(year_col.size - 1, lo + width - 1)
        preds = [Predicate("title.production_year", ">=", year_col.values[lo]),
                 Predicate("title.production_year", "<=", year_col.values[hi])]
        nf = int(rng.integers(1, 5))
        preds += _random_content_filters(
            schema, subset, rng, nf, exclude={"title.production_year"})
        query = JoinQuery(tuple(subset), tuple(preds))
        card = true_join_cardinality(schema, query)
        if card == 0:
            continue
        queries.append(query)
        cards.append(card)
    return LabeledJoinWorkload(queries, np.asarray(cards, dtype=np.float64))


def generate_job_light(schema: Schema, n: int,
                       rng: np.random.Generator) -> LabeledJoinWorkload:
    """JOB-light analogue: random table subsets, random filters, no
    bounded attribute ("contains no focused information")."""
    children = schema.children
    queries: list[JoinQuery] = []
    cards: list[int] = []
    attempts = 0
    while len(queries) < n:
        attempts += 1
        if attempts > 200 * max(n, 1):
            raise RuntimeError("could not generate non-empty join queries")
        k = int(rng.integers(1, len(children) + 1))
        subset = ["title"] + list(rng.choice(children, size=k, replace=False))
        nf = int(rng.integers(1, 5))
        preds = _random_content_filters(schema, subset, rng, nf, exclude=set())
        query = JoinQuery(tuple(subset), tuple(preds))
        card = true_join_cardinality(schema, query)
        if card == 0:
            continue
        queries.append(query)
        cards.append(card)
    return LabeledJoinWorkload(queries, np.asarray(cards, dtype=np.float64))
