"""Full-outer-join sampling for star schemas (paper Section 4.6).

The paper trains UAE on join tuples "sampled by the Exact Weight algorithm"
(Zhao et al. 2018) with indicator and fanout columns added (the
Hilprecht/Yang treatment).  For a star schema centred on a fact table F
with children C_1..C_k joined on F's key, the full outer join J contains,
for every fact row t, ``prod_k max(c_k(t), 1)`` tuples where ``c_k(t)`` is
t's match count in C_k (zero-match children contribute one NULL-padded
tuple).

Exact Weight sampling draws t proportional to that product — exactly
uniform over J — then picks one matching child row per child uniformly
(or the NULL row).  The emitted sample carries, per child:

* ``__in_<child>``  — indicator: did t match anything in the child;
* ``__fan_<child>`` — fanout: ``max(c_k(t), 1)``, used for downscaling;
* the child's content columns (NULL encoded as -1, which sorts first).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.schema import Schema
from ..data.table import Table

NULL_SENTINEL = -1


@dataclass
class ChildIndex:
    """Per-child join index: rows grouped by fact key."""

    name: str
    content_cols: list[str]
    sorted_rows: np.ndarray      # child codes sorted by fk value
    offsets: np.ndarray          # offsets[t]..offsets[t+1] = t's matches
    counts: np.ndarray           # c_k(t) per fact row
    raw_content: dict[str, np.ndarray]


def build_child_index(schema: Schema, child: str,
                      n_facts: int) -> ChildIndex:
    """Group one child table's rows by fact key for O(1) match lookup."""
    fk = next(f for f in schema.foreign_keys if f.child == child)
    table = schema.tables[child]
    fk_vals = table.raw_column(fk.child_col).astype(np.int64)
    order = np.argsort(fk_vals, kind="stable")
    sorted_fk = fk_vals[order]
    counts = np.bincount(sorted_fk, minlength=n_facts)
    offsets = np.concatenate([[0], np.cumsum(counts)])
    content_cols = [c for c in table.column_names if c != fk.child_col]
    raw_content = {c: table.raw_column(c)[order] for c in content_cols}
    return ChildIndex(child, content_cols, order, offsets, counts,
                      raw_content)


class StarJoinSampler:
    """Exact-Weight sampler over the star's full outer join."""

    def __init__(self, schema: Schema, seed: int = 0):
        self.schema = schema
        self.center = schema.center
        fact = schema.tables[self.center]
        key_col = schema.foreign_keys[0].parent_col
        self.fact_keys = fact.raw_column(key_col).astype(np.int64)
        self.n_facts = int(self.fact_keys.max()) + 1
        self.children = [build_child_index(schema, c, self.n_facts)
                         for c in schema.children]
        self.rng = np.random.default_rng(seed)
        # w(t) = prod_k max(c_k, 1); |J| = sum w.
        weights = np.ones(len(self.fact_keys), dtype=np.float64)
        for child in self.children:
            weights *= np.maximum(child.counts[self.fact_keys], 1)
        self.weights = weights
        self.join_size = float(weights.sum())

    # ------------------------------------------------------------------
    def sample(self, n: int) -> Table:
        """A uniform sample of the full outer join as one flat table."""
        fact = self.schema.tables[self.center]
        probs = self.weights / self.weights.sum()
        fact_idx = self.rng.choice(len(self.fact_keys), p=probs, size=n)
        fact_key = self.fact_keys[fact_idx]

        data: dict[str, np.ndarray] = {}
        key_col = self.schema.foreign_keys[0].parent_col
        for cname in fact.column_names:
            if cname == key_col:
                continue  # the join key itself is not a content column
            data[f"{self.center}.{cname}"] = fact.raw_column(cname)[fact_idx]

        for child in self.children:
            counts = child.counts[fact_key]
            has_match = counts > 0
            # Pick a uniform matching child row where matches exist.
            pick = (child.offsets[fact_key]
                    + (self.rng.random(n) * np.maximum(counts, 1)).astype(np.int64))
            pick = np.minimum(pick, np.maximum(child.offsets[fact_key + 1] - 1,
                                               child.offsets[fact_key]))
            # Zero-match facts may index one past the end; their values are
            # replaced by the NULL sentinel below, so clamping is safe.
            pick = np.clip(pick, 0, max(len(next(iter(
                child.raw_content.values()))) - 1, 0)) \
                if child.raw_content else pick
            data[f"__in_{child.name}"] = has_match.astype(np.int64)
            data[f"__fan_{child.name}"] = np.maximum(counts, 1)
            for ccol in child.content_cols:
                values = child.raw_content[ccol][pick]
                values = np.where(has_match, values, NULL_SENTINEL)
                data[f"{child.name}.{ccol}"] = values
        return Table.from_raw(f"{self.schema.name}_join_sample", data)

    # ------------------------------------------------------------------
    def child_counts(self, child_name: str) -> np.ndarray:
        for child in self.children:
            if child.name == child_name:
                return child.counts
        raise KeyError(child_name)
