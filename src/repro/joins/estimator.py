"""Join cardinality estimation on top of the flat join sample.

:class:`UAEJoin` trains the single autoregressive model on the Exact-Weight
sample of the full outer join (Section 4.6) — exactly the single-table UAE
machinery, pointed at the join sample's virtual columns.  A join query over
a table subset S becomes a constraint list over the flat columns:

* content predicates -> masks on the child columns;
* every child in S -> indicator ``__in_child = 1``;
* every child *not* in S -> its fanout column gets a ``("scaled", all,
  1/value)`` constraint so the estimate downscales the outer join:

  ``Card(q) = |J| * E_J[ 1(preds ∧ inds) * prod_{k∉S} 1/fanout_k ]``

NeuroCard (Yang et al. 2021) is this estimator trained with data only;
``mode="hybrid"`` adds the paper's query-driven loss through DPS with the
same scaled constraints, which is UAE's join variant.
"""

from __future__ import annotations

import numpy as np

from ..core.uae import UAE, UAEConfig
from ..data.schema import Schema
from ..workload.predicate import LabeledWorkload, Query
from .sampler import StarJoinSampler
from .workload import JoinQuery, LabeledJoinWorkload


class UAEJoin:
    """UAE/NeuroCard-style estimator over a star schema."""

    name = "UAE-join"

    def __init__(self, schema: Schema, sample_size: int = 20_000,
                 config: UAEConfig | None = None, seed: int = 0, **overrides):
        self.schema = schema
        self.sampler = StarJoinSampler(schema, seed=seed)
        self.join_size = self.sampler.join_size
        self.sample_table = self.sampler.sample(sample_size)
        self.uae = UAE(self.sample_table, config, **overrides)
        self._fanout_gain = self._precompute_gains()

    def _precompute_gains(self) -> dict[str, np.ndarray]:
        gains = {}
        for child in self.schema.children:
            col = self.sample_table.column(f"__fan_{child}")
            gains[child] = 1.0 / col.values.astype(np.float64)
        return gains

    # ------------------------------------------------------------------
    # Query translation
    # ------------------------------------------------------------------
    def _constraints(self, query: JoinQuery) -> list:
        table = self.sample_table
        masks: dict[int, np.ndarray] = {}
        for pred in query.predicates:
            idx = table.column_index(pred.column)
            mask = table.columns[idx].valid_mask(pred.op, pred.value)
            masks[idx] = masks[idx] & mask if idx in masks else mask
        for child in self.schema.children:
            ind_idx = table.column_index(f"__in_{child}")
            fan_idx = table.column_index(f"__fan_{child}")
            if child in query.tables:
                ind_col = table.columns[ind_idx]
                masks[ind_idx] = ind_col.valid_mask("=", 1)
            else:
                # Mark for scaling; handled after expand_masks.
                masks.setdefault(fan_idx, None)
        constraints = self.uae.fact.expand_masks(
            {k: v for k, v in masks.items() if v is not None})
        # Scaled fanout constraints (fanout columns are never factorized —
        # their domains are tiny counts).
        for child in self.schema.children:
            if child in query.tables:
                continue
            fan_idx = table.column_index(f"__fan_{child}")
            model_idx = self._model_index(fan_idx)
            domain = self.uae.fact.model_domains[model_idx]
            all_valid = np.ones(domain, dtype=bool)
            constraints[model_idx] = ("scaled", all_valid,
                                      self._fanout_gain[child])
        return constraints

    def _model_index(self, original_index: int) -> int:
        for j, (orig, part) in enumerate(self.uae.fact.model_owner):
            if orig == original_index:
                if part != 0:
                    raise AssertionError("fanout column unexpectedly factored")
                return j
        raise KeyError(original_index)

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(self, epochs: int = 10,
            workload: LabeledJoinWorkload | None = None,
            mode: str = "data", **kwargs) -> "UAEJoin":
        if mode == "data" or workload is None:
            self.uae.fit(epochs=epochs, mode="data", **kwargs)
            return self
        prepared = {
            "constraints": [self._constraints(q) for q in workload.queries],
            "sels": workload.cardinalities / self.join_size,
        }
        rows = self.uae.model_codes
        steps = max(1, int(np.ceil(len(rows) / self.uae.config.batch_size)))
        for _ in range(epochs):
            for _ in range(steps):
                idx = self.uae.rng.integers(0, len(rows),
                                            self.uae.config.batch_size)
                loss = self.uae.data_loss(rows[idx])
                q_loss = self.uae._query_step_loss(prepared)
                total = loss + q_loss * self.uae.config.lam
                self.uae.optimizer.zero_grad()
                total.backward()
                self.uae.optimizer.step()
        return self

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def estimate(self, query: JoinQuery) -> float:
        constraints = self._constraints(query)
        sel = self.uae.sampler.estimate(constraints)
        return float(max(sel, 0.0) * self.join_size)

    def constraint_expander(self):
        """Serving-layer hook: ``expander(model, query) -> constraints``.

        The translation depends only on the (immutable, snapshot-shared)
        factorization, sample table, and fanout gains — never on model
        weights — so one expander serves every registry snapshot of
        ``self.uae``.  Used by
        :meth:`repro.serve.RoutedEstimateService.add_join` together with
        ``join_size`` as the cardinality scale.
        """
        def expand(model, query: JoinQuery) -> list:
            return self._constraints(query)
        return expand

    def estimate_many(self, queries: list[JoinQuery],
                      batch_queries: int | None = None) -> np.ndarray:
        """Batched join estimation through the engine's scheduler.

        The fanout-scaled constraint lists are grouped by queried-column
        signature like single-table queries — scaled columns count as
        queried, so a group shares both its predicate columns and its
        downscaling columns.
        """
        constraints = [self._constraints(q) for q in queries]
        sels = self.uae.estimate_constraints_many(constraints,
                                                  batch_queries=batch_queries)
        return np.maximum(sels, 0.0) * self.join_size

    def size_bytes(self) -> int:
        return self.uae.size_bytes()


class NeuroCard(UAEJoin):
    """NeuroCard = the join estimator trained with data only."""

    name = "NeuroCard"

    def fit(self, epochs: int = 10,
            workload: LabeledJoinWorkload | None = None,
            mode: str = "data", **kwargs) -> "NeuroCard":
        if mode != "data":
            raise ValueError("NeuroCard is data-only; use UAEJoin for hybrid")
        super().fit(epochs=epochs, workload=None, mode="data", **kwargs)
        return self
