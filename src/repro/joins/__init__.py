"""Join substrate: Exact-Weight sampling, join workloads, estimators."""

from .sampler import NULL_SENTINEL, ChildIndex, StarJoinSampler, build_child_index
from .workload import (JoinQuery, LabeledJoinWorkload,
                       UnjoinableFragmentError, generate_job_light,
                       generate_job_light_ranges_focused,
                       true_join_cardinalities, true_join_cardinality)
from .estimator import NeuroCard, UAEJoin
from .baselines import JoinSampleScan, MSCNJoin, SPNJoin

__all__ = [
    "StarJoinSampler", "ChildIndex", "build_child_index", "NULL_SENTINEL",
    "JoinQuery", "LabeledJoinWorkload", "UnjoinableFragmentError",
    "true_join_cardinality",
    "true_join_cardinalities", "generate_job_light",
    "generate_job_light_ranges_focused",
    "UAEJoin", "NeuroCard", "JoinSampleScan", "SPNJoin", "MSCNJoin",
]
