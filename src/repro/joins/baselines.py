"""Join baselines for Table 5: sample-scan oracle, DeepDB and MSCN variants.

All of them consume the same flat Exact-Weight join sample as
:class:`~repro.joins.estimator.UAEJoin`, differing only in the model fitted
on it — which isolates the estimator comparison exactly as the paper does.
"""

from __future__ import annotations

import numpy as np

from ..data.schema import Schema
from ..estimators.mscn import MSCNSampling
from ..estimators.spn import SPNEstimator
from ..workload.predicate import LabeledWorkload, Predicate, Query
from .sampler import StarJoinSampler
from .workload import JoinQuery, LabeledJoinWorkload


class _JoinSampleMixin:
    """Shared query translation onto the flat join sample."""

    def _init_sample(self, schema: Schema, sample_size: int, seed: int):
        self.schema = schema
        self.sampler = StarJoinSampler(schema, seed=seed)
        self.join_size = self.sampler.join_size
        self.sample_table = self.sampler.sample(sample_size)

    def _flat_query(self, query: JoinQuery) -> Query:
        preds = [Predicate(p.column, p.op, p.value) for p in query.predicates]
        for child in self.schema.children:
            if child in query.tables:
                preds.append(Predicate(f"__in_{child}", "=", 1))
        return Query(tuple(preds))

    def _downscale_columns(self, query: JoinQuery) -> dict[int, np.ndarray]:
        """value-function vectors g = 1/fanout for children outside S."""
        out = {}
        for child in self.schema.children:
            if child in query.tables:
                continue
            idx = self.sample_table.column_index(f"__fan_{child}")
            out[idx] = 1.0 / self.sample_table.columns[idx].values.astype(
                np.float64)
        return out


class JoinSampleScan(_JoinSampleMixin):
    """Scan the materialised join sample (the joins "Sampling" analogue).

    Also serves as the *oracle for the downscaling identity*: with enough
    sample rows it converges to the true cardinality, which the tests use
    to validate the formula every learned join estimator shares.
    """

    name = "JoinSampleScan"

    def __init__(self, schema: Schema, sample_size: int = 20_000,
                 seed: int = 0):
        self._init_sample(schema, sample_size, seed)

    def estimate(self, query: JoinQuery) -> float:
        table = self.sample_table
        flat = self._flat_query(query)
        keep = np.ones(table.num_rows, dtype=bool)
        for idx, mask in flat.masks(table).items():
            keep &= mask[table.codes[:, idx]]
        weight = keep.astype(np.float64)
        for idx, gain in self._downscale_columns(query).items():
            weight *= gain[table.codes[:, idx]]
        return float(weight.mean() * self.join_size)

    def estimate_many(self, queries: list[JoinQuery]) -> np.ndarray:
        return np.array([self.estimate(q) for q in queries])

    def size_bytes(self) -> int:
        return int(self.sample_table.codes.size * 4)


class SPNJoin(_JoinSampleMixin):
    """DeepDB's join path: an SPN over the outer-join sample with fanout
    expectations at the leaves."""

    name = "DeepDB"

    def __init__(self, schema: Schema, sample_size: int = 20_000,
                 seed: int = 0, **spn_kwargs):
        self._init_sample(schema, sample_size, seed)
        self.spn = SPNEstimator(self.sample_table, seed=seed, **spn_kwargs)

    def fit(self, *args, **kwargs) -> "SPNJoin":
        return self  # structure learned at construction

    def estimate(self, query: JoinQuery) -> float:
        flat = self._flat_query(query)
        masks = flat.masks(self.sample_table)
        value_fns = self._downscale_columns(query)
        expectation = self.spn.expectation(masks, value_fns)
        return float(max(expectation, 0.0) * self.join_size)

    def estimate_many(self, queries: list[JoinQuery]) -> np.ndarray:
        return np.array([self.estimate(q) for q in queries])

    def size_bytes(self) -> int:
        return self.spn.size_bytes()


class MSCNJoin(_JoinSampleMixin):
    """MSCN+sampling adapted to joins: query features plus join-sample
    bitmaps, trained on labeled join queries."""

    name = "MSCN+sampling"

    def __init__(self, schema: Schema, sample_size: int = 4_000,
                 seed: int = 0, hidden: int = 64, epochs: int = 60):
        self._init_sample(schema, sample_size, seed)
        self.net = MSCNSampling(self.sample_table, hidden=hidden,
                                epochs=epochs, seed=seed)
        # Normalise against the full outer join size, not the sample size.
        self.net._log_norm = np.log(self.join_size + 1.0)

    def fit(self, workload: LabeledJoinWorkload, **kwargs) -> "MSCNJoin":
        flat = [self._flat_query(q) for q in workload.queries]
        self.net.fit(LabeledWorkload(flat, workload.cardinalities))
        return self

    def estimate(self, query: JoinQuery) -> float:
        return float(self.estimate_many([query])[0])

    def estimate_many(self, queries: list[JoinQuery]) -> np.ndarray:
        flat = [self._flat_query(q) for q in queries]
        feats, mask = self.net._featurize(flat)
        extra = self.net._extra_features(flat)
        from ..nn import Tensor
        pred = self.net.net(Tensor(feats), mask,
                            Tensor(extra)).data.astype(np.float64)
        cards = np.exp(pred * self.net._log_norm) - 1.0
        return np.clip(cards, 0.0, self.join_size)

    def size_bytes(self) -> int:
        return self.net.size_bytes()
