"""CSV import/export for tables.

``Table.from_raw`` covers programmatic use; this module covers the common
case of pointing the library at a CSV extract (the paper's datasets all
ship as CSVs).  Types are inferred per column: integers, then floats, then
strings; empty fields become a NULL sentinel consistent with
:mod:`repro.joins.sampler` (-1 for numeric, "" for strings).
"""

from __future__ import annotations

import csv

import numpy as np

from .table import Table

NUMERIC_NULL = -1
STRING_NULL = ""


def _infer_column(values: list[str]) -> np.ndarray:
    """Best-effort typed array from raw CSV strings."""
    non_empty = [v for v in values if v != ""]
    as_int = True
    as_float = True
    for v in non_empty:
        if as_int:
            try:
                int(v)
            except ValueError:
                as_int = False
        if not as_int and as_float:
            try:
                float(v)
            except ValueError:
                as_float = False
                break
    if as_int and non_empty:
        return np.array([int(v) if v != "" else NUMERIC_NULL
                         for v in values], dtype=np.int64)
    if as_float and non_empty:
        return np.array([float(v) if v != "" else float(NUMERIC_NULL)
                         for v in values], dtype=np.float64)
    return np.array([v if v != "" else STRING_NULL for v in values],
                    dtype=object).astype(str)


def read_csv(path: str, name: str | None = None,
             columns: list[str] | None = None,
             max_rows: int | None = None,
             delimiter: str = ",") -> Table:
    """Load a CSV (with header row) into a dictionary-encoded Table.

    ``columns`` restricts to a subset (the paper keeps 11 of DMV's
    columns, for example); ``max_rows`` caps ingestion for sampling runs.
    """
    with open(path, newline="") as fh:
        reader = csv.reader(fh, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path}: empty file") from None
        header = [h.strip() for h in header]
        if columns is not None:
            missing = [c for c in columns if c not in header]
            if missing:
                raise KeyError(f"{path}: columns not in header: {missing}")
            keep = [header.index(c) for c in columns]
        else:
            columns = header
            keep = list(range(len(header)))
        raw: list[list[str]] = [[] for _ in keep]
        for i, row in enumerate(reader):
            if max_rows is not None and i >= max_rows:
                break
            if len(row) < len(header):
                row = row + [""] * (len(header) - len(row))
            for out, idx in zip(raw, keep):
                out.append(row[idx].strip())
    if not raw or not raw[0]:
        raise ValueError(f"{path}: no data rows")
    data = {cname: _infer_column(vals) for cname, vals in zip(columns, raw)}
    table_name = name or path.rsplit("/", 1)[-1].rsplit(".", 1)[0]
    return Table.from_raw(table_name, data)


def write_csv(table: Table, path: str, delimiter: str = ",") -> None:
    """Write a table's decoded raw values back to CSV."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh, delimiter=delimiter)
        writer.writerow(table.column_names)
        decoded = [col.decode(table.codes[:, j])
                   for j, col in enumerate(table.columns)]
        for i in range(table.num_rows):
            writer.writerow([decoded[j][i] for j in range(table.num_cols)])
