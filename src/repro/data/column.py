"""Dictionary-encoded columns.

A :class:`Column` owns the sorted distinct values of an attribute and the
bijection between raw values and integer *codes* ``0 .. |A_i|-1`` in natural
(sorted) order — the paper's tuple encoding (Section 4.2).  Because codes
preserve order, range predicates on raw values become code intervals.
"""

from __future__ import annotations

import numpy as np


class Column:
    """One attribute: its name, sorted distinct values, and code mapping."""

    def __init__(self, name: str, values: np.ndarray):
        values = np.asarray(values)
        distinct = np.unique(values)  # sorted ascending
        if len(distinct) == 0:
            raise ValueError(f"column {name!r} has no values")
        self.name = name
        self.values = distinct

    @property
    def size(self) -> int:
        """Number of distinct values (the domain size |A_i|)."""
        return len(self.values)

    def __repr__(self) -> str:
        return f"Column({self.name!r}, |A|={self.size})"

    # ------------------------------------------------------------------
    # Raw value <-> code
    # ------------------------------------------------------------------
    def codes_of(self, raw: np.ndarray) -> np.ndarray:
        """Encode raw values into codes; raises on unseen values."""
        raw = np.asarray(raw)
        codes = np.searchsorted(self.values, raw)
        codes = np.clip(codes, 0, self.size - 1)
        if not np.all(self.values[codes] == raw):
            bad = raw[self.values[codes] != raw]
            raise KeyError(f"value(s) not in domain of {self.name!r}: {bad[:5]}")
        return codes.astype(np.int32)

    def code_of(self, value) -> int:
        return int(self.codes_of(np.asarray([value]))[0])

    def decode(self, codes: np.ndarray) -> np.ndarray:
        return self.values[np.asarray(codes)]

    # ------------------------------------------------------------------
    # Predicate support: which codes satisfy ``<op> value``?
    # ------------------------------------------------------------------
    def code_range(self, op: str, value) -> tuple[int, int]:
        """Half-open code interval ``[lo, hi)`` satisfying ``col <op> value``.

        Only for the ordered operators; equality uses exact lookup and
        ``!=`` / ``IN`` need bitmaps (see :meth:`valid_mask`).
        """
        left = int(np.searchsorted(self.values, value, side="left"))
        right = int(np.searchsorted(self.values, value, side="right"))
        if op == "<":
            return 0, left
        if op == "<=":
            return 0, right
        if op == ">":
            return right, self.size
        if op == ">=":
            return left, self.size
        if op == "=":
            return left, right
        raise ValueError(f"code_range does not support operator {op!r}")

    def valid_mask(self, op: str, value) -> np.ndarray:
        """Boolean mask over codes satisfying the predicate."""
        mask = np.zeros(self.size, dtype=bool)
        if op == "IN":
            for v in value:
                lo, hi = self.code_range("=", v)
                mask[lo:hi] = True
            return mask
        if op == "!=":
            lo, hi = self.code_range("=", value)
            mask[:] = True
            mask[lo:hi] = False
            return mask
        lo, hi = self.code_range(op, value)
        mask[lo:hi] = True
        return mask
