"""Dataset statistics used by the paper (Section 5.1.1).

* Fisher–Pearson standardized moment coefficient for per-column skewness.
* Nonlinear Correlation Information Entropy (NCIE, Wang et al. 2005) for
  overall multivariate correlation.

The generators in :mod:`repro.data.datasets` are tuned so these statistics
land near the paper's reported values (DMV 4.9 / 0.23, Census 2.1 / 0.15,
Kddcup98 4.7 / 0.32).
"""

from __future__ import annotations

import numpy as np


def fisher_pearson_skewness(values: np.ndarray) -> float:
    """g1 = m3 / m2^(3/2) for one numeric sample."""
    values = np.asarray(values, dtype=np.float64)
    mu = values.mean()
    centered = values - mu
    m2 = np.mean(centered ** 2)
    if m2 == 0:
        return 0.0
    m3 = np.mean(centered ** 3)
    return float(m3 / m2 ** 1.5)


def dataset_skewness(codes: np.ndarray) -> float:
    """Mean per-column skewness of the *frequency* distribution.

    Measures how unevenly mass is spread over each column's distinct
    values (uniform -> 0, Zipf-heavy -> large), which is the property that
    stresses estimators; the raw value axis is an arbitrary dictionary
    order, so skewness is computed on the per-value counts.
    """
    per_col = []
    for j in range(codes.shape[1]):
        counts = np.bincount(codes[:, j])
        counts = counts[counts > 0]
        per_col.append(abs(fisher_pearson_skewness(counts)))
    return float(np.mean(per_col))


def _rank_grid_entropy(x: np.ndarray, y: np.ndarray, bins: int = 8) -> float:
    """Nonlinear correlation coefficient between two samples.

    NCIE rank-grids both samples into ``bins`` x ``bins`` cells and computes
    a normalized mutual-information-style coefficient in [0, 1].
    """
    n = len(x)
    rx = np.argsort(np.argsort(x, kind="stable"), kind="stable")
    ry = np.argsort(np.argsort(y, kind="stable"), kind="stable")
    bx = np.minimum((rx * bins) // n, bins - 1)
    by = np.minimum((ry * bins) // n, bins - 1)
    joint = np.zeros((bins, bins), dtype=np.float64)
    np.add.at(joint, (bx, by), 1.0)
    joint /= n
    nz = joint[joint > 0]
    # Revised joint entropy relative to the uniform-marginal baseline.
    h_joint = -np.sum(nz * np.log(nz) / np.log(bins * bins))
    ncc = 2.0 - 2.0 * h_joint
    return float(np.clip(ncc, 0.0, 1.0))


def ncie(codes: np.ndarray, bins: int = 8, max_pairs: int = 300,
         rng: np.random.Generator | None = None) -> float:
    """Nonlinear Correlation Information Entropy of the whole matrix.

    Builds the nonlinear-correlation matrix R (pairwise rank-grid
    coefficients, diagonal 1) and returns the entropy-based scalar
    ``NCIE = 1 + sum_i (lam_i/n) log_n (lam_i/n)`` where ``lam_i`` are R's
    eigenvalues.  0 = fully independent, 1 = fully correlated.
    """
    n_cols = codes.shape[1]
    pairs = [(i, j) for i in range(n_cols) for j in range(i + 1, n_cols)]
    if len(pairs) > max_pairs:
        rng = rng or np.random.default_rng(0)
        sel = rng.choice(len(pairs), size=max_pairs, replace=False)
        pairs = [pairs[k] for k in sel]
        # With sampled pairs we approximate: mean off-diagonal coefficient.
        vals = [_rank_grid_entropy(codes[:, i], codes[:, j], bins)
                for i, j in pairs]
        mean_r = float(np.mean(vals))
        matrix = np.full((n_cols, n_cols), mean_r)
        np.fill_diagonal(matrix, 1.0)
    else:
        matrix = np.eye(n_cols)
        for i, j in pairs:
            r = _rank_grid_entropy(codes[:, i], codes[:, j], bins)
            matrix[i, j] = matrix[j, i] = r
    eig = np.linalg.eigvalsh(matrix)
    eig = np.clip(eig, 1e-12, None)
    frac = eig / n_cols
    return float(1.0 + np.sum(frac * np.log(frac)) / np.log(n_cols))
