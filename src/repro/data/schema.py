"""Multi-table schemas for the join and optimizer experiments.

The real IMDB snapshot is unavailable offline, so :func:`make_imdb` builds
a synthetic star schema with the properties the join experiments exercise
(DESIGN.md):

* keyed equi-joins ``title.id = child.movie_id``;
* **skewed fan-outs** — the per-title number of matching child rows follows
  a Zipf-flavoured distribution including zero-match titles (outer-join
  indicator behaviour);
* **cross-table correlation** — children's content columns correlate with
  the owning title's ``production_year``, which is what makes independence
  assumptions fail on JOB-style workloads.

:func:`make_imdb_large` extends the star to six tables for the optimizer
study (the paper uses a JOB-M template with six tables).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .table import Table


@dataclass(frozen=True)
class ForeignKey:
    """``child.child_col`` references ``parent.parent_col``."""

    child: str
    child_col: str
    parent: str
    parent_col: str


@dataclass
class Schema:
    """A named set of tables plus the foreign keys linking them."""

    name: str
    tables: dict[str, Table]
    foreign_keys: list[ForeignKey] = field(default_factory=list)

    @property
    def center(self) -> str:
        """The fact table every foreign key points at (star schemas)."""
        parents = {fk.parent for fk in self.foreign_keys}
        if len(parents) != 1:
            raise ValueError("schema is not a star")
        return next(iter(parents))

    @property
    def children(self) -> list[str]:
        return [fk.child for fk in self.foreign_keys]

    def table(self, name: str) -> Table:
        return self.tables[name]


def _fanout_counts(n: int, rng: np.random.Generator, zero_frac: float,
                   mean: float, cap: int,
                   anchor: np.ndarray | None = None,
                   anchor_strength: float = 0.0) -> np.ndarray:
    """Per-parent child counts: a zero-inflated, right-skewed distribution.

    With ``anchor`` (a per-parent signal in [0, 1], e.g. recency of the
    title) and ``anchor_strength`` > 0, expected fan-outs grow with the
    anchor — the cross-table correlation that breaks the System-R
    independence assumptions in the optimizer study.
    """
    scale = np.full(n, mean, dtype=np.float64)
    if anchor is not None and anchor_strength > 0:
        scale = mean * (1.0 - anchor_strength + 2.0 * anchor_strength * anchor)
    counts = rng.poisson(lam=rng.exponential(scale=scale))
    counts = np.minimum(counts, cap)
    zero_prob = np.full(n, zero_frac)
    if anchor is not None and anchor_strength > 0:
        zero_prob = np.clip(zero_frac * (1.0 + anchor_strength
                                         - 2.0 * anchor_strength * anchor),
                            0.0, 1.0)
    zero = rng.random(n) < zero_prob
    counts[zero] = 0
    return counts.astype(np.int64)


def _child_rows(parent_ids: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Repeat each parent id by its count -> the child's fk column."""
    return np.repeat(parent_ids, counts)


def _correlated_category(anchor: np.ndarray, domain: int, strength: float,
                         rng: np.random.Generator) -> np.ndarray:
    """Category correlated with an anchor signal in [0, 1].

    With probability ``strength`` the value tracks the anchor's bucket;
    otherwise it is drawn from a skewed global distribution.
    """
    n = len(anchor)
    tracked = np.minimum((anchor * domain).astype(np.int64), domain - 1)
    w = 1.0 / np.arange(1, domain + 1, dtype=np.float64) ** 1.1
    w /= w.sum()
    random_vals = rng.choice(domain, p=w, size=n)
    use_anchor = rng.random(n) < strength
    return np.where(use_anchor, tracked, random_vals)


def make_imdb(n_titles: int = 4000, seed: int = 0) -> Schema:
    """Three-table star: title, movie_companies, movie_info."""
    rng = np.random.default_rng(seed)
    title_ids = np.arange(n_titles, dtype=np.int64)
    year = rng.choice(np.arange(1930, 2018),
                      p=_recency_weights(88), size=n_titles)
    kind = rng.choice(7, p=_zipf(7, 1.2), size=n_titles)
    title = Table.from_raw("title", {
        "id": title_ids, "production_year": year, "kind_id": kind})
    year_anchor = (year - 1930) / 88.0

    mc_counts = _fanout_counts(n_titles, rng, zero_frac=0.15, mean=2.0,
                               cap=20, anchor=year_anchor,
                               anchor_strength=0.6)
    mc_movie = _child_rows(title_ids, mc_counts)
    mc_anchor = np.repeat(year_anchor, mc_counts)
    movie_companies = Table.from_raw("movie_companies", {
        "movie_id": mc_movie,
        "company_id": _correlated_category(mc_anchor, 600, 0.5, rng),
        "company_type_id": _correlated_category(mc_anchor, 4, 0.3, rng)})

    mi_counts = _fanout_counts(n_titles, rng, zero_frac=0.10, mean=3.0,
                               cap=30, anchor=year_anchor,
                               anchor_strength=0.5)
    mi_movie = _child_rows(title_ids, mi_counts)
    mi_anchor = np.repeat(year_anchor, mi_counts)
    movie_info = Table.from_raw("movie_info", {
        "movie_id": mi_movie,
        "info_type_id": _correlated_category(mi_anchor, 40, 0.45, rng),
        "info_bucket": _correlated_category(mi_anchor, 80, 0.35, rng)})

    return Schema("imdb", {
        "title": title,
        "movie_companies": movie_companies,
        "movie_info": movie_info,
    }, [
        ForeignKey("movie_companies", "movie_id", "title", "id"),
        ForeignKey("movie_info", "movie_id", "title", "id"),
    ])


def make_imdb_large(n_titles: int = 2500, seed: int = 1) -> Schema:
    """Six-table star for the optimizer study (JOB-M stand-in)."""
    base = make_imdb(n_titles=n_titles, seed=seed)
    rng = np.random.default_rng(seed + 100)
    title = base.tables["title"]
    title_ids = title.raw_column("id")
    year_anchor = (title.raw_column("production_year") - 1930) / 88.0

    # movie_keyword runs *against* recency (archival tagging of old
    # titles): the opposite-direction correlation is what makes join
    # orders flip under misestimation in the optimizer study.
    mk_counts = _fanout_counts(n_titles, rng, zero_frac=0.2, mean=2.5,
                               cap=25, anchor=year_anchor,
                               anchor_strength=-0.7)
    mk_movie = _child_rows(title_ids, mk_counts)
    mk_anchor = np.repeat(year_anchor, mk_counts)
    movie_keyword = Table.from_raw("movie_keyword", {
        "movie_id": mk_movie,
        "keyword_id": _correlated_category(mk_anchor, 500, 0.4, rng)})

    ci_counts = _fanout_counts(n_titles, rng, zero_frac=0.05, mean=4.0,
                               cap=40, anchor=year_anchor,
                               anchor_strength=0.8)
    ci_movie = _child_rows(title_ids, ci_counts)
    ci_anchor = np.repeat(year_anchor, ci_counts)
    cast_info = Table.from_raw("cast_info", {
        "movie_id": ci_movie,
        "person_bucket": _correlated_category(ci_anchor, 300, 0.3, rng),
        "role_id": _correlated_category(ci_anchor, 11, 0.25, rng)})

    mx_counts = _fanout_counts(n_titles, rng, zero_frac=0.3, mean=1.5,
                               cap=10, anchor=year_anchor,
                               anchor_strength=-0.4)
    mx_movie = _child_rows(title_ids, mx_counts)
    mx_anchor = np.repeat(year_anchor, mx_counts)
    movie_info_idx = Table.from_raw("movie_info_idx", {
        "movie_id": mx_movie,
        "info_type_id": _correlated_category(mx_anchor, 5, 0.35, rng),
        "rating_bucket": _correlated_category(mx_anchor, 20, 0.45, rng)})

    tables = dict(base.tables)
    tables.update({"movie_keyword": movie_keyword, "cast_info": cast_info,
                   "movie_info_idx": movie_info_idx})
    fks = list(base.foreign_keys) + [
        ForeignKey("movie_keyword", "movie_id", "title", "id"),
        ForeignKey("cast_info", "movie_id", "title", "id"),
        ForeignKey("movie_info_idx", "movie_id", "title", "id"),
    ]
    return Schema("imdb_large", tables, fks)


def _zipf(k: int, a: float) -> np.ndarray:
    w = 1.0 / np.arange(1, k + 1, dtype=np.float64) ** a
    return w / w.sum()


def _recency_weights(k: int) -> np.ndarray:
    """Movie production years skew towards recent decades."""
    w = np.linspace(0.2, 1.0, k) ** 2
    return w / w.sum()
