"""Dictionary-encoded in-memory tables.

A :class:`Table` stores one int32 code matrix ``[rows, cols]`` plus the
:class:`~repro.data.column.Column` dictionaries.  All estimators operate on
codes; raw values only matter at the API boundary.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from .column import Column


class Table:
    """A relation T with named, dictionary-encoded columns."""

    def __init__(self, name: str, columns: Sequence[Column], codes: np.ndarray):
        codes = np.asarray(codes, dtype=np.int32)
        if codes.ndim != 2 or codes.shape[1] != len(columns):
            raise ValueError(
                f"codes shape {codes.shape} inconsistent with "
                f"{len(columns)} columns")
        for j, col in enumerate(columns):
            hi = codes[:, j].max(initial=0)
            if hi >= col.size:
                raise ValueError(
                    f"column {col.name!r} has code {hi} >= domain {col.size}")
        self.name = name
        self.columns = list(columns)
        self.codes = codes
        self._index = {c.name: i for i, c in enumerate(self.columns)}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_raw(cls, name: str, data: Mapping[str, np.ndarray]) -> "Table":
        """Build from a mapping of column name -> raw value array."""
        if not data:
            raise ValueError("no columns given")
        lengths = {len(v) for v in data.values()}
        if len(lengths) != 1:
            raise ValueError(f"ragged columns: lengths {sorted(lengths)}")
        columns = [Column(cname, raw) for cname, raw in data.items()]
        codes = np.column_stack(
            [col.codes_of(np.asarray(data[col.name])) for col in columns])
        return cls(name, columns, codes)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return self.codes.shape[0]

    @property
    def num_cols(self) -> int:
        return self.codes.shape[1]

    @property
    def domain_sizes(self) -> list[int]:
        return [c.size for c in self.columns]

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def column_index(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise KeyError(f"no column {name!r} in table {self.name!r}") from None

    def column(self, name: str) -> Column:
        return self.columns[self.column_index(name)]

    def __repr__(self) -> str:
        return (f"Table({self.name!r}, rows={self.num_rows}, "
                f"cols={self.num_cols})")

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def sample_rows(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Uniform sample (with replacement) of code rows."""
        idx = rng.integers(0, self.num_rows, size=n)
        return self.codes[idx]

    def append_rows(self, codes: np.ndarray) -> "Table":
        """Return a new table with extra code rows (incremental data)."""
        codes = np.asarray(codes, dtype=np.int32)
        return Table(self.name, self.columns, np.vstack([self.codes, codes]))

    def project(self, names: Sequence[str]) -> "Table":
        idx = [self.column_index(n) for n in names]
        return Table(self.name, [self.columns[i] for i in idx],
                     self.codes[:, idx])

    def raw_column(self, name: str) -> np.ndarray:
        i = self.column_index(name)
        return self.columns[i].decode(self.codes[:, i])
