"""Column factorization for large-NDV columns (paper Section 4.6).

A column whose domain exceeds ``threshold`` is split into two *model
columns* — a high digit and a low digit in base ``2**bits`` — so the
autoregressive output layer never has to emit a huge softmax.  Queries over
a factorized column become *conditional* constraints: the valid low digits
depend on the sampled high digit, which the progressive samplers resolve
per-sample (the NeuroCard treatment).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .table import Table


@dataclass(frozen=True)
class FactorSpec:
    """How one original column maps onto model columns."""

    original_index: int
    name: str
    domain_size: int
    factored: bool
    base: int                # size of the low-digit domain (1 if unfactored)
    hi_size: int             # size of the high-digit domain


class ColumnFactorization:
    """Mapping between original table columns and model columns."""

    def __init__(self, table: Table, threshold: int = 2048, bits: int = 11):
        base = 2 ** bits
        self.threshold = threshold
        self.base = base
        self.specs: list[FactorSpec] = []
        self.model_domains: list[int] = []
        self.model_names: list[str] = []
        # model_owner[j] = (original column index, 0 for hi / value, 1 for lo)
        self.model_owner: list[tuple[int, int]] = []
        for idx, col in enumerate(table.columns):
            if col.size > threshold:
                hi_size = int(np.ceil(col.size / base))
                if hi_size > base:
                    raise ValueError(
                        f"column {col.name!r} too large for 2-factor split "
                        f"({col.size} > {base * base})")
                spec = FactorSpec(idx, col.name, col.size, True, base, hi_size)
                self.specs.append(spec)
                self.model_domains.extend([hi_size, base])
                self.model_names.extend([f"{col.name}__hi", f"{col.name}__lo"])
                self.model_owner.extend([(idx, 0), (idx, 1)])
            else:
                spec = FactorSpec(idx, col.name, col.size, False, 1, col.size)
                self.specs.append(spec)
                self.model_domains.append(col.size)
                self.model_names.append(col.name)
                self.model_owner.append((idx, 0))

    @property
    def num_model_cols(self) -> int:
        return len(self.model_domains)

    @property
    def any_factored(self) -> bool:
        return any(s.factored for s in self.specs)

    def encode_rows(self, codes: np.ndarray) -> np.ndarray:
        """Original code rows -> model code rows."""
        codes = np.asarray(codes)
        out = np.empty((len(codes), self.num_model_cols), dtype=np.int32)
        j = 0
        for spec in self.specs:
            col = codes[:, spec.original_index]
            if spec.factored:
                out[:, j] = col // spec.base
                out[:, j + 1] = col % spec.base
                j += 2
            else:
                out[:, j] = col
                j += 1
        return out

    def decode_rows(self, model_codes: np.ndarray) -> np.ndarray:
        """Model code rows -> original code rows (clipping overflow lows)."""
        model_codes = np.asarray(model_codes)
        out = np.empty((len(model_codes), len(self.specs)), dtype=np.int32)
        j = 0
        for k, spec in enumerate(self.specs):
            if spec.factored:
                vals = model_codes[:, j] * spec.base + model_codes[:, j + 1]
                out[:, k] = np.minimum(vals, spec.domain_size - 1)
                j += 2
            else:
                out[:, k] = model_codes[:, j]
                j += 1
        return out

    def expand_masks(self, masks: dict[int, np.ndarray]) -> list:
        """Translate original-column masks to per-model-column constraints.

        Returns a list aligned with model columns whose entries are:

        * ``None`` — unconstrained (wildcard);
        * ``("fixed", mask)`` — plain boolean mask over the model domain;
        * ``("lo", grid)`` — constraint for a low digit: ``grid`` has shape
          ``[hi_size, base]``; the valid low digits are ``grid[h]`` for the
          *sampled* high digit ``h`` (resolved inside the samplers).
        """
        out: list = [None] * self.num_model_cols
        j = 0
        for spec in self.specs:
            mask = masks.get(spec.original_index)
            if not spec.factored:
                if mask is not None:
                    out[j] = ("fixed", mask.astype(bool))
                j += 1
                continue
            if mask is None:
                j += 2
                continue
            padded = np.zeros(spec.hi_size * spec.base, dtype=bool)
            padded[:spec.domain_size] = mask
            grid = padded.reshape(spec.hi_size, spec.base)
            hi_mask = grid.any(axis=1)
            out[j] = ("fixed", hi_mask)
            out[j + 1] = ("lo", grid)
            j += 2
        return out
