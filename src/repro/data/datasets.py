"""Synthetic stand-ins for the paper's datasets.

The real DMV / Census / Kddcup98 extracts are not available in this offline
environment, so each generator reproduces the *properties the experiments
depend on* (documented in DESIGN.md):

* **DMV** — 11 columns, domain sizes 2..~2100, strong skew (target
  Fisher–Pearson ≈ 4.9) and strong correlation (NCIE ≈ 0.23).
* **Census** — 14 mixed columns, domains 2..123, weak skew (≈ 2.1) and weak
  correlation (≈ 0.15).
* **Kddcup98** — 100 columns, domains 2..43, strong skew (≈ 4.7) organised
  in independent blocks (the paper's finding 6 hinges on many effectively
  independent attributes).

All generators use a latent-cluster (mixture) model: rows belong to Zipf-
weighted clusters; each cluster induces its own sharp per-column categorical
distribution.  Cluster sharpness controls correlation, Zipf exponents
control skew.
"""

from __future__ import annotations

import numpy as np

from .table import Table

_DMV_COLORS = np.array([
    "BK", "BL", "BR", "GL", "GY", "MR", "OR", "PK", "PR", "RD", "SL",
    "TN", "WH", "YW"])


def _zipf_weights(k: int, a: float, rng: np.random.Generator,
                  permute: bool = True) -> np.ndarray:
    """Normalized Zipf(a) weights over k items, optionally permuted."""
    w = 1.0 / np.arange(1, k + 1, dtype=np.float64) ** a
    w /= w.sum()
    if permute:
        w = w[rng.permutation(k)]
    return w


def _mixture_codes(rows: int, domain_sizes: list[int], n_clusters: int,
                   marginal_zipf: float, cluster_zipf: float,
                   noise: float, rng: np.random.Generator) -> np.ndarray:
    """Sample a code matrix from the latent-cluster model.

    ``noise`` is the probability that a cell ignores its cluster and draws
    from a column-global distribution instead — higher noise means weaker
    correlation.
    """
    cluster_w = _zipf_weights(n_clusters, cluster_zipf, rng, permute=False)
    assign = rng.choice(n_clusters, p=cluster_w, size=rows)
    codes = np.empty((rows, len(domain_sizes)), dtype=np.int32)
    for j, domain in enumerate(domain_sizes):
        global_w = _zipf_weights(domain, marginal_zipf, rng)
        column = np.empty(rows, dtype=np.int32)
        for c in range(n_clusters):
            members = np.flatnonzero(assign == c)
            if len(members) == 0:
                continue
            local_w = _zipf_weights(domain, marginal_zipf + 0.5, rng)
            column[members] = rng.choice(domain, p=local_w, size=len(members))
        if noise > 0:
            flip = rng.random(rows) < noise
            column[flip] = rng.choice(domain, p=global_w, size=int(flip.sum()))
        # Guarantee every nominal domain value occurs at least once so the
        # realized domain matches the target spectrum even at small row
        # counts (rare Zipf tail values may otherwise never be drawn).
        if domain <= rows:
            missing = np.setdiff1d(np.arange(domain), np.unique(column),
                                   assume_unique=False)
            if len(missing):
                slots = rng.choice(rows, size=len(missing), replace=False)
                column[slots] = missing
        codes[:, j] = column
    return codes


def make_dmv(rows: int = 40_000, seed: int = 0,
             large_ndv: bool = False) -> Table:
    """DMV-like table: 11 columns, wide domain-size spectrum, strong skew
    and correlation.  ``large_ndv=True`` appends very-high-NDV columns
    (the paper's DMV-large variant, Section 5.1.1)."""
    rng = np.random.default_rng(seed)
    domain_sizes = [2101, 425, 120, 62, 24, 14, 10, 6, 4, 2, 2]
    codes = _mixture_codes(rows, domain_sizes, n_clusters=12,
                           marginal_zipf=1.3, cluster_zipf=1.1,
                           noise=0.18, rng=rng)
    names = ["county", "city_code", "model_year", "weight_class", "body_type",
             "color_code", "fuel_type", "reg_class", "ownership", "scofflaw",
             "suspension"]
    data = {name: codes[:, j] for j, name in enumerate(names)}
    # Make one column string-typed to exercise non-numeric domains.
    data["color_code"] = _DMV_COLORS[codes[:, 5] % len(_DMV_COLORS)]
    if large_ndv:
        # ~100%-unique VIN-like column and a ~31K-value city column.
        data["vin"] = rng.permutation(rows * 4)[:rows]
        data["city"] = rng.integers(0, min(31_000, max(rows // 2, 2)), rows)
    return Table.from_raw("dmv", data)


def make_census(rows: int = 20_000, seed: int = 1) -> Table:
    """Census-like table: 14 columns, small domains, weak skew/correlation."""
    rng = np.random.default_rng(seed)
    domain_sizes = [73, 16, 123, 15, 7, 14, 6, 5, 2, 41, 99, 52, 42, 2]
    codes = _mixture_codes(rows, domain_sizes, n_clusters=4,
                           marginal_zipf=0.6, cluster_zipf=0.4,
                           noise=0.55, rng=rng)
    names = ["age", "workclass", "fnlwgt_bucket", "education", "marital",
             "occupation", "relationship", "race", "sex", "capital_gain",
             "capital_loss", "hours_per_week", "native_country", "income"]
    return Table.from_raw(
        "census", {n: codes[:, j] for j, n in enumerate(names)})


def make_kddcup(rows: int = 20_000, seed: int = 2,
                num_cols: int = 100, block_size: int = 5) -> Table:
    """Kddcup98-like table: many small-domain columns in independent blocks.

    Columns inside a block share a latent cluster (correlated); blocks are
    mutually independent, reproducing the high-dimensional, mostly
    independent structure the paper stresses (finding 6).
    """
    rng = np.random.default_rng(seed)
    blocks = []
    remaining = num_cols
    while remaining > 0:
        width = min(block_size, remaining)
        domains = list(rng.integers(2, 44, size=width))
        blocks.append([int(d) for d in domains])
        remaining -= width
    parts = []
    for domains in blocks:
        parts.append(_mixture_codes(rows, domains, n_clusters=6,
                                    marginal_zipf=1.25, cluster_zipf=1.0,
                                    noise=0.15, rng=rng))
    codes = np.concatenate(parts, axis=1)
    data = {f"f{j:03d}": codes[:, j] for j in range(codes.shape[1])}
    return Table.from_raw("kddcup", data)


def make_toy(rows: int = 2_000, seed: int = 7, num_cols: int = 4,
             max_domain: int = 12) -> Table:
    """Small correlated table for unit tests and the quickstart example."""
    rng = np.random.default_rng(seed)
    domains = list(rng.integers(3, max_domain + 1, size=num_cols))
    codes = _mixture_codes(rows, [int(d) for d in domains], n_clusters=3,
                           marginal_zipf=1.0, cluster_zipf=0.8,
                           noise=0.25, rng=rng)
    return Table.from_raw(
        "toy", {f"c{j}": codes[:, j] for j in range(num_cols)})


DATASETS = {
    "dmv": make_dmv,
    "census": make_census,
    "kddcup": make_kddcup,
    "toy": make_toy,
}


def load(name: str, **kwargs) -> Table:
    """Build a dataset by name (``dmv``, ``census``, ``kddcup``, ``toy``)."""
    try:
        factory = DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}") from None
    return factory(**kwargs)
