"""Data substrate: columns, tables, statistics, generators, factorization."""

from .column import Column
from .table import Table
from .encoding import ColumnFactorization, FactorSpec
from .datasets import (DATASETS, load, make_census, make_dmv, make_kddcup,
                       make_toy)
from .stats import dataset_skewness, fisher_pearson_skewness, ncie
from .io import read_csv, write_csv

__all__ = [
    "Column", "Table", "ColumnFactorization", "FactorSpec",
    "DATASETS", "load", "make_dmv", "make_census", "make_kddcup", "make_toy",
    "fisher_pearson_skewness", "dataset_skewness", "ncie",
    "read_csv", "write_csv",
]
