"""The paper's primary contribution: UAE and its samplers."""

from .gumbel import gs_sample, gs_sample_from_logits, hard_sample_np
from .progressive import ProgressiveSampler, UniformSampler
from .dps import DifferentiableProgressiveSampler, ScoreFunctionSampler
from .uae import UAE, UAEConfig
from .ensemble import PartitionedUAE

__all__ = [
    "gs_sample", "gs_sample_from_logits", "hard_sample_np",
    "ProgressiveSampler", "UniformSampler",
    "DifferentiableProgressiveSampler", "ScoreFunctionSampler",
    "UAE", "UAEConfig", "PartitionedUAE",
]
