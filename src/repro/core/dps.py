"""Differentiable Progressive Sampling (paper Algorithm 2).

The inference-time sampler in :mod:`repro.core.progressive` draws *hard*
categorical samples, through which gradients cannot flow (Figure 2(2) of the
paper).  DPS replaces every hard draw with a Gumbel-Softmax sample
(Algorithm 1): a *continuous* soft one-hot vector ``y_i`` whose encoding
feeds the next sampling step, so the full chain

    logits -> truncate to region -> GS-sample -> encode -> next logits -> ...

is differentiable end-to-end and the query loss (Eq. 5/6) trains the model
weights directly (Figure 2(3)).

Per Algorithm 2:

* line 6 — the per-sample density estimate accumulates
  ``P_theta(z_i in R_i | z_<i)``;
* line 7 — probabilities outside ``R_i`` are masked to −inf;
* line 9 — the next value is GS-sampled from the truncated conditional;
* line 13 — estimates of the S samples are averaged.

Factorized low digits use the *hard* argmax of the high digit's soft sample
to pick the conditional mask — a straight-through-style approximation noted
in DESIGN.md.
"""

from __future__ import annotations

import numpy as np

from ..infer import compile_constraints
from ..nn import functional as F
from ..nn.made import ResMADE
from ..nn.tensor import Tensor, concatenate, stack
from .gumbel import gs_sample


class DifferentiableProgressiveSampler:
    """Batched DPS over model-column constraint lists.

    ``backend="engine"`` (default) runs the hand-fused training kernel
    (:class:`repro.train.dps_fused.FusedDPS`): persistent input buffer,
    step-0 wildcard dedup, one hand-written backward.  ``backend=
    "legacy"`` runs the original graph-built loop below — the reference
    implementation the fused kernel's gradient-parity tests and the
    training benchmark compare against.  Both consume the Gumbel stream
    identically, so a shared seed gives draw-for-draw agreement.
    """

    def __init__(self, model: ResMADE, num_samples: int = 8,
                 temperature: float = 1.0, seed: int = 0,
                 backend: str = "engine"):
        if num_samples < 1:
            raise ValueError("need at least one sample")
        if backend not in ("engine", "legacy"):
            raise ValueError(f"unknown backend {backend!r}")
        self.model = model
        self.num_samples = num_samples
        self.temperature = temperature
        self.rng = np.random.default_rng(seed)
        self.backend = backend
        self._fused = None

    def estimate_batch(self, constraint_lists: list[list]) -> Tensor:
        """Differentiable selectivity estimates ``[num_queries]``."""
        if self.backend == "engine":
            if self._fused is None:
                from ..train.dps_fused import FusedDPS
                self._fused = FusedDPS(self.model)
            return self._fused.estimate_batch(
                constraint_lists, self.num_samples, self.temperature,
                self.rng)
        return self.estimate_batch_legacy(constraint_lists)

    def estimate_batch_legacy(self, constraint_lists: list[list]) -> Tensor:
        """The original autograd-graph loop (reference implementation)."""
        model = self.model
        n_queries = len(constraint_lists)
        s = self.num_samples
        batch = n_queries * s

        queried = [any(cl[c] is not None for cl in constraint_lists)
                   for c in range(model.num_cols)]
        last_pos = max((model.position[c] for c in range(model.num_cols)
                        if queried[c]), default=-1)
        if last_pos < 0:
            return Tensor(np.ones(n_queries, dtype=np.float32))

        zero_codes = np.zeros((batch, model.num_cols), dtype=np.int64)
        all_wild = np.ones((batch, model.num_cols), dtype=bool)
        x_np = model.encode_tuples(zero_codes, wildcard=all_wild)

        # Per-column input segments; queried columns get replaced by the
        # differentiable soft encoding as sampling progresses.
        segments: list[Tensor] = [
            Tensor(x_np[:, model.input_slices[c]])
            for c in range(model.num_cols)]

        density: Tensor | None = None
        hard_hi: dict[int, np.ndarray] = {}
        compiled = compile_constraints(constraint_lists, model.domain_sizes)

        for pos in range(last_pos + 1):
            col = model.order[pos]
            if not queried[col]:
                continue
            valid, gain = compiled.valid_gain_rows(col, s, hard_hi)
            x = concatenate(segments, axis=-1)
            h = model.hidden_tensor(x)
            logits = model.column_logits_from_hidden(h, col)
            probs = F.softmax(logits, axis=-1)
            weight = valid.astype(np.float32) if gain is None \
                else (valid * gain).astype(np.float32)
            in_region = (probs * Tensor(weight)).sum(axis=-1)
            density = in_region if density is None else density * in_region
            if pos == last_pos:
                break
            # Truncate the conditional to the region (Alg. 2 lines 7-8) and
            # GS-sample a differentiable soft one-hot (line 9).  Gains fold
            # into the proposal as constant log-offsets so join fanout
            # scaling stays unbiased under DPS too.
            masked_logits = F.masked_fill(logits, ~valid)
            if gain is not None:
                from ..nn.tensor import add_constant
                masked_logits = add_constant(
                    masked_logits,
                    np.log(np.maximum(gain, 1e-30)).astype(np.float32))
            log_cond = F.log_softmax(masked_logits, axis=-1)
            y = gs_sample(log_cond, self.temperature, self.rng)
            hard_hi[col] = np.argmax(y.data, axis=-1)
            segments[col] = model.encoders[col].encode_soft(y)

        est = density.reshape(n_queries, s).mean(axis=1)
        return est


class ScoreFunctionSampler:
    """REINFORCE / score-function alternative to DPS (paper Section 4.3).

    Kept for the gradient-estimator ablation: the paper argues SF has higher
    variance than Gumbel-Softmax.  The implementation draws hard samples and
    returns both the (non-differentiable) per-query estimates and the
    surrogate loss ``sum(stop_grad(weight) * log P(z))`` whose gradient is
    the score-function estimator of the query loss.
    """

    def __init__(self, model: ResMADE, num_samples: int = 8, seed: int = 0):
        self.model = model
        self.num_samples = num_samples
        self.rng = np.random.default_rng(seed)

    def surrogate(self, constraint_lists: list[list],
                  true_sels: np.ndarray) -> tuple[Tensor, np.ndarray]:
        """Returns (surrogate loss tensor, detached selectivity estimates)."""
        model = self.model
        n_queries = len(constraint_lists)
        s = self.num_samples
        batch = n_queries * s
        queried = [any(cl[c] is not None for cl in constraint_lists)
                   for c in range(model.num_cols)]
        last_pos = max((model.position[c] for c in range(model.num_cols)
                        if queried[c]), default=-1)

        zero_codes = np.zeros((batch, model.num_cols), dtype=np.int64)
        all_wild = np.ones((batch, model.num_cols), dtype=bool)
        x_np = model.encode_tuples(zero_codes, wildcard=all_wild)
        segments = [Tensor(x_np[:, model.input_slices[c]])
                    for c in range(model.num_cols)]

        density = np.ones(batch, dtype=np.float64)
        log_prob_terms: list[Tensor] = []
        hard: dict[int, np.ndarray] = {}
        compiled = compile_constraints(constraint_lists, model.domain_sizes)

        for pos in range(last_pos + 1):
            col = model.order[pos]
            if not queried[col]:
                continue
            valid, gain = compiled.valid_gain_rows(col, s, hard)
            if gain is not None:
                raise NotImplementedError(
                    "the REINFORCE ablation does not support fanout-scaled "
                    "join columns; use the Gumbel-Softmax estimator")
            x = concatenate(segments, axis=-1)
            h = model.hidden_tensor(x)
            logits = model.column_logits_from_hidden(h, col)
            probs_np = _softmax_np(logits.data)
            in_region = (probs_np * valid).sum(axis=1)
            density *= in_region
            if pos == last_pos:
                break
            truncated = probs_np * valid
            mass = truncated.sum(axis=1, keepdims=True)
            bad = mass[:, 0] <= 0
            if bad.any():
                fb = valid[bad].astype(np.float64)
                fb[fb.sum(axis=1) == 0] = 1.0
                truncated[bad] = fb / fb.sum(axis=1, keepdims=True)
                mass = truncated.sum(axis=1, keepdims=True)
            truncated /= np.maximum(mass, 1e-30)
            cdf = np.cumsum(truncated, axis=1)
            cdf /= cdf[:, -1:]
            codes = np.minimum((self.rng.random((batch, 1)) > cdf).sum(axis=1),
                               probs_np.shape[1] - 1)
            hard[col] = codes
            # log P_theta(z_col | prefix), differentiable w.r.t. theta.
            logp = F.log_softmax(F.masked_fill(logits, ~valid), axis=-1)
            log_prob_terms.append(logp.take_along_last(
                codes.reshape(-1, 1)).reshape(batch))
            enc = model.encoders[col].encode_hard(codes)
            segments[col] = Tensor(enc)

        est = density.reshape(n_queries, s).mean(axis=1)
        # Per-sample REINFORCE weight: d qerror / d estimate, detached.
        eps = 1e-9
        true = np.maximum(true_sels, eps)
        est_c = np.maximum(est, eps)
        dq = np.where(est_c >= true, 1.0 / true, -true / est_c ** 2)
        weight = np.repeat(dq / s, s) * density
        if not log_prob_terms:
            return Tensor(np.zeros(1, dtype=np.float32)), est
        total_logp = log_prob_terms[0]
        for term in log_prob_terms[1:]:
            total_logp = total_logp + term
        surrogate = (total_logp * Tensor(weight.astype(np.float32))).sum() \
            * (1.0 / n_queries)
        return surrogate, est


def _softmax_np(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)
