"""The Gumbel-Softmax trick (paper Algorithm 1, "GS-Sampling").

Given a categorical distribution ``pi`` (here: the model's predicted
conditional ``P_theta(Z_i | .)`` restricted to a query region), draws a
*differentiable* approximately-one-hot sample

    y = softmax((log pi + g) / tau),     g ~ Gumbel(0, 1)   (Eq. 10)

The Gumbel noise ``g`` enters the graph as a constant, so gradients flow
from the sample back into ``pi`` — this is precisely what lets the deep
autoregressive model learn from queries (Section 4.3).
"""

from __future__ import annotations

import numpy as np

from ..nn.functional import log_softmax, sample_gumbel, softmax
from ..nn.tensor import Tensor, add_constant


def gs_sample(log_probs: Tensor, tau: float,
              rng: np.random.Generator) -> Tensor:
    """Differentiable one-hot sample from (log-) categorical ``log_probs``.

    Parameters
    ----------
    log_probs:
        ``[batch, k]`` log-probabilities (may contain large negative values
        for masked-out categories — Algorithm 2, line 7).
    tau:
        Temperature; ``tau -> 0`` approaches exact one-hot, larger values
        trade sample fidelity for lower gradient variance.
    """
    if tau <= 0:
        raise ValueError("temperature must be positive")
    noise = sample_gumbel(log_probs.shape, rng)
    scores = add_constant(log_probs, noise) * (1.0 / tau)
    return softmax(scores, axis=-1)


def gs_sample_from_logits(logits: Tensor, tau: float,
                          rng: np.random.Generator) -> Tensor:
    """Same as :func:`gs_sample` but normalises raw logits first."""
    return gs_sample(log_softmax(logits, axis=-1), tau, rng)


def hard_sample_np(probs: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Non-differentiable categorical sample via inverse CDF (vectorised).

    ``probs``: ``[batch, k]`` rows summing to ~1; returns int codes.
    Used on the inference path where gradients are not needed.
    """
    cdf = np.cumsum(probs, axis=1)
    cdf /= cdf[:, -1:]
    u = rng.random((len(probs), 1))
    idx = (u > cdf).sum(axis=1)
    return np.minimum(idx, probs.shape[1] - 1).astype(np.int64)
