"""UAE: the unified deep autoregressive estimator (paper Section 4).

One ResMADE model, one set of weights, two information sources:

* **UAE-D** — unsupervised: cross-entropy of tuples under the
  autoregressive factorization (Eq. 2).  Equivalent to Naru (Section 4.7).
* **UAE-Q** — supervised: Q-error between true and DPS-estimated
  selectivities (Eq. 5/6), trainable thanks to Gumbel-Softmax.
* **UAE** — hybrid: ``L = L_data + lambda * L_query`` (Eq. 11, Algorithm 3).

The class also implements Section 4.5's incremental ingestion: new tuples
refine the model through the data loss, new (shifted) query workloads
through the query loss, no retraining from scratch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable

import numpy as np

from ..data.encoding import ColumnFactorization
from ..data.table import Table
from ..estimators.base import TrainableEstimator
from ..nn import functional as F
from ..nn.made import ResMADE
from ..nn.optim import Adam
from ..nn.tensor import Tensor
from ..workload.predicate import LabeledWorkload, Query
from .dps import DifferentiableProgressiveSampler, ScoreFunctionSampler
from .progressive import ProgressiveSampler, UniformSampler


@dataclass
class UAEConfig:
    """Hyper-parameters; defaults follow the paper scaled for CPU.

    Paper values are noted in parentheses where ours differ for runtime:
    ``dps_samples`` (S=200), ``est_samples`` (200 in-workload / 1000
    random), ``hidden`` (128).
    """

    hidden: int = 64
    num_blocks: int = 2
    encoding: str = "binary"
    embedding_threshold: int = 8192
    embedding_dim: int = 32
    factor_threshold: int = 2048
    factor_bits: int = 11
    lr: float = 2e-3
    batch_size: int = 512
    query_batch_size: int = 16
    dps_samples: int = 8
    est_samples: int = 128
    temperature: float = 1.0
    lam: float = 1e-4
    lr_decay: float = 1.0   # per-epoch multiplicative LR decay
    wildcard_max_frac: float = 0.5
    discrepancy: str = "qerror"
    gradient_estimator: str = "gumbel"  # or "reinforce" (ablation)
    column_order: str = "natural"       # or "random" (ordering ablation)
    grad_clip: float | None = 8.0
    train_backend: str = "engine"       # or "legacy" (reference autograd)
    seed: int = 0


class UAE(TrainableEstimator):
    """The unified estimator.  ``mode`` at fit time selects D/Q/hybrid."""

    name = "UAE"

    def __init__(self, table: Table, config: UAEConfig | None = None,
                 **overrides):
        super().__init__(table)
        config = config or UAEConfig()
        if overrides:
            config = replace(config, **overrides)
        self.config = config
        self.rng = np.random.default_rng(config.seed)
        self.fact = ColumnFactorization(table, threshold=config.factor_threshold,
                                        bits=config.factor_bits)
        self._init_model_stack(self._build_order(config.column_order))
        self.model_codes = self.fact.encode_rows(table.codes)
        self.history: list[dict[str, float]] = []
        # Optional repro.obs.MetricsRegistry: when set (e.g. by
        # UAEServer), fit() records per-step counters/latency under
        # repro_train_*{mode=...}.  Not carried by snapshot()/clone().
        self.metrics = None

    def _init_model_stack(self, order: list[int] | None) -> None:
        """Model, optimizer, and samplers (shared by ``__init__`` and the
        lightweight :meth:`snapshot` path)."""
        config = self.config
        if config.train_backend not in ("engine", "legacy"):
            raise ValueError(
                f"unknown train_backend {config.train_backend!r}")
        self.model = ResMADE(self.fact.model_domains, hidden=config.hidden,
                             num_blocks=config.num_blocks, rng=self.rng,
                             encoding=config.encoding,
                             embedding_threshold=config.embedding_threshold,
                             embedding_dim=config.embedding_dim,
                             order=order)
        self.optimizer = Adam(self.model.parameters(), lr=config.lr,
                              grad_clip=config.grad_clip)
        self.sampler = ProgressiveSampler(self.model,
                                          num_samples=config.est_samples,
                                          seed=config.seed + 1)
        self.dps = DifferentiableProgressiveSampler(
            self.model, num_samples=config.dps_samples,
            temperature=config.temperature, seed=config.seed + 2,
            backend=config.train_backend)
        self.sf = ScoreFunctionSampler(self.model,
                                       num_samples=config.dps_samples,
                                       seed=config.seed + 2)
        self._fused_data = None  # lazy FusedDataLoss (engine backend)

    def _build_order(self, strategy: str) -> list[int] | None:
        """Column-ordering strategies (paper Section 4.2 / Naru, MADE).

        ``natural`` is the paper's left-to-right default.  ``random``
        permutes *original* columns but keeps each factored column's
        hi/lo digits adjacent (the low digit's constraint depends on the
        sampled high digit).
        """
        if strategy == "natural":
            return None
        if strategy != "random":
            raise ValueError(f"unknown column_order {strategy!r}")
        groups: list[list[int]] = []
        j = 0
        for spec in self.fact.specs:
            width = 2 if spec.factored else 1
            groups.append(list(range(j, j + width)))
            j += width
        self.rng.shuffle(groups)
        return [idx for group in groups for idx in group]

    # ------------------------------------------------------------------
    # Losses
    # ------------------------------------------------------------------
    def data_loss(self, batch_codes: np.ndarray) -> Tensor:
        """Eq. 2 with Naru-style wildcard dropout for skipping support.

        The default ``train_backend="engine"`` runs the hand-fused
        forward/backward kernel (:class:`repro.train.FusedDataLoss`);
        ``"legacy"`` keeps the original per-column ``F.cross_entropy``
        graph as the reference.  Both consume the wildcard-dropout RNG
        identically and agree on gradients to float32 rounding.
        """
        n = len(batch_codes)
        frac = self.rng.uniform(0.0, self.config.wildcard_max_frac, size=(n, 1))
        wildcard = self.rng.random((n, self.model.num_cols)) < frac
        if self.config.train_backend == "engine":
            if self._fused_data is None:
                from ..train import FusedDataLoss
                self._fused_data = FusedDataLoss(self.model)
            return self._fused_data.loss(batch_codes, wildcard)
        logits = self.model.forward_codes(batch_codes, wildcard=wildcard)
        loss: Tensor | None = None
        for col in range(self.model.num_cols):
            term = F.cross_entropy(self.model.logits_for(logits, col),
                                   batch_codes[:, col])
            loss = term if loss is None else loss + term
        return loss

    @property
    def train_backend(self) -> str:
        return self.config.train_backend

    @train_backend.setter
    def train_backend(self, backend: str) -> None:
        """Switch the training fast path on or off (``"engine"`` /
        ``"legacy"``) without touching weights or optimizer state."""
        if backend not in ("engine", "legacy"):
            raise ValueError(f"unknown train_backend {backend!r}")
        self.config = replace(self.config, train_backend=backend)
        self.dps.backend = backend

    def _discrepancy(self, est: Tensor, true_sels: np.ndarray) -> Tensor:
        kind = self.config.discrepancy
        if kind == "qerror":
            return F.qerror_loss(est, true_sels)
        if kind == "mse":
            return F.mse_loss(est, true_sels)
        if kind == "msle":
            return F.msle_loss(est, true_sels)
        raise ValueError(f"unknown discrepancy {kind!r}")

    def query_loss(self, constraints: list[list],
                   true_sels: np.ndarray) -> Tensor:
        """Eq. 5 through DPS (or the REINFORCE surrogate for the ablation)."""
        if self.config.gradient_estimator == "reinforce":
            surrogate, _ = self.sf.surrogate(constraints, true_sels)
            return surrogate
        est = self.dps.estimate_batch(constraints)
        return self._discrepancy(est, true_sels)

    # ------------------------------------------------------------------
    # Training (Algorithm 3)
    # ------------------------------------------------------------------
    def fit(self, epochs: int = 10, workload: LabeledWorkload | None = None,
            mode: str = "hybrid",
            on_epoch_end: Callable[[int, "UAE"], None] | None = None,
            query_steps_per_epoch: int | None = None,
            validation: LabeledWorkload | None = None,
            patience: int | None = None) -> "UAE":
        """Train the single set of weights from data and/or queries.

        ``mode``: ``"data"`` (UAE-D / Naru), ``"query"`` (UAE-Q) or
        ``"hybrid"`` (Algorithm 3 — requires ``workload``).

        With ``validation`` and ``patience``, training stops early once
        the validation mean q-error fails to improve for ``patience``
        epochs, restoring the best weights seen.
        """
        if mode not in ("data", "query", "hybrid"):
            raise ValueError(f"unknown mode {mode!r}")
        if mode in ("query", "hybrid") and workload is None:
            raise ValueError(f"mode {mode!r} needs a labeled workload")

        prepared = self._prepare_workload(workload) if workload else None
        rows = self.model_codes
        steps = max(1, int(np.ceil(len(rows) / self.config.batch_size)))
        if mode == "query":
            steps = query_steps_per_epoch or max(
                1, len(workload) // self.config.query_batch_size)

        best_score = np.inf
        best_state = None
        best_opt_state = None
        stale_epochs = 0
        base_lr = self.optimizer.lr

        step_counter = step_timer = None
        if self.metrics is not None:
            step_counter = self.metrics.counter(
                "repro_train_steps_total", "Optimizer steps taken",
                ("mode",)).labels(mode=mode)
            step_timer = self.metrics.histogram(
                "repro_train_step_seconds", "Wall time per optimizer step",
                ("mode",)).labels(mode=mode)

        for epoch in range(epochs):
            self.optimizer.lr = base_lr * self.config.lr_decay ** epoch
            epoch_data, epoch_query, count = 0.0, 0.0, 0
            for _ in range(steps):
                step_t0 = time.perf_counter() if step_timer is not None \
                    else 0.0
                loss: Tensor | None = None
                if mode in ("data", "hybrid"):
                    idx = self.rng.integers(0, len(rows),
                                            self.config.batch_size)
                    loss = self.data_loss(rows[idx])
                    epoch_data += loss.item()
                if mode in ("query", "hybrid"):
                    q_loss = self._query_step_loss(prepared)
                    epoch_query += q_loss.item()
                    scale = self.config.lam if mode == "hybrid" else 1.0
                    loss = q_loss * scale if loss is None \
                        else loss + q_loss * scale
                self.optimizer.zero_grad()
                loss.backward()
                self.optimizer.step()
                count += 1
                if step_timer is not None:
                    step_timer.observe(time.perf_counter() - step_t0)
                    step_counter.inc()
            record = {
                "epoch": len(self.history),
                "data_loss": epoch_data / count,
                "query_loss": epoch_query / count,
                "mode": mode,
            }
            if validation is not None:
                record["val_qerror"] = self._validation_qerror(validation)
            self.history.append(record)
            if on_epoch_end is not None:
                on_epoch_end(epoch, self)
            if validation is not None and patience is not None:
                score = record["val_qerror"]
                if score < best_score - 1e-9:
                    best_score = score
                    best_state = self.model.state_dict()
                    best_opt_state = self.optimizer.state_dict()
                    stale_epochs = 0
                else:
                    stale_epochs += 1
                    if stale_epochs >= patience:
                        break
        self.optimizer.lr = base_lr
        if best_state is not None:
            # Restore the optimizer moments/step counter captured with
            # the best weights: rewinding weights alone would leave Adam
            # state accumulated toward the discarded trajectory, so a
            # follow-up ``ingest_*`` call would warm-start its first
            # steps from mismatched moments.
            self.model.load_state_dict(best_state)
            self.optimizer.load_state_dict(best_opt_state)
        return self

    def _validation_qerror(self, validation: LabeledWorkload,
                           max_queries: int = 64) -> float:
        queries = validation.queries[:max_queries]
        truths = validation.cardinalities[:max_queries]
        estimates = self.estimate_many(queries)
        from ..workload.metrics import qerrors
        return float(qerrors(estimates, truths).mean())

    def _prepare_workload(self, workload: LabeledWorkload) -> dict:
        constraints = [self.fact.expand_masks(q.masks(self.table))
                       for q in workload.queries]
        sels = workload.selectivities(self.table.num_rows)
        return {"constraints": constraints,
                "sels": sels.astype(np.float64)}

    def _query_step_loss(self, prepared: dict) -> Tensor:
        n = len(prepared["constraints"])
        take = min(self.config.query_batch_size, n)
        idx = self.rng.choice(n, size=take, replace=False)
        constraints = [prepared["constraints"][i] for i in idx]
        sels = prepared["sels"][idx]
        return self.query_loss(constraints, sels)

    # ------------------------------------------------------------------
    # Incremental ingestion (Section 4.5)
    # ------------------------------------------------------------------
    def ingest_data(self, new_codes: np.ndarray, epochs: int = 3) -> "UAE":
        """Refine on freshly inserted tuples via the data loss only."""
        new_model_codes = self.fact.encode_rows(
            np.asarray(new_codes, dtype=np.int32))
        steps = max(1, int(np.ceil(len(new_model_codes)
                                   / self.config.batch_size)))
        for _ in range(epochs):
            for _ in range(steps):
                idx = self.rng.integers(0, len(new_model_codes),
                                        min(self.config.batch_size,
                                            len(new_model_codes)))
                loss = self.data_loss(new_model_codes[idx])
                self.optimizer.zero_grad()
                loss.backward()
                self.optimizer.step()
        self.model_codes = np.vstack([self.model_codes, new_model_codes])
        self.table = self.table.append_rows(new_codes)
        return self

    def ingest_queries(self, workload: LabeledWorkload,
                       epochs: int = 10) -> "UAE":
        """Adapt to a shifted workload via the query loss only.

        The paper finds 10-20 epochs suffice without catastrophic
        forgetting (Section 4.5).
        """
        prepared = self._prepare_workload(workload)
        return self.ingest_constraints(prepared["constraints"],
                                       prepared["sels"], epochs=epochs)

    def ingest_constraints(self, constraints: list[list],
                           true_sels: np.ndarray,
                           epochs: int = 10) -> "UAE":
        """Query-driven refinement from pre-expanded constraint lists.

        The serving layer's join path lands here: ``JoinQuery`` feedback
        arrives already translated into fanout-scaled constraints (which
        :meth:`_prepare_workload` cannot produce from table-qualified
        predicates), with true cardinalities normalized by the join size
        instead of the table's row count.
        """
        prepared = {"constraints": list(constraints),
                    "sels": np.asarray(true_sels, dtype=np.float64)}
        steps = max(1, len(prepared["constraints"])
                    // self.config.query_batch_size)
        for _ in range(epochs):
            for _ in range(steps):
                loss = self._query_step_loss(prepared)
                self.optimizer.zero_grad()
                loss.backward()
                self.optimizer.step()
        return self

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def estimate_selectivity(self, query: Query) -> float:
        constraints = self.fact.expand_masks(query.masks(self.table))
        return self.sampler.estimate(constraints)

    def estimate(self, query: Query) -> float:
        return self._clamp_card(self.estimate_selectivity(query))

    def estimate_interval(self, query: Query,
                          z: float = 1.96) -> tuple[float, float, float]:
        """Cardinality estimate with a normal-approximation confidence
        interval from the progressive-sampling Monte-Carlo error."""
        constraints = self.fact.expand_masks(query.masks(self.table))
        sel, err = self.sampler.estimate_with_error(constraints)
        n = self.table.num_rows
        low = max((sel - z * err) * n, 0.0)
        high = min((sel + z * err) * n, float(n))
        return sel * n, low, high

    def estimate_many(self, queries: list[Query],
                      batch_queries: int | None = None) -> np.ndarray:
        """Batched estimation through the inference engine's scheduler.

        Queries are grouped by queried-column signature so each group runs
        only the autoregressive steps it needs; ``batch_queries`` caps the
        per-call group size (default: the scheduler's row budget).
        """
        if not queries:
            return np.zeros(0, dtype=np.float64)
        constraints = [self.fact.expand_masks(q.masks(self.table))
                       for q in queries]
        sels = self.estimate_constraints_many(constraints,
                                              batch_queries=batch_queries)
        return np.clip(sels, 0.0, 1.0) * self.table.num_rows

    def estimate_constraints_many(self, constraint_lists: list[list],
                                  batch_queries: int | None = None
                                  ) -> np.ndarray:
        """Scheduled selectivity estimates for raw constraint lists."""
        if not constraint_lists:
            return np.zeros(0, dtype=np.float64)
        if batch_queries is not None and self.sampler.backend == "engine":
            base = self.sampler.scheduler
            scheduler = type(base)(
                self.sampler.engine,
                max_rows=batch_queries * self.sampler.num_samples,
                min_group_size=base.min_group_size,
                coalesce_rows=base.coalesce_rows)
            return scheduler.estimate_many(
                constraint_lists, self.sampler.num_samples, self.sampler.rng)
        return self.sampler.estimate_many(constraint_lists)

    def estimate_uniform(self, query: Query, num_samples: int = 200) -> float:
        """Uniform-sampling inference (Eq. 4) for the sampler ablation."""
        uniform = UniformSampler(self.model, num_samples=num_samples,
                                 seed=self.config.seed + 3)
        constraints = self.fact.expand_masks(query.masks(self.table))
        return self._clamp_card(uniform.estimate(constraints))

    # ------------------------------------------------------------------
    # Database generation (paper Section 6: the generative nature of UAE-Q
    # enables sampling tuples for DBMS testing / benchmarking).
    # ------------------------------------------------------------------
    def sample_tuples(self, n: int, seed: int | None = None) -> np.ndarray:
        """Ancestral sampling of ``n`` tuples from the learned joint.

        Returns code rows in the *original* table's column space (factored
        model columns are recombined).  Because UAE is a proper generative
        model — unlike discriminative query-driven estimators — this is a
        plain forward pass per column, no normalizing constant needed.
        """
        rng = np.random.default_rng(self.config.seed + 17 if seed is None
                                    else seed)
        model = self.model
        compiled = self.sampler.engine.compiled
        compiled.ensure_current()
        x = np.repeat(compiled.wildcard_row, n, axis=0)
        sampled = np.zeros((n, model.num_cols), dtype=np.int32)
        from ..nn.functional import softmax_np
        from .gumbel import hard_sample_np
        for col in model.order:
            h = compiled.hidden(x)
            probs = softmax_np(compiled.column_logits(h, col))
            codes = hard_sample_np(probs, rng)
            sampled[:, col] = codes
            x[:, model.input_slices[col]] = \
                model.encoders[col].encode_hard(codes)
        return self.fact.decode_rows(sampled)

    def sample_table(self, n: int, seed: int | None = None) -> Table:
        """Sampled tuples as a full :class:`Table` (decoded raw values)."""
        codes = self.sample_tuples(n, seed=seed)
        data = {col.name: col.decode(codes[:, j])
                for j, col in enumerate(self.table.columns)}
        return Table.from_raw(f"{self.table.name}_generated", data)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        """Save weights + config to an ``.npz`` checkpoint."""
        import json
        from dataclasses import asdict
        state = self.model.state_dict()
        meta = {"config": asdict(self.config),
                "domains": self.fact.model_domains,
                "table_name": self.table.name,
                "num_rows": self.table.num_rows}
        np.savez(path, __meta__=np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8), **state)

    @classmethod
    def load(cls, path: str, table: Table) -> "UAE":
        """Rebuild a UAE from a checkpoint; ``table`` must match the one
        the model was trained on (same columns and domains)."""
        import json
        with np.load(path) as payload:
            meta = json.loads(bytes(payload["__meta__"]).decode())
            state = {k: payload[k] for k in payload.files if k != "__meta__"}
        config = UAEConfig(**meta["config"])
        model = cls(table, config)
        if model.fact.model_domains != meta["domains"]:
            raise ValueError(
                "table schema does not match the checkpoint: model domains "
                f"{meta['domains']} != {model.fact.model_domains}")
        model.model.load_state_dict(state)
        return model

    # ------------------------------------------------------------------
    def clone(self, **overrides) -> "UAE":
        """A new UAE with the same table and copied weights.

        Used by the hyper-parameter studies (Section 5.3): pretrain once
        with UAE-D, then refine copies under different tau / S / lambda.
        """
        other = UAE(self.table, self.config, **overrides)
        other.model.load_state_dict(self.model.state_dict())
        return other

    def snapshot(self) -> "UAE":
        """Detached serving copy with a warm compiled engine.

        The hook behind :class:`repro.serve.ModelRegistry`'s hot-swap:
        the copy owns its weights (``load_state_dict`` deep-copies and
        bumps parameter versions, see :mod:`repro.infer.compiled`), so
        continued training on this estimator can never corrupt or stale
        an estimate in flight on the snapshot.  Unlike :meth:`clone`, the
        immutable data artifacts — ``table``, the factorization, and the
        encoded ``model_codes`` — are *shared*, not rebuilt: publishing a
        snapshot costs O(weights), not O(rows), and the registry's
        retained versions do not each hold an encoded table copy
        (``ingest_data`` replaces rather than mutates those objects, so
        sharing is safe).  The engine is compiled eagerly so the first
        estimate after a swap pays no rebuild.
        """
        import copy
        snap = copy.copy(self)
        snap.rng = np.random.default_rng(self.config.seed)
        # Fresh model stack with the trainer's realized column order
        # (preserves "random"-order models), then adopt the weights.
        snap._init_model_stack(list(self.model.order))
        snap.model.load_state_dict(self.model.state_dict())
        snap.history = list(self.history)
        snap.sampler.engine.compiled.ensure_current()
        return snap

    def swap_weights(self, state: dict[str, np.ndarray]) -> "UAE":
        """Atomically adopt a full weight set (registry rollback hook).

        ``load_state_dict`` bumps every parameter version, which
        invalidates this estimator's compiled inference caches on the
        next use — estimates issued after the swap always see the new
        weights.  The optimizer is rebuilt (current learning rate kept):
        Adam moments accumulated toward the replaced weights would bias
        the first steps after a rollback back toward the rejected
        trajectory.
        """
        self.model.load_state_dict(state)
        lr = self.optimizer.lr
        self.optimizer = Adam(self.model.parameters(), lr=lr,
                              grad_clip=self.config.grad_clip)
        return self

    def size_bytes(self) -> int:
        return self.model.size_bytes()

    def loglikelihood(self, codes: np.ndarray) -> float:
        """Mean log-likelihood of raw-table code rows (diagnostics)."""
        model_codes = self.fact.encode_rows(np.asarray(codes, dtype=np.int32))
        return float(-self.model.nll_np(model_codes).mean())
