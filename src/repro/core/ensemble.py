"""Horizontally-partitioned UAE ensemble.

The paper (Section 4.1) discusses ensembles as a complementary idea:
"Using ensembles is orthogonal to UAE.  We can integrate UAE with ensemble
methods if good ensemble methods could be designed" — and criticises
SPN-style ensembles for re-introducing independence assumptions when
combining components.

Horizontal partitioning avoids that trap entirely: split the *rows* by a
partition column's value ranges, train one UAE per partition, and combine
with plain addition — ``Card(q) = sum_p Card_p(q)`` holds exactly for
disjoint row sets, no independence assumption anywhere.  Each component
model focuses its capacity on one data region, which is the tail-accuracy
motivation the paper raises.
"""

from __future__ import annotations

import numpy as np

from ..data.table import Table
from ..estimators.base import TrainableEstimator
from ..workload.predicate import LabeledWorkload, Query
from .uae import UAE, UAEConfig


class PartitionedUAE(TrainableEstimator):
    """An exact additive ensemble of per-partition UAE models."""

    name = "UAE-ensemble"

    def __init__(self, table: Table, partition_column: str,
                 num_partitions: int = 2, config: UAEConfig | None = None,
                 **overrides):
        super().__init__(table)
        if num_partitions < 1:
            raise ValueError("need at least one partition")
        self.partition_column = partition_column
        col_idx = table.column_index(partition_column)
        column = table.columns[col_idx]
        # Equi-depth partition boundaries over the partition column.
        codes = np.sort(table.codes[:, col_idx])
        bounds = [codes[int(len(codes) * k / num_partitions)]
                  for k in range(1, num_partitions)]
        self.boundaries = sorted(set(int(b) for b in bounds))
        self.partitions: list[UAE] = []
        self.partition_masks: list[np.ndarray] = []
        edges = [0] + [b + 1 for b in self.boundaries] + [column.size]
        for lo, hi in zip(edges[:-1], edges[1:]):
            domain_mask = np.zeros(column.size, dtype=bool)
            domain_mask[lo:hi] = True
            rows = domain_mask[table.codes[:, col_idx]]
            if not rows.any():
                continue
            sub = Table(f"{table.name}_p{lo}_{hi}", table.columns,
                        table.codes[rows])
            self.partitions.append(UAE(sub, config, **overrides))
            self.partition_masks.append(domain_mask)

    def fit(self, workload: LabeledWorkload | None = None,
            epochs: int = 10, mode: str = "data", **kwargs
            ) -> "PartitionedUAE":
        """Train every component; with a workload, queries are routed to
        the partitions they overlap (cardinalities rescaled by overlap
        via per-partition ground truth)."""
        for model in self.partitions:
            if workload is not None and mode in ("hybrid", "query"):
                local = self._localize(workload, model)
                if len(local) == 0:
                    model.fit(epochs=epochs, mode="data", **kwargs)
                else:
                    model.fit(epochs=epochs, workload=local, mode=mode,
                              **kwargs)
            else:
                model.fit(epochs=epochs, mode="data", **kwargs)
        return self

    def _localize(self, workload: LabeledWorkload, model: UAE
                  ) -> LabeledWorkload:
        """Re-label the workload with per-partition true cardinalities."""
        from ..workload.executor import true_cardinality
        queries, cards = [], []
        for query in workload.queries:
            card = true_cardinality(model.table, query)
            if card > 0:
                queries.append(query)
                cards.append(card)
        return LabeledWorkload(queries, np.asarray(cards, dtype=np.float64))

    # ------------------------------------------------------------------
    def estimate(self, query: Query) -> float:
        col_idx = self.table.column_index(self.partition_column)
        masks = query.masks(self.table)
        query_mask = masks.get(col_idx)
        total = 0.0
        for model, domain_mask in zip(self.partitions,
                                      self.partition_masks):
            if query_mask is not None \
                    and not (query_mask & domain_mask).any():
                continue  # the query cannot touch this partition
            total += model.estimate(query)
        return float(min(total, self.table.num_rows))

    def estimate_many(self, queries: list[Query]) -> np.ndarray:
        """Batched additive combination.

        Each partition estimates all queries that can touch it in one
        scheduled engine run instead of a per-query Python loop; totals
        are accumulated additively exactly as :meth:`estimate` does.
        """
        col_idx = self.table.column_index(self.partition_column)
        query_masks = [q.masks(self.table).get(col_idx) for q in queries]
        totals = np.zeros(len(queries), dtype=np.float64)
        for model, domain_mask in zip(self.partitions, self.partition_masks):
            relevant = [i for i, qm in enumerate(query_masks)
                        if qm is None or (qm & domain_mask).any()]
            if not relevant:
                continue
            ests = model.estimate_many([queries[i] for i in relevant])
            totals[relevant] += ests
        return np.minimum(totals, self.table.num_rows)

    def size_bytes(self) -> int:
        return sum(m.size_bytes() for m in self.partitions)
