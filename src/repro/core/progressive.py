"""Progressive sampling for range-query inference (paper Section 4.2).

Monte-Carlo integration over the query region: sample each attribute in
autoregressive order from the model's conditional distribution *truncated to
the query region*, accumulating the probability mass the region retains at
every step.  The average of the per-sample products is an unbiased estimate
of the query selectivity.

Estimation runs on the compiled inference engine (:mod:`repro.infer`) by
default: fused masked weights, packed constraints, prefix-state
deduplication and a signature-grouping batch scheduler.  The original
pure-numpy loop is kept as ``backend="legacy"`` /
:meth:`ProgressiveSampler.estimate_batch_legacy` — it is the reference
implementation the engine's equivalence tests and the latency benchmark
compare against.  Both paths share:

* **wildcard skipping** — unqueried columns keep their wildcard encoding
  and are skipped entirely (Section 4.6, Liang et al. 2020);
* **factorized columns** — low-digit masks are resolved per-sample from the
  sampled high digit (``("lo", grid)`` constraints, see
  :mod:`repro.data.encoding`);
* **query batching** — many queries are stacked into one matrix so the
  network forward passes amortise.
"""

from __future__ import annotations

import numpy as np

from ..infer import BatchScheduler, CompiledModel, InferenceEngine
from ..nn.functional import log_softmax_np
from ..nn.made import ResMADE
from .gumbel import hard_sample_np


def _softmax_np(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class ProgressiveSampler:
    """Estimates selectivities for constraint lists over *model columns*.

    A constraint list is what :meth:`ColumnFactorization.expand_masks`
    produces: per model column either ``None``, ``("fixed", mask)``,
    ``("scaled", mask, gain)`` or ``("lo", grid)``.

    ``backend="engine"`` (default) runs the compiled inference engine;
    ``backend="legacy"`` runs the original reference loop.
    """

    def __init__(self, model: ResMADE, num_samples: int = 200,
                 seed: int = 0, backend: str = "engine",
                 max_batch_rows: int = 8192):
        if backend not in ("engine", "legacy"):
            raise ValueError(f"unknown backend {backend!r}")
        self.model = model
        self.num_samples = num_samples
        self.rng = np.random.default_rng(seed)
        self.backend = backend
        self.max_batch_rows = max_batch_rows
        self._engine: InferenceEngine | None = None
        self._scheduler: BatchScheduler | None = None

    @property
    def engine(self) -> InferenceEngine:
        """Compiled engine, built lazily so legacy-backend samplers never
        pay for the weight snapshot."""
        if self._engine is None:
            self._engine = InferenceEngine(self.model)
        return self._engine

    @property
    def scheduler(self) -> BatchScheduler:
        if self._scheduler is None:
            self._scheduler = BatchScheduler(self.engine,
                                             max_rows=self.max_batch_rows)
        return self._scheduler

    # ------------------------------------------------------------------
    def estimate(self, constraints: list) -> float:
        return float(self.estimate_batch([constraints])[0])

    def estimate_with_error(self, constraints: list) -> tuple[float, float]:
        """Estimate plus its Monte-Carlo standard error.

        Progressive sampling averages independent per-sample densities, so
        the standard error of the mean quantifies the estimate's
        uncertainty — useful for choosing the sample count and for
        risk-aware optimizers.
        """
        sels, errs = self.estimate_batch([constraints], with_error=True)
        return float(sels[0]), float(errs[0])

    def estimate_batch(self, constraint_lists: list[list],
                       with_error: bool = False):
        """Selectivity estimates for a batch of queries."""
        if self.backend == "engine":
            return self.engine.estimate_batch(
                constraint_lists, self.num_samples, self.rng,
                with_error=with_error)
        return self.estimate_batch_legacy(constraint_lists,
                                          with_error=with_error)

    def estimate_many(self, constraint_lists: list[list],
                      with_error: bool = False):
        """Estimates for a large query mix, scheduled by signature.

        Unlike :meth:`estimate_batch` — which runs every query through the
        union of the batch's queried columns — signature groups execute
        only their own autoregressive steps.  Groups below the
        scheduler's ``min_group_size`` are coalesced into mixed batches
        for throughput; configure the scheduler with ``min_group_size=1``
        when exact single-query-path execution matters more.
        """
        if self.backend == "engine":
            return self.scheduler.estimate_many(
                constraint_lists, self.num_samples, self.rng,
                with_error=with_error)
        results = [self.estimate_batch_legacy([cl], with_error=with_error)
                   for cl in constraint_lists]
        if with_error:
            return (np.array([r[0][0] for r in results]),
                    np.array([r[1][0] for r in results]))
        return np.array([r[0] for r in results])

    # ------------------------------------------------------------------
    # Legacy reference implementation
    # ------------------------------------------------------------------
    def estimate_batch_legacy(self, constraint_lists: list[list],
                              with_error: bool = False):
        """The original per-row numpy loop, kept as the reference the
        compiled engine is validated (and benchmarked) against."""
        model = self.model
        n_queries = len(constraint_lists)
        s = self.num_samples
        batch = n_queries * s

        # Which columns are queried by at least one query in the batch;
        # iteration follows the model's autoregressive order.
        queried = [any(cl[c] is not None for cl in constraint_lists)
                   for c in range(model.num_cols)]
        last_pos = max((model.position[c] for c in range(model.num_cols)
                        if queried[c]), default=-1)

        # Start fully wildcarded.
        zero_codes = np.zeros((batch, model.num_cols), dtype=np.int64)
        all_wild = np.ones((batch, model.num_cols), dtype=bool)
        x = model.encode_tuples(zero_codes, wildcard=all_wild)

        density = np.ones(batch, dtype=np.float64)
        sampled: dict[int, np.ndarray] = {}

        for pos in range(last_pos + 1):
            col = model.order[pos]
            if not queried[col]:
                continue
            valid, gain = self._valid_matrix(constraint_lists, col, s, sampled)
            h = model.hidden_np(x)
            logits = model.column_logits_np(h, col)
            probs = _softmax_np(logits)
            weight = valid if gain is None else valid * gain
            in_region = (probs * weight).sum(axis=1)
            density *= in_region
            if pos == last_pos:
                break  # no need to sample the final queried column
            # Truncate + renormalise; the proposal is reweighted by the
            # gain so downstream contributions stay unbiased.  Rows with
            # zero mass sample uniformly over the valid set (their density
            # is already 0).
            truncated = probs * weight
            mass = truncated.sum(axis=1, keepdims=True)
            dead = mass[:, 0] <= 0
            if dead.any():
                fallback = valid[dead].astype(np.float64)
                empty = fallback.sum(axis=1) == 0
                fallback[empty] = 1.0  # empty region: sample anywhere
                fallback /= fallback.sum(axis=1, keepdims=True)
                truncated[dead] = fallback
                mass = truncated.sum(axis=1, keepdims=True)
            truncated = truncated / np.maximum(mass, 1e-30)
            codes = hard_sample_np(truncated, self.rng)
            sampled[col] = codes
            enc = model.encoders[col].encode_hard(codes)
            x[:, model.input_slices[col]] = enc
        per_sample = density.reshape(n_queries, s)
        result = np.clip(per_sample.mean(axis=1), 0.0, 1.0)
        if with_error:
            std_err = per_sample.std(axis=1, ddof=1) / np.sqrt(s) \
                if s > 1 else np.zeros(n_queries)
            return result, std_err
        return result

    # ------------------------------------------------------------------
    def _valid_matrix(self, constraint_lists: list[list], col: int, s: int,
                      sampled: dict[int, np.ndarray]
                      ) -> tuple[np.ndarray, np.ndarray | None]:
        """Validity (and optional gain) matrices for model column ``col``.

        Fixed masks broadcast per query; ``("lo", grid)`` masks are looked
        up per-sample using the high digit sampled at ``col - 1``;
        ``("scaled", mask, g)`` contributes the per-value gain ``g`` (the
        join estimator's ``1/fanout`` factors).  The compiled-constraint
        equivalent is :meth:`repro.infer.CompiledConstraints.valid_gain_rows`.
        """
        domain = self.model.domain_sizes[col]
        rows = []
        gains: list[np.ndarray] | None = None
        for qi, cl in enumerate(constraint_lists):
            cons = cl[col]
            if cons is None:
                rows.append(np.ones((s, domain), dtype=bool))
            elif cons[0] == "fixed":
                rows.append(np.broadcast_to(cons[1], (s, domain)))
            elif cons[0] == "scaled":
                rows.append(np.broadcast_to(cons[1], (s, domain)))
                if gains is None:
                    gains = [np.ones((s, domain))] * qi
                gains.append(np.broadcast_to(cons[2], (s, domain)))
            elif cons[0] == "lo":
                hi_codes = sampled.get(col - 1)
                if hi_codes is None:
                    # High digit was the final sampled column for another
                    # query; fall back to the union over high digits.
                    union = cons[1].any(axis=0)
                    rows.append(np.broadcast_to(union, (s, domain)))
                else:
                    grid = cons[1]
                    rows.append(grid[hi_codes[qi * s:(qi + 1) * s]])
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown constraint kind {cons[0]!r}")
            if gains is not None and len(gains) < qi + 1:
                gains.append(np.ones((s, domain)))
        valid = np.concatenate(rows, axis=0)
        gain = None if gains is None else np.concatenate(gains, axis=0)
        return valid, gain


class UniformSampler:
    """Uniform-sampling baseline for range queries (paper Eq. 4).

    Samples tuples uniformly from the query region and averages the model
    density times the region volume — higher variance than progressive
    sampling on skewed data, kept for the ablation benchmark.  The forward
    pass runs through the compiled model snapshot.
    """

    def __init__(self, model: ResMADE, num_samples: int = 200, seed: int = 0):
        self.model = model
        self.compiled = CompiledModel(model)
        self.num_samples = num_samples
        self.rng = np.random.default_rng(seed)

    def estimate(self, constraints: list) -> float:
        model = self.model
        s = self.num_samples
        volume = 1.0
        columns = []
        for col in range(model.num_cols):
            cons = constraints[col]
            if cons is None:
                columns.append(None)
                continue
            if cons[0] == "scaled":
                raise NotImplementedError(
                    "UniformSampler does not support fanout-scaled columns; "
                    "use ProgressiveSampler for join estimation")
            if cons[0] == "lo":
                mask = cons[1].any(axis=0)
            else:
                mask = cons[1]
            valid_codes = np.flatnonzero(mask)
            if len(valid_codes) == 0:
                return 0.0
            volume *= len(valid_codes)
            columns.append(valid_codes)
        codes = np.zeros((s, model.num_cols), dtype=np.int64)
        wildcard = np.zeros((s, model.num_cols), dtype=bool)
        for col, valid_codes in enumerate(columns):
            if valid_codes is None:
                wildcard[:, col] = True
            else:
                codes[:, col] = self.rng.choice(valid_codes, size=s)
        # Model density of each sampled point, with wildcards marginalised
        # by the wildcard-trained network.
        self.compiled.ensure_current()
        x = model.encode_tuples(codes, wildcard=wildcard)
        logits = self.compiled.all_logits(x)
        logp = np.zeros(s, dtype=np.float64)
        for col, valid_codes in enumerate(columns):
            if valid_codes is None:
                continue
            lp = log_softmax_np(model.logits_for_np(logits, col))
            logp += lp[np.arange(s), codes[:, col]]
        return float(np.clip(np.exp(logp).mean() * volume, 0.0, 1.0))
