"""Plan representation and a textbook hash-join cost model.

"Execution time" in this reproduction is the plan's cost evaluated with
*true* cardinalities (DESIGN.md): the planner picks a join order using an
estimator's cardinalities, then we score the chosen plan with ground truth,
which is precisely the mechanism Figure 6 demonstrates (better estimates →
better plans → faster execution).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

CardFn = Callable[[frozenset], float]


@dataclass(frozen=True)
class Plan:
    """A binary join tree over table names."""

    tables: frozenset
    left: "Plan | None" = None
    right: "Plan | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    def __str__(self) -> str:
        if self.is_leaf:
            return next(iter(self.tables))
        return f"({self.left} ⋈ {self.right})"


def scan_cost(rows: float) -> float:
    """Cost of scanning a (filtered) base table."""
    return rows


def join_cost(build_rows: float, probe_rows: float, out_rows: float) -> float:
    """Hash join: build the smaller side, probe the larger, emit output."""
    build = min(build_rows, probe_rows)
    probe = max(build_rows, probe_rows)
    return 2.0 * build + probe + out_rows


def plan_cost(plan: Plan, card: CardFn) -> float:
    """Total cost of ``plan`` under the cardinality function ``card``."""
    if plan.is_leaf:
        return scan_cost(card(plan.tables))
    left_cost = plan_cost(plan.left, card)
    right_cost = plan_cost(plan.right, card)
    return (left_cost + right_cost
            + join_cost(card(plan.left.tables), card(plan.right.tables),
                        card(plan.tables)))


def plan_intermediates(plan: Plan) -> list[frozenset]:
    """Every subset whose cardinality the cost of ``plan`` depends on."""
    if plan.is_leaf:
        return [plan.tables]
    return (plan_intermediates(plan.left) + plan_intermediates(plan.right)
            + [plan.tables])
