"""Query-optimizer impact study (Figure 6): DP planner, cost model,
Postgres-style heuristic, serving-tier sub-plan provider, and the
estimate-injection harness."""

from .cost import Plan, join_cost, plan_cost, plan_intermediates, scan_cost
from .planner import JoinGraph, best_plan, connected, plan_for_query
from .postgres import MagicConstantHeuristic, PostgresHeuristic
from .study import (EstimatorCardAdapter, OptimizerResult, TrueCardOracle,
                    restrict_query, run_optimizer_study)
from .subplan import ServingCardinalityProvider, UESPessimisticProvider

__all__ = [
    "Plan", "plan_cost", "scan_cost", "join_cost", "plan_intermediates",
    "best_plan", "plan_for_query", "connected", "JoinGraph",
    "PostgresHeuristic", "MagicConstantHeuristic",
    "TrueCardOracle", "EstimatorCardAdapter", "OptimizerResult",
    "restrict_query", "run_optimizer_study",
    "ServingCardinalityProvider", "UESPessimisticProvider",
]
