"""The Figure 6 experiment: inject estimator cardinalities into the planner
and measure query "execution time" speedups against the Postgres heuristic.

For every test query:

1. each estimator produces cardinalities for all connected subqueries;
2. the DP planner picks a join order per estimator;
3. each chosen plan is scored with *true* cardinalities (the execution
   proxy — see DESIGN.md);
4. the speedup of estimator E on query q is
   ``exec_cost(plan_postgres) / exec_cost(plan_E)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..data.schema import Schema
from ..joins.workload import JoinQuery, true_join_cardinality
from ..workload.fragments import extract_fragment
from .cost import Plan, plan_cost
from .planner import plan_for_query
from .postgres import PostgresHeuristic


@dataclass
class OptimizerResult:
    estimator: str
    speedups: np.ndarray            # per query, vs the Postgres plan

    def summary(self) -> dict[str, float]:
        return {
            "median": float(np.median(self.speedups)),
            "mean": float(self.speedups.mean()),
            "p10": float(np.percentile(self.speedups, 10)),
            "p90": float(np.percentile(self.speedups, 90)),
        }


class TrueCardOracle:
    """Perfect cardinalities — the upper bound on plan quality."""

    name = "TrueCard"

    def __init__(self, schema: Schema):
        self.schema = schema
        self._cache: dict[tuple, float] = {}

    def card_fn(self, query: JoinQuery) -> Callable[[frozenset], float]:
        def fn(subset: frozenset) -> float:
            sub_query = restrict_query(query, subset)
            key = (tuple(sorted(subset)), str(sub_query))
            if key not in self._cache:
                self._cache[key] = float(
                    max(true_join_cardinality(self.schema, sub_query), 1.0))
            return self._cache[key]
        return fn


def restrict_query(query: JoinQuery, subset: frozenset) -> JoinQuery:
    """The subquery over ``subset``: keep only its tables' predicates.

    Thin wrapper over :func:`repro.workload.extract_fragment`, kept for
    the historical optimizer-study API.
    """
    return extract_fragment(query, subset)


class EstimatorCardAdapter:
    """Wraps any join estimator with ``estimate(JoinQuery)`` as a card fn."""

    def __init__(self, estimator, name: str | None = None):
        self.estimator = estimator
        self.name = name or getattr(estimator, "name", "estimator")

    def card_fn(self, query: JoinQuery) -> Callable[[frozenset], float]:
        cache: dict[tuple, float] = {}

        def fn(subset: frozenset) -> float:
            key = tuple(sorted(subset))
            if key not in cache:
                sub_query = restrict_query(query, subset)
                cache[key] = float(max(
                    self.estimator.estimate(sub_query), 1.0))
            return cache[key]
        return fn


def run_optimizer_study(schema: Schema, queries: list[JoinQuery],
                        estimators: list) -> list[OptimizerResult]:
    """Plan every query with every estimator; score against Postgres."""
    oracle = TrueCardOracle(schema)
    postgres = PostgresHeuristic(schema)
    results = []
    pg_costs = []
    plans_pg: list[Plan] = []
    for query in queries:
        true_fn = oracle.card_fn(query)
        plan_pg = plan_for_query(schema, list(query.tables),
                                 postgres.card_fn(query))
        plans_pg.append(plan_pg)
        pg_costs.append(plan_cost(plan_pg, true_fn))
    pg_costs_arr = np.asarray(pg_costs)

    for provider in [oracle] + estimators:
        speedups = []
        for qi, query in enumerate(queries):
            true_fn = oracle.card_fn(query)
            plan = plan_for_query(schema, list(query.tables),
                                  provider.card_fn(query))
            exec_cost = plan_cost(plan, true_fn)
            speedups.append(pg_costs_arr[qi] / max(exec_cost, 1e-9))
        results.append(OptimizerResult(getattr(provider, "name", "est"),
                                       np.asarray(speedups)))
    return results
