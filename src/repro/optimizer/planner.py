"""Selinger-style dynamic-programming join ordering with injected
cardinalities.

The paper modifies PostgreSQL to accept external cardinality estimates for
every subquery (Section 5.6, following Cai et al. 2019); this module is the
equivalent substrate: the DP planner consults an arbitrary cardinality
function, so swapping estimators changes only the numbers it sees.

Cross products are excluded: in a star schema a subset of tables is
connected iff it is a singleton or contains the center table.
"""

from __future__ import annotations

from itertools import combinations

from ..data.schema import Schema
from .cost import CardFn, Plan, join_cost, scan_cost


def connected(subset: frozenset, center: str) -> bool:
    """Star-schema connectivity: singleton or contains the center."""
    return len(subset) == 1 or center in subset


def best_plan(tables: list[str], center: str, card: CardFn) -> Plan:
    """Exhaustive DP over connected subsets (<= 2^|tables| states)."""
    tables = sorted(tables)
    if not tables:
        raise ValueError("no tables to plan")
    best: dict[frozenset, tuple[float, Plan]] = {}
    for name in tables:
        s = frozenset([name])
        best[s] = (scan_cost(card(s)), Plan(s))

    for size in range(2, len(tables) + 1):
        for combo in combinations(tables, size):
            subset = frozenset(combo)
            if not connected(subset, center):
                continue
            candidates: list[tuple[float, Plan]] = []
            # Enumerate partitions into two connected halves.
            members = sorted(subset)
            for r in range(1, size):
                for left_combo in combinations(members, r):
                    left = frozenset(left_combo)
                    right = subset - left
                    if left not in best or right not in best:
                        continue
                    out = card(subset)
                    cost = (best[left][0] + best[right][0]
                            + join_cost(card(left), card(right), out))
                    candidates.append(
                        (cost, Plan(subset, best[left][1], best[right][1])))
            if candidates:
                best[subset] = min(candidates, key=lambda t: t[0])
    full = frozenset(tables)
    if full not in best:
        raise RuntimeError("query graph is disconnected; cannot plan")
    return best[full][1]


def plan_for_query(schema: Schema, tables: list[str], card: CardFn) -> Plan:
    """Best DP plan for the query's tables under a card function."""
    return best_plan(tables, schema.center, card)
