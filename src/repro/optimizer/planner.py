"""Selinger-style dynamic-programming join ordering with injected
cardinalities.

The paper modifies PostgreSQL to accept external cardinality estimates for
every subquery (Section 5.6, following Cai et al. 2019); this module is the
equivalent substrate: the DP planner consults an arbitrary cardinality
function, so swapping estimators changes only the numbers it sees.

Cross products are excluded.  Connectivity comes from a
:class:`JoinGraph` derived from the schema's foreign keys; for a star
schema that reduces to the historical rule (a subset is connected iff it
is a singleton or contains the center table), which :func:`connected`
still implements directly for callers that pass a center name.
"""

from __future__ import annotations

from collections import deque
from itertools import combinations
from typing import Iterable

from ..data.schema import Schema
from .cost import CardFn, Plan, join_cost, scan_cost


def connected(subset: frozenset, center: str) -> bool:
    """Star-schema connectivity: singleton or contains the center."""
    return len(subset) == 1 or center in subset


class JoinGraph:
    """Join connectivity derived from foreign-key edges.

    Each foreign key contributes an undirected edge child—parent; a table
    subset is connected iff it induces a connected subgraph.  On a star
    schema this is exactly the :func:`connected` rule (children only meet
    through the center), but it also covers snowflakes and chains, which
    is what lets :func:`best_plan` drop the hard-coded star assumption.
    """

    def __init__(self, edges: Iterable[tuple[str, str]]):
        self.adjacency: dict[str, frozenset[str]] = {}
        adj: dict[str, set[str]] = {}
        for a, b in edges:
            adj.setdefault(a, set()).add(b)
            adj.setdefault(b, set()).add(a)
        self.adjacency = {name: frozenset(peers)
                          for name, peers in adj.items()}

    @classmethod
    def from_schema(cls, schema: Schema) -> "JoinGraph":
        return cls((fk.child, fk.parent) for fk in schema.foreign_keys)

    def neighbors(self, table: str) -> frozenset[str]:
        return self.adjacency.get(table, frozenset())

    def is_connected(self, subset: frozenset) -> bool:
        """True iff ``subset`` induces one connected component."""
        if not subset:
            return False
        if len(subset) == 1:
            return True
        start = next(iter(subset))
        seen = {start}
        frontier = deque([start])
        while frontier:
            here = frontier.popleft()
            for peer in self.neighbors(here) & subset:
                if peer not in seen:
                    seen.add(peer)
                    frontier.append(peer)
        return len(seen) == len(subset)

    def connected_subsets(self, tables: Iterable[str]) -> list[frozenset]:
        """Every non-empty connected subset of ``tables``, smallest
        first and lexicographic within a size — the deterministic
        fragment order the serving-tier sub-plan provider batches in."""
        members = sorted(set(tables))
        out: list[frozenset] = []
        for size in range(1, len(members) + 1):
            for combo in combinations(members, size):
                subset = frozenset(combo)
                if self.is_connected(subset):
                    out.append(subset)
        return out


def best_plan(tables: list[str], connectivity, card: CardFn) -> Plan:
    """Exhaustive DP over connected subsets (<= 2^|tables| states).

    ``connectivity`` is either a center-table name (the historical star
    rule) or a :class:`JoinGraph`-shaped object with ``is_connected``.

    Mirrored partitions cost the same — :func:`~repro.optimizer.cost.
    join_cost` is build/probe-symmetric and both halves' DP costs are
    shared — so each split is enumerated once: left halves run up to
    half the subset size, and an even split keeps the half holding the
    smallest member.  That kept candidate is the one the full
    enumeration's earliest-minimum tie-break chose, so plans are
    bit-identical to the pre-dedup planner at half the partition work.
    """
    tables = sorted(tables)
    if not tables:
        raise ValueError("no tables to plan")
    if isinstance(connectivity, str):
        center = connectivity
        def is_connected(subset: frozenset) -> bool:
            return connected(subset, center)
    else:
        is_connected = connectivity.is_connected

    best: dict[frozenset, tuple[float, Plan]] = {}
    for name in tables:
        s = frozenset([name])
        best[s] = (scan_cost(card(s)), Plan(s))

    for size in range(2, len(tables) + 1):
        for combo in combinations(tables, size):
            subset = frozenset(combo)
            if not is_connected(subset):
                continue
            candidates: list[tuple[float, Plan]] = []
            members = sorted(subset)
            out = card(subset)
            for r in range(1, size // 2 + 1):
                for left_combo in combinations(members, r):
                    left = frozenset(left_combo)
                    if 2 * r == size and members[0] not in left:
                        continue
                    right = subset - left
                    if left not in best or right not in best:
                        continue
                    cost = (best[left][0] + best[right][0]
                            + join_cost(card(left), card(right), out))
                    candidates.append(
                        (cost, Plan(subset, best[left][1], best[right][1])))
            if candidates:
                best[subset] = min(candidates, key=lambda t: t[0])
    full = frozenset(tables)
    if full not in best:
        raise RuntimeError("query graph is disconnected; cannot plan")
    return best[full][1]


def plan_for_query(schema: Schema, tables: list[str], card: CardFn) -> Plan:
    """Best DP plan for the query's tables under a card function."""
    return best_plan(tables, JoinGraph.from_schema(schema), card)
