"""Optimizer-in-the-loop: sub-plan cardinalities from the serving tier.

The DP planner asks for the cardinality of every connected fragment of a
query.  :class:`ServingCardinalityProvider` answers that card function
through a live serving front door (:class:`~repro.serve.router.
RoutedEstimateService` or a single :class:`~repro.serve.server.UAEServer`)
the way the related work's ``CardinalityGenerator`` adapters do — but
instead of up to ``2^N`` per-fragment round trips per plan it collects
the query's connected fragments up front (deterministic order: smallest
subsets first, lexicographic within a size) and issues **one batched,
seeded** ``estimate_batch`` call, so every sub-plan answer is
bit-reproducible against the single-process engine reference
(``estimate_on`` with the same snapshot, fragment order, and seed).

Answers are cached per (namespace version, fragment signature) and the
cache invalidates the way the serving tier's ``ResultCache`` does: a
newer published version clears it, so a hot-swap is immediately visible
to the planner.  Because a seeded batch's Monte-Carlo stream is shared
across the batch, fragment values are only reused for a query whose
*whole* fragment list was prefetched — reusing another query's partial
answers would silently break the bit-identity contract.

:class:`UESPessimisticProvider` is the pessimistic baseline: an
UES-style upper bound (Hertzschuch et al., CIDR 2021) propagating
per-edge frequency bounds, never below the true cardinality.
"""

from __future__ import annotations

import threading
import zlib

import numpy as np

from ..data.schema import Schema
from ..joins.workload import JoinQuery
from ..workload.fragments import extract_fragment, fragment_signature
from .cost import CardFn
from .planner import JoinGraph


class ServingCardinalityProvider:
    """A planner card function answered by the live serving tier.

    ``service`` is a routed front door (anything with ``resolve`` +
    ``estimate_batch``/``estimate_on``) or a bare ``UAEServer``.  The
    provider exposes the adapter API the optimizer study expects
    (``name`` + ``card_fn(query)``), plus counters the plan-quality
    bench gates on: ``batched_calls`` must equal the number of distinct
    plans prefetched (one round trip per plan) and ``fallback_calls``
    stays zero when every DP request was covered by the prefetch.
    """

    name = "UAE-serving"

    def __init__(self, service, schema: Schema, *, seed: int = 1234,
                 namespace: str | None = None):
        self.service = service
        self.schema = schema
        self.graph = JoinGraph.from_schema(schema)
        self.seed = int(seed)
        self.namespace = namespace
        self._lock = threading.Lock()
        self._versions: dict[str, int] = {}
        self._cache: dict[tuple, float] = {}
        self._prefetched: dict[tuple, np.ndarray] = {}
        self.batched_calls = 0
        self.fragments_estimated = 0
        self.fallback_calls = 0
        self.invalidations = 0

    # ------------------------------------------------------------------
    # Fragment plumbing
    # ------------------------------------------------------------------
    def plan_fragments(self, query: JoinQuery) -> list[JoinQuery]:
        """The query's connected fragments in the (deterministic) order
        the batched call estimates them."""
        return [extract_fragment(query, subset)
                for subset in self.graph.connected_subsets(query.tables)]

    def seed_for(self, query: JoinQuery) -> int:
        """Per-query sampling seed: derived from the provider seed and
        the query's signature via crc32 (stable across processes, unlike
        builtin ``hash``), so reference recomputations agree bit-for-bit
        wherever they run."""
        digest = zlib.crc32(repr(fragment_signature(query)).encode("utf-8"))
        return int((self.seed * 0x9E3779B1 + digest) % (2 ** 31 - 1))

    # ------------------------------------------------------------------
    # Serving-tier access
    # ------------------------------------------------------------------
    def _target(self, query) -> tuple[str, int]:
        """(namespace name, live model version) serving ``query``."""
        resolve = getattr(self.service, "resolve", None)
        if resolve is not None:
            space = resolve(query, namespace=self.namespace)
            return space.name, space.version
        return (getattr(self.service, "namespace", "default"),
                self.service.registry.version)

    def _estimate(self, fragments: list, seed: int) -> np.ndarray:
        if hasattr(self.service, "resolve"):
            return self.service.estimate_batch(
                fragments, namespace=self.namespace, seed=seed)
        return self.service.estimate_batch(fragments, seed=seed)

    def reference(self, query: JoinQuery) -> np.ndarray:
        """Single-process seeded engine answers for the plan's fragments
        — what :meth:`prefetch` must match bit-for-bit."""
        fragments = self.plan_fragments(query)
        seed = self.seed_for(query)
        if hasattr(self.service, "resolve"):
            space = self.service.resolve(query, namespace=self.namespace)
            return self.service.estimate_on(space.name, fragments, seed=seed)
        snap = self.service.registry.active()
        return self.service.service.estimate_on(snap, fragments, seed=seed)

    # ------------------------------------------------------------------
    # Cache (ResultCache-style version sync)
    # ------------------------------------------------------------------
    def _sync_locked(self, name: str, version: int) -> None:
        stored = self._versions.get(name)
        if stored is None or version > stored:
            self._versions[name] = version
            if stored is not None:
                self.invalidations += 1
            self._cache = {key: value for key, value in self._cache.items()
                           if key[0] != name}
            self._prefetched = {key: value
                                for key, value in self._prefetched.items()
                                if key[0] != name}

    def prefetch(self, query: JoinQuery) -> np.ndarray:
        """All connected fragment cardinalities of ``query``, via at most
        one batched seeded round trip (cached per model version)."""
        fragments = self.plan_fragments(query)
        name, version = self._target(query)
        plan_key = (name, fragment_signature(query))
        with self._lock:
            self._sync_locked(name, version)
            cached = self._prefetched.get(plan_key)
            if cached is not None:
                return cached.copy()
        values = np.asarray(self._estimate(fragments, self.seed_for(query)),
                            dtype=np.float64)
        self.batched_calls += 1
        self.fragments_estimated += len(fragments)
        with self._lock:
            self._sync_locked(name, version)
            if self._versions.get(name) == version:
                for fragment, value in zip(fragments, values):
                    key = (name, fragment_signature(fragment))
                    self._cache[key] = float(value)
                self._prefetched[plan_key] = values.copy()
        return values

    def lookup(self, query: JoinQuery, subset: frozenset) -> float:
        """The served cardinality of one fragment (raw, unfloored)."""
        fragment = extract_fragment(query, subset)
        name, version = self._target(query)
        key = (name, fragment_signature(fragment))
        with self._lock:
            self._sync_locked(name, version)
            value = self._cache.get(key)
        if value is None:
            # A hot-swap invalidated the plan's answers (or the subset
            # was never prefetched): re-batch the whole plan, then fall
            # back to a single-fragment seeded call only if the subset
            # is genuinely outside the plan's connected fragments.
            self.prefetch(query)
            with self._lock:
                value = self._cache.get(key)
            if value is None:
                self.fallback_calls += 1
                value = float(self._estimate([fragment],
                                             self.seed_for(query))[0])
        return value

    # ------------------------------------------------------------------
    # Adapter API
    # ------------------------------------------------------------------
    def card_fn(self, query: JoinQuery) -> CardFn:
        self.prefetch(query)

        def fn(subset: frozenset) -> float:
            return max(self.lookup(query, subset), 1.0)
        return fn


class UESPessimisticProvider:
    """UES-style pessimistic cardinality bounds for the planner.

    Upper-bound propagation (Hertzschuch et al., CIDR 2021): base-table
    cardinalities after filters, and per-edge *global* frequency bounds —
    ``MF(child)`` the maximum rows any key matches in a child, and
    ``U(child)`` the maximum multiplicity of its parent key (1 for a
    unique primary key).  The bound for a fragment is the minimum over
    anchor tables of ``filtered(anchor) * prod(edge bounds)``, which
    never falls below the true cardinality — the defining property the
    plan-quality bench verifies fragment by fragment.
    """

    name = "UES"

    def __init__(self, schema: Schema):
        self.schema = schema
        self.center = schema.center
        self.max_child_fanout: dict[str, float] = {}
        self.max_center_mult: dict[str, float] = {}
        for fk in schema.foreign_keys:
            child_keys = schema.tables[fk.child].raw_column(
                fk.child_col).astype(np.int64)
            self.max_child_fanout[fk.child] = \
                float(np.bincount(child_keys).max()) if child_keys.size \
                else 0.0
            parent_keys = schema.tables[fk.parent].raw_column(
                fk.parent_col).astype(np.int64)
            self.max_center_mult[fk.child] = \
                float(np.bincount(parent_keys).max()) if parent_keys.size \
                else 0.0
        self._filter_cache: dict[tuple, float] = {}

    def _filtered_count(self, query: JoinQuery, name: str) -> float:
        predicates = query.predicates_for(name)
        key = (name, tuple((p.column, p.op, repr(p.value))
                           for p in predicates))
        if key not in self._filter_cache:
            table = self.schema.tables[name]
            keep = np.ones(table.num_rows, dtype=bool)
            for pred in predicates:
                idx = table.column_index(pred.column)
                mask = table.columns[idx].valid_mask(pred.op, pred.value)
                keep &= mask[table.codes[:, idx]]
            self._filter_cache[key] = float(keep.sum())
        return self._filter_cache[key]

    def cardinality(self, query: JoinQuery, subset: frozenset) -> float:
        subset = frozenset(subset)
        counts = {name: self._filtered_count(query, name) for name in subset}
        if len(subset) == 1:
            return max(next(iter(counts.values())), 1e-6)
        bounds = []
        for anchor in sorted(subset):
            bound = counts[anchor]
            for other in sorted(subset):
                if other == anchor:
                    continue
                if other == self.center:
                    # Crossing from a child into the center: each row
                    # matches at most U(anchor) center rows.
                    bound *= self.max_center_mult[anchor]
                else:
                    bound *= self.max_child_fanout[other]
            bounds.append(bound)
        return max(min(bounds), 1e-6)

    def card_fn(self, query: JoinQuery) -> CardFn:
        cache: dict[frozenset, float] = {}

        def fn(subset: frozenset) -> float:
            subset = frozenset(subset)
            if subset not in cache:
                cache[subset] = max(self.cardinality(query, subset), 1.0)
            return cache[subset]
        return fn
