"""Postgres-style heuristic cardinality estimation for the planner.

Classic System-R machinery, reproducing what vanilla PostgreSQL would feed
the planner in the paper's Figure 6 comparison:

* base-table selectivities from per-column equi-depth histograms under
  attribute-value independence;
* equi-join selectivity ``1 / max(ndv(left key), ndv(right key))`` under
  the containment assumption, applied per join edge.
"""

from __future__ import annotations

import numpy as np

from ..data.schema import Schema
from ..estimators.histogram import Histogram1D
from ..joins.workload import JoinQuery
from ..workload.predicate import Predicate


class PostgresHeuristic:
    """Heuristic card function over a star schema."""

    name = "PostgreSQL"

    def __init__(self, schema: Schema, bins: int = 64):
        self.schema = schema
        self.center = schema.center
        self.histograms: dict[str, dict[str, Histogram1D]] = {}
        for tname, table in schema.tables.items():
            self.histograms[tname] = {
                col.name: Histogram1D(table.codes[:, j], col.size, bins)
                for j, col in enumerate(table.columns)}
        # Containment selectivity is per join edge: each edge divides by
        # max(ndv of *its own* parent column, ndv of its child column).
        # Multi-key stars (edges referencing different parent columns)
        # would otherwise all be scaled by foreign_keys[0]'s NDV.
        self.center_key_ndv: dict[str, int] = {}
        self.child_ndv: dict[str, int] = {}
        for fk in schema.foreign_keys:
            parent = schema.tables[fk.parent]
            self.center_key_ndv[fk.child] = parent.column(fk.parent_col).size
            child = schema.tables[fk.child]
            self.child_ndv[fk.child] = child.column(fk.child_col).size

    # ------------------------------------------------------------------
    def base_selectivity(self, tname: str,
                         predicates: list[Predicate]) -> float:
        table = self.schema.tables[tname]
        sel = 1.0
        for pred in predicates:
            col = table.column(pred.column)
            mask = col.valid_mask(pred.op, pred.value)
            sel *= self.histograms[tname][pred.column].selectivity_mask(mask)
        return sel

    def base_cardinality(self, tname: str,
                         predicates: list[Predicate]) -> float:
        return self.base_selectivity(tname, predicates) \
            * self.schema.tables[tname].num_rows

    # ------------------------------------------------------------------
    def cardinality(self, query: JoinQuery, subset: frozenset) -> float:
        """System-R estimate for the join of ``subset`` under the query."""
        card = 1.0
        for tname in subset:
            card *= max(self.base_cardinality(
                tname, query.predicates_for(tname)), 1e-6)
        if self.center in subset:
            for fk in self.schema.foreign_keys:
                if fk.child in subset:
                    card /= max(self.center_key_ndv[fk.child],
                                self.child_ndv[fk.child])
        return max(card, 1e-6)

    def card_fn(self, query: JoinQuery):
        def fn(subset: frozenset) -> float:
            return self.cardinality(query, subset)
        return fn

    def size_bytes(self) -> int:
        return sum(h.size_bytes()
                   for cols in self.histograms.values()
                   for h in cols.values())


class MagicConstantHeuristic:
    """System-R's textbook fallback: every predicate is worth a fixed
    selectivity (no statistics at all).  Included in the Figure 6 study as
    the lower-bound contrast — it demonstrates that the planner *is*
    sensitive to cardinality quality, which the near-Postgres results of
    the learned estimators would otherwise leave unshown."""

    name = "MagicConstants"

    def __init__(self, schema: Schema, per_predicate_selectivity: float = 0.1):
        self.schema = schema
        self.center = schema.center
        self.selectivity = per_predicate_selectivity
        key_col = schema.foreign_keys[0].parent_col
        self.center_ndv = schema.tables[self.center].column(key_col).size

    def cardinality(self, query: JoinQuery, subset: frozenset) -> float:
        card = 1.0
        for tname in subset:
            rows = self.schema.tables[tname].num_rows
            n_preds = len(query.predicates_for(tname))
            card *= max(rows * self.selectivity ** n_preds, 1e-6)
        if self.center in subset:
            joins = sum(1 for fk in self.schema.foreign_keys
                        if fk.child in subset)
            card /= max(self.center_ndv, 1) ** joins
        return max(card, 1e-6)

    def card_fn(self, query: JoinQuery):
        def fn(subset: frozenset) -> float:
            return self.cardinality(query, subset)
        return fn
