"""Scale profiles for the benchmark harness.

The paper ran on a Tesla V100 with 11.6M-row DMV and 20K training queries;
this reproduction runs on one CPU core, so every experiment is scaled down
while keeping the *relative* comparisons intact (DESIGN.md).  Four
profiles:

* ``ci``     — smallest; the CI smoke jobs (serving loop end to end).
* ``small``  — seconds; used by the test suite's integration checks.
* ``bench``  — default for ``pytest benchmarks/``; minutes.
* ``paper``  — closest to the paper's settings; hours on CPU.

Select via the ``REPRO_PROFILE`` environment variable or pass explicitly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Profile:
    name: str
    rows: dict = field(default_factory=dict)          # dataset -> row count
    train_queries: int = 400
    test_queries: int = 100
    epochs: int = 6
    query_epochs: int = 12          # UAE-Q / refinement epochs
    hidden: int = 64
    num_blocks: int = 2
    est_samples: int = 128          # progressive-sampling estimates
    dps_samples: int = 8            # S in Algorithm 2
    batch_size: int = 512
    query_batch_size: int = 16
    lam: float = 1e-4
    join_titles: int = 2500
    join_sample: int = 10_000
    join_train_queries: int = 200
    join_test_queries: int = 60
    join_epochs: int = 6
    optimizer_queries: int = 25
    incremental_parts: int = 5
    incremental_train: int = 80
    incremental_test: int = 30
    serve_stream_queries: int = 160  # steady-phase serving-bench stream
    scale_datasets: tuple = ("dmv", "census", "kddcup", "toy")
    scale_workers: tuple = (1, 2, 4)  # worker counts for the scale_out bench
    scale_stream_queries: int = 320   # per-worker-count mixed stream length
    mscn_epochs: int = 60
    kde_budget_divisor: int = 1     # sample budget = uae_size / divisor
    # Open-loop HTTP load bench (repro.bench.load_bench): offered rates
    # are fractions of the *calibrated* capacity so the sweep spans
    # comfortable to saturated on any host; the SLO is an absolute
    # floor relaxed against calibrated baseline latency on slow boxes.
    load_pool: int = 48             # distinct queries cycled round-robin
    load_rate_fractions: tuple = (0.25, 0.5, 0.75, 1.0, 1.5, 2.5)
    load_duration_s: float = 4.0    # per-rate open-loop window
    load_max_requests: int = 400    # per-rate arrival cap
    load_connections: int = 64      # client socket-pool cap
    load_slo_ms: float = 250.0      # p99 bound below the knee
    load_calib_requests: int = 96   # closed-loop capacity probe size
    load_calib_concurrency: int = 8
    load_max_inflight: int = 32     # front-door admission window

    def dataset_rows(self, name: str) -> int:
        return self.rows.get(name, 8000)

    def sampling_fraction(self, name: str) -> float:
        """The paper's budget-matched sample ratios (Section 5.1.4):
        0.2% DMV, 9% Census, 4.6% Kddcup98.  Matching the *fraction*
        keeps the comparison meaningful at scaled-down row counts, where
        matching bytes would hand samplers the whole table."""
        return {"dmv": 0.002, "census": 0.09, "kddcup": 0.046}.get(name, 0.05)


CI = Profile(
    name="ci",
    rows={"dmv": 1500, "census": 1200, "kddcup": 1000, "toy": 800},
    train_queries=40, test_queries=16, epochs=2, query_epochs=4,
    hidden=32, num_blocks=1, est_samples=32, dps_samples=4,
    batch_size=256, query_batch_size=8,
    join_titles=400, join_sample=1500, join_train_queries=20,
    join_test_queries=8, join_epochs=1, optimizer_queries=4,
    incremental_parts=2, incremental_train=24, incremental_test=12,
    serve_stream_queries=40,
    scale_datasets=("census", "toy"), scale_workers=(1, 2),
    scale_stream_queries=64,
    mscn_epochs=10,
    load_pool=16, load_rate_fractions=(0.25, 0.75, 2.5),
    load_duration_s=1.5, load_max_requests=60, load_connections=32,
    load_calib_requests=24, load_calib_concurrency=4,
    load_max_inflight=16,
)

SMALL = Profile(
    name="small",
    rows={"dmv": 3000, "census": 2500, "kddcup": 2000, "toy": 1500},
    train_queries=80, test_queries=30, epochs=2, query_epochs=4,
    hidden=32, num_blocks=1, est_samples=48, dps_samples=4,
    batch_size=256, query_batch_size=8,
    join_titles=800, join_sample=3000, join_train_queries=40,
    join_test_queries=15, join_epochs=2, optimizer_queries=8,
    incremental_parts=3, incremental_train=30, incremental_test=12,
    serve_stream_queries=64,
    scale_datasets=("census", "toy"), scale_workers=(1, 2),
    scale_stream_queries=96,
    mscn_epochs=20,
    load_pool=24, load_rate_fractions=(0.25, 0.75, 2.5),
    load_duration_s=2.0, load_max_requests=100, load_connections=32,
    load_calib_requests=32, load_calib_concurrency=4,
    load_max_inflight=16,
)

BENCH = Profile(
    name="bench",
    rows={"dmv": 12_000, "census": 8000, "kddcup": 6000, "toy": 4000},
    train_queries=500, test_queries=120, epochs=8, query_epochs=15,
    hidden=64, num_blocks=2, est_samples=128, dps_samples=8,
    join_titles=2500, join_sample=10_000, join_train_queries=200,
    join_test_queries=60, join_epochs=25, optimizer_queries=25,
    incremental_train=300, incremental_test=40,
    mscn_epochs=60,
)

PAPER = Profile(
    name="paper",
    rows={"dmv": 200_000, "census": 48_000, "kddcup": 95_000, "toy": 10_000},
    train_queries=20_000, test_queries=2000, epochs=20, query_epochs=20,
    hidden=128, num_blocks=2, est_samples=200, dps_samples=200,
    join_titles=20_000, join_sample=100_000, join_train_queries=10_000,
    join_test_queries=1000, join_epochs=20, optimizer_queries=50,
    incremental_train=4000, incremental_test=200,
    serve_stream_queries=512,
    mscn_epochs=100,
)

PROFILES = {"ci": CI, "small": SMALL, "bench": BENCH, "paper": PAPER}


def current_profile() -> Profile:
    """Profile selected by the REPRO_PROFILE env var (default bench)."""
    name = os.environ.get("REPRO_PROFILE", "bench").lower()
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown REPRO_PROFILE {name!r}; pick from {sorted(PROFILES)}"
        ) from None
