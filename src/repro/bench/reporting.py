"""Result formatting and persistence for the benchmark harness.

Every experiment returns plain dict/list structures; this module renders
them as the paper's tables (aligned ASCII) and saves JSON artifacts under
``results/`` so EXPERIMENTS.md can reference a concrete run.
"""

from __future__ import annotations

import json
import os
from datetime import datetime, timezone
from typing import Sequence

RESULTS_DIR = os.environ.get(
    "REPRO_RESULTS_DIR",
    os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))), "results"))


def format_table(rows: Sequence[dict], columns: Sequence[str],
                 title: str = "") -> str:
    """Aligned ASCII table; numbers rendered with 4 significant digits."""

    def render(value) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1e5 or abs(value) < 1e-3:
                return f"{value:.2e}"
            return f"{value:.4g}"
        return str(value)

    grid = [[render(row.get(c, "")) for c in columns] for row in rows]
    widths = [max(len(c), *(len(g[i]) for g in grid)) if grid else len(c)
              for i, c in enumerate(columns)]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(w) for c, w in zip(columns, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for g in grid:
        lines.append("  ".join(v.ljust(w) for v, w in zip(g, widths)))
    return "\n".join(lines)


def save_json(name: str, payload) -> str:
    """Persist an experiment result under results/<name>.json."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    record = {
        "generated_at": datetime.now(timezone.utc).isoformat(),
        "experiment": name,
        "data": payload,
    }
    with open(path, "w") as fh:
        json.dump(record, fh, indent=2, default=_jsonable)
    return path


def _jsonable(value):
    import numpy as np
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    raise TypeError(f"not JSON-serialisable: {type(value)}")
