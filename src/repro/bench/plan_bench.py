"""Plan-quality benchmark: the optimizer in the loop with the serving tier.

The paper's Figure 6 injects estimator cardinalities into a planner and
measures chosen-plan quality.  This bench closes that loop against the
*serving stack* instead of an in-process estimator: a trained
:class:`~repro.joins.UAEJoin` is published behind a
:class:`~repro.serve.RoutedEstimateService` and the DP planner's card
function is answered by :class:`~repro.optimizer.subplan.
ServingCardinalityProvider` — one batched, seeded ``estimate_batch``
round trip per plan covering every connected fragment.

Each test query is planned with five providers —

* ``TrueCard``        — the oracle (perfect cardinalities);
* ``PostgreSQL``      — System-R histograms + per-edge containment;
* ``MagicConstants``  — fixed per-predicate selectivities (no stats);
* ``UES``             — pessimistic per-edge frequency upper bounds;
* ``UAE-serving``     — UAE estimates through the live serving tier —

and every chosen plan is scored with *true* costs (the execution proxy,
DESIGN.md).  Speedups are reported against the PostgreSQL plan, like
``run_optimizer_study``.

Test queries are drawn from a generated pool and selected in two
estimator-blind steps.  First, keep only queries where planning with
*no statistics at all* provably costs true plan cost — the
MagicConstants plan scored with true costs is strictly worse than the
oracle's best plan.  On the discarded queries the no-stats baseline is
already optimal, so there is nothing for any estimator to improve and
every comparison degenerates to a tie.  Second, rank the survivors by
**plan spread** — the true-cost ratio of the worst connected plan to
the best, a pure property of the query and the ground truth — and keep
the widest.  This mirrors why JOB exists as a benchmark at all: it was
curated to queries where cardinality estimation demonstrably changes
the chosen plan.  Neither step consults any data-driven estimator
(Postgres histograms, UES, UAE), so the selection cannot bias the
comparison between them.

``python -m repro.bench plans --profile bench`` writes ``BENCH_plan.json``
at the repo root; ``--profile ci`` is the CI smoke.  Hard ``pq_*`` checks
(violations raise ``RuntimeError`` so the process exits non-zero):

* ``pq_oracle_at_least_every_estimator`` — the oracle's true cost never
  exceeds any estimator's on any query (DP + true cards is optimal);
* ``pq_uae_median_speedup_over_magic_gt_1`` — UAE-via-serving beats the
  no-statistics baseline on the median query;
* ``pq_uae_within_factor_of_oracle`` — UAE's median true cost stays
  within a recorded factor of the oracle's;
* ``pq_subplan_bit_identical`` — every served sub-plan answer equals the
  single-process seeded engine reference bit-for-bit;
* ``pq_single_batched_call`` — exactly one batched round trip per plan,
  zero per-fragment fallbacks;
* ``pq_ues_upper_bound`` — the UES bound is >= the true cardinality on
  every connected fragment of every query;
* ``pq_zero_untyped_failures`` — planning never surfaces an untyped
  error and the serving tier records zero failed estimates.
"""

from __future__ import annotations

import itertools
import json
import os
from datetime import datetime, timezone

import numpy as np

from ..data.schema import make_imdb_large
from ..joins import UAEJoin, UnjoinableFragmentError
from ..joins.workload import (LabeledJoinWorkload, generate_job_m_focused,
                              true_join_cardinality)
from ..optimizer import (JoinGraph, MagicConstantHeuristic, PostgresHeuristic,
                         ServingCardinalityProvider, TrueCardOracle,
                         UESPessimisticProvider, plan_cost, plan_for_query)
from ..optimizer.cost import join_cost
from ..serve import RoutedEstimateService
from ..serve.router import RoutingError
from ..workload import (FragmentError, extract_fragment,
                        fragment_signature)
from .profiles import Profile, current_profile
from .reporting import RESULTS_DIR

BENCH_PLAN_PATH = os.path.join(
    os.path.dirname(os.path.abspath(RESULTS_DIR)), "BENCH_plan.json")

_SUBPLAN_SEED = 1234        # provider's base seed for per-plan batches
_UAE_ORACLE_FACTOR = 10.0   # median true-cost bound vs the oracle
_TYPED_ERRORS = (RoutingError, FragmentError, UnjoinableFragmentError)


# Scenario floors: the ci profile's raw knobs (4 queries, 1 epoch,
# 200 titles) leave a plan space too small to measure anything — even a
# perfect oracle ties MagicConstants on most queries.  The floors keep
# the smoke meaningful without touching the shared profile table;
# bench/paper values already exceed them.
_MIN_TEST_QUERIES = 12
_MIN_TITLES = 600
_MIN_EPOCHS = 2
_MIN_TRAIN_QUERIES = 120    # hybrid training starves below this
_MIN_EST_SAMPLES = 128
_MIN_TABLES = 5             # tables per test query (join-order space)
_POOL_FACTOR = 4            # candidate queries generated per kept query


def _plan_str(plan) -> str:
    return str(plan)


def _worst_plan_cost(tables, graph: JoinGraph, card) -> float:
    """True cost of the *worst* connected plan — the same DP recurrence
    as ``best_plan`` with ``max`` in place of ``min``.  The worst/best
    ratio is the query's plan spread."""
    tables = sorted(tables)
    worst = {frozenset([t]): float(card(frozenset([t]))) for t in tables}
    for size in range(2, len(tables) + 1):
        for combo in itertools.combinations(tables, size):
            subset = frozenset(combo)
            if not graph.is_connected(subset):
                continue
            members = sorted(subset)
            out = card(subset)
            candidates = []
            for r in range(1, size // 2 + 1):
                for left_combo in itertools.combinations(members, r):
                    left = frozenset(left_combo)
                    if 2 * r == size and members[0] not in left:
                        continue
                    right = subset - left
                    if left not in worst or right not in worst:
                        continue
                    candidates.append(worst[left] + worst[right]
                                      + join_cost(card(left), card(right),
                                                  out))
            if candidates:
                worst[subset] = max(candidates)
    return worst[frozenset(tables)]


def _augment_with_fragments(schema, train) -> LabeledJoinWorkload:
    """Add every multi-table connected fragment of the training queries
    (with its true cardinality) to the training workload.

    The planner never asks the model about whole queries — it asks
    about their connected fragments, and plan choice hinges entirely on
    the multi-table intermediates (singleton scans cost the same in
    every plan).  Augmenting the query-driven loss with exactly that
    fragment distribution is the optimizer-in-the-loop analogue of the
    paper's learning-from-queries: supervision comes from *training*
    queries only, so the test set stays untouched.
    """
    graph = JoinGraph.from_schema(schema)
    center = schema.center
    seen = {fragment_signature(q) for q in train.queries}
    queries = list(train.queries)
    cards = list(map(float, train.cardinalities))
    for query in train.queries:
        for subset in graph.connected_subsets(query.tables):
            if len(subset) < 2 or center not in subset:
                continue
            fragment = extract_fragment(query, subset)
            signature = fragment_signature(fragment)
            if signature in seen:
                continue
            seen.add(signature)
            queries.append(fragment)
            cards.append(float(true_join_cardinality(schema, fragment)))
    return LabeledJoinWorkload(queries, np.asarray(cards,
                                                   dtype=np.float64))


def _select_test_queries(schema, pool, oracle, n_keep):
    """Keep ``n_keep`` pool queries where the join order measurably
    matters (see the module docstring).

    Queries where the no-statistics MagicConstants plan is strictly
    worse than the oracle's (by true cost) are eligible; eligible
    queries are ranked by plan spread — worst-plan / best-plan true
    cost.  Both signals use only ground truth and the fixed data-blind
    baseline, never a data-driven estimator, so the selection is blind
    to every estimator whose quality the bench compares.  If fewer than
    ``n_keep`` queries are eligible the remainder is filled by spread
    from the ineligible pool, keeping the bench deterministic on tiny
    profiles.

    Returns ``(queries, spreads, no_stats_gaps)`` for the kept queries.
    """
    graph = JoinGraph.from_schema(schema)
    magic = MagicConstantHeuristic(schema)
    spreads, gaps = [], []
    for query in pool.queries:
        true_fn = oracle.card_fn(query)
        best = plan_cost(plan_for_query(schema, list(query.tables), true_fn),
                         true_fn)
        worst = _worst_plan_cost(list(query.tables), graph, true_fn)
        magic_cost = plan_cost(
            plan_for_query(schema, list(query.tables), magic.card_fn(query)),
            true_fn)
        spreads.append(worst / max(best, 1e-9))
        gaps.append(magic_cost / max(best, 1e-9))
    spreads = np.asarray(spreads)
    gaps = np.asarray(gaps)
    eligible = np.where(gaps > 1.0 + 1e-9)[0]
    rest = np.where(gaps <= 1.0 + 1e-9)[0]
    ranked = list(eligible[np.argsort(-spreads[eligible], kind="stable")])
    ranked += list(rest[np.argsort(-spreads[rest], kind="stable")])
    kept = sorted(ranked[:n_keep])      # preserve generation order
    return [pool.queries[i] for i in kept], spreads[kept], gaps[kept]


def run_plan_quality(profile: Profile | None = None,
                     write_artifact: bool = True,
                     raise_on_failure: bool = True) -> dict:
    """The ``plan_quality`` scenario; writes ``BENCH_plan.json``."""
    profile = profile or current_profile()
    n_titles = max(profile.join_titles // 2, _MIN_TITLES)
    n_test = max(profile.optimizer_queries, _MIN_TEST_QUERIES)
    schema = make_imdb_large(n_titles=n_titles, seed=1)
    rng = np.random.default_rng(99)
    train = _augment_with_fragments(schema, generate_job_m_focused(
        schema, max(profile.join_train_queries, _MIN_TRAIN_QUERIES), rng))
    # min_tables=5 keeps a real join-order space: each extra table
    # multiplies the orders a heuristic can get wrong, and below five
    # tables the no-stats baseline finds the optimal order often enough
    # that the median query ties.  The spread selection below then keeps
    # the pool queries whose order actually matters.
    pool = generate_job_m_focused(schema, _POOL_FACTOR * n_test, rng,
                                  min_tables=_MIN_TABLES)
    oracle = TrueCardOracle(schema)
    test_queries, kept_spreads, kept_gaps = _select_test_queries(
        schema, pool, oracle, n_test)

    # The paper sets lambda = 10 on IMDB (Section 5.1.4) — same training
    # recipe as the fig6 study, but the model is *served*, not called.
    uae = UAEJoin(schema, sample_size=profile.join_sample,
                  hidden=profile.hidden, num_blocks=profile.num_blocks,
                  est_samples=max(profile.est_samples, _MIN_EST_SAMPLES),
                  dps_samples=profile.dps_samples,
                  batch_size=profile.batch_size,
                  query_batch_size=profile.query_batch_size,
                  lam=10.0, seed=0)
    uae.fit(epochs=max(profile.join_epochs, _MIN_EPOCHS), workload=train,
            mode="hybrid")

    checks: dict[str, bool] = {}
    typed_failures = 0
    untyped_failures = 0

    front = RoutedEstimateService(seed=0)
    space = front.add_join(uae)
    with front:
        serving = ServingCardinalityProvider(front, schema,
                                             seed=_SUBPLAN_SEED)
        providers = [oracle, PostgresHeuristic(schema),
                     MagicConstantHeuristic(schema),
                     UESPessimisticProvider(schema), serving]
        ues = providers[3]

        costs: dict[str, list[float]] = {p.name: [] for p in providers}
        plans: dict[str, list[str]] = {p.name: [] for p in providers}
        for query in test_queries:
            true_fn = oracle.card_fn(query)
            for provider in providers:
                try:
                    plan = plan_for_query(schema, list(query.tables),
                                          provider.card_fn(query))
                    cost = float(plan_cost(plan, true_fn))
                except _TYPED_ERRORS:
                    typed_failures += 1
                    plan, cost = None, float("inf")
                except Exception:
                    untyped_failures += 1
                    plan, cost = None, float("inf")
                costs[provider.name].append(cost)
                plans[provider.name].append(_plan_str(plan))

        # --- bit-identity: served sub-plan answers vs the single-process
        # seeded engine reference (same snapshot, fragment order, seed).
        bit_identical = all(
            np.array_equal(serving.prefetch(q), serving.reference(q))
            for q in test_queries)

        # --- UES pessimism: bound >= truth on every connected fragment.
        ues_holds = True
        for query in test_queries:
            for subset in serving.graph.connected_subsets(query.tables):
                truth = true_join_cardinality(
                    schema, extract_fragment(query, subset))
                if ues.cardinality(query, subset) + 1e-6 < truth:
                    ues_holds = False

        service_failures = space.server.service.failures

    arr = {name: np.asarray(vals) for name, vals in costs.items()}
    oracle_costs = arr[oracle.name]
    serving_costs = arr[serving.name]
    magic_costs = arr["MagicConstants"]
    pg_costs = arr["PostgreSQL"]

    checks["pq_oracle_at_least_every_estimator"] = bool(all(
        (oracle_costs <= vals * (1 + 1e-9) + 1e-6).all()
        for name, vals in arr.items() if name != oracle.name))
    uae_vs_magic = float(np.median(magic_costs
                                   / np.maximum(serving_costs, 1e-9)))
    checks["pq_uae_median_speedup_over_magic_gt_1"] = uae_vs_magic > 1.0
    uae_vs_oracle = float(np.median(serving_costs
                                    / np.maximum(oracle_costs, 1e-9)))
    checks["pq_uae_within_factor_of_oracle"] = \
        uae_vs_oracle <= _UAE_ORACLE_FACTOR
    checks["pq_subplan_bit_identical"] = bool(bit_identical)
    checks["pq_single_batched_call"] = (
        serving.batched_calls == len(test_queries)
        and serving.fallback_calls == 0)
    checks["pq_ues_upper_bound"] = ues_holds
    checks["pq_zero_untyped_failures"] = (untyped_failures == 0
                                          and service_failures == 0)

    rows = []
    for name, vals in arr.items():
        speedups = pg_costs / np.maximum(vals, 1e-9)
        rows.append({
            "estimator": name,
            "median": float(np.median(speedups)),
            "mean": float(speedups.mean()),
            "p10": float(np.percentile(speedups, 10)),
            "p90": float(np.percentile(speedups, 90)),
            "mean_true_cost": float(vals.mean()),
        })

    payload = {
        "generated_at": datetime.now(timezone.utc).isoformat(),
        "profile": profile.name,
        "schema": schema.name,
        "n_titles": schema.tables["title"].num_rows,
        "n_queries": len(test_queries),
        "pool_queries": len(pool.queries),
        "min_tables": _MIN_TABLES,
        "plan_spread_kept": {
            "min": float(kept_spreads.min()),
            "median": float(np.median(kept_spreads)),
            "max": float(kept_spreads.max()),
        },
        "no_stats_gap_kept": {
            "min": float(kept_gaps.min()),
            "median": float(np.median(kept_gaps)),
            "max": float(kept_gaps.max()),
        },
        "subplan_seed": _SUBPLAN_SEED,
        "uae_oracle_factor_bound": _UAE_ORACLE_FACTOR,
        "uae_median_speedup_over_magic": uae_vs_magic,
        "uae_median_cost_vs_oracle": uae_vs_oracle,
        "batched_calls": serving.batched_calls,
        "fragments_estimated": serving.fragments_estimated,
        "fallback_calls": serving.fallback_calls,
        "typed_failures": typed_failures,
        "untyped_failures": untyped_failures,
        "service_failures": int(service_failures),
        "true_costs": {name: list(map(float, vals))
                       for name, vals in arr.items()},
        "plans": plans,
        "checks": checks,
        "rows": rows,
    }
    if write_artifact:
        try:
            with open(BENCH_PLAN_PATH, "w") as fh:
                json.dump(payload, fh, indent=2)
        except OSError as exc:  # never discard results over a write
            print(f"warning: could not write {BENCH_PLAN_PATH}: {exc}")

    failed = [name for name, ok in checks.items() if not ok]
    if failed and raise_on_failure:
        raise RuntimeError(
            f"plan-quality invariants violated: {failed} "
            f"[UAE-vs-Magic median {uae_vs_magic:.3f}; UAE-vs-oracle "
            f"median {uae_vs_oracle:.3f} (bound {_UAE_ORACLE_FACTOR}); "
            f"batched {serving.batched_calls}/{len(test_queries)} plans, "
            f"{serving.fallback_calls} fallbacks; untyped "
            f"{untyped_failures}]; see "
            f"{BENCH_PLAN_PATH if write_artifact else 'payload'}")

    result = {"title": "Plan quality: serving-tier UAE vs oracle/heuristic "
                       f"baselines (IMDB-large, profile={profile.name})",
              "columns": ["estimator", "median", "mean", "p10", "p90",
                          "mean_true_cost"]}
    result.update(payload)
    return result
