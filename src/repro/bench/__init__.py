"""Benchmark harness regenerating every table and figure of the paper."""

from .experiments import (EXPERIMENTS, run_incremental, run_joins,
                          run_serving, run_single_table,
                          run_training_bench)
from .profiles import (BENCH, CI, PAPER, PROFILES, SMALL, Profile,
                       current_profile)
from .reporting import format_table, save_json

__all__ = [
    "EXPERIMENTS", "run_single_table", "run_joins", "run_incremental",
    "run_serving", "run_training_bench",
    "Profile", "PROFILES", "CI", "SMALL", "BENCH", "PAPER",
    "current_profile", "format_table", "save_json",
]
