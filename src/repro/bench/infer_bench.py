"""Inference-engine latency/throughput microbenchmark.

Measures ``ProgressiveSampler.estimate_batch`` on the legacy reference
loop and on the compiled engine *in the same run*, over the same DMV
workload and the same random seeds, then checks the two paths agree
within Monte-Carlo tolerance (same seed implies draw-for-draw parity, so
agreement is far tighter than the sampling error).  A third row measures
the scheduler-grouped ``estimate_many`` path.

Run ``python -m repro.bench latency --profile bench`` to regenerate the
``BENCH_infer.json`` artifact at the repo root (plus the usual
``results/latency.json``).
"""

from __future__ import annotations

import json
import os
import time
from datetime import datetime, timezone

import numpy as np

from ..core import UAE
from ..core.progressive import ProgressiveSampler
from ..data import load
from ..workload import generate_inworkload
from .profiles import Profile, current_profile
from .reporting import RESULTS_DIR

# Next to the results directory (which follows $REPRO_RESULTS_DIR), so the
# artifact lands in the repo for source checkouts and stays writable for
# installed packages pointed at a results location.
BENCH_PATH = os.path.join(os.path.dirname(os.path.abspath(RESULTS_DIR)),
                          "BENCH_infer.json")

_LATENCY_QUERIES = {"small": 16, "bench": 64, "paper": 256}

#: hard ceiling on metrics-instrumentation overhead for the engine path
#: (median over interleaved instrumented/uninstrumented reps)
OBS_OVERHEAD_PCT = 7.0


def _time_batches(sampler: ProgressiveSampler, constraints: list[list],
                  batch_queries: int) -> tuple[float, np.ndarray]:
    """Wall-clock seconds and estimates for chunked ``estimate_batch``."""
    estimates = np.empty(len(constraints), dtype=np.float64)
    start = time.perf_counter()
    for lo in range(0, len(constraints), batch_queries):
        chunk = constraints[lo:lo + batch_queries]
        estimates[lo:lo + len(chunk)] = sampler.estimate_batch(chunk)
    return time.perf_counter() - start, estimates


def _measure_obs_overhead(sampler: ProgressiveSampler,
                          constraints: list[list], batch_queries: int,
                          reps: int = 5) -> tuple[float, float]:
    """Median wall-clock for the engine path with metrics off vs on.

    Reps are interleaved (off, on, off, on, ...) so thermal drift and
    background load hit both arms equally; medians shrug off outliers.
    """
    from ..obs import MetricsRegistry

    engine = sampler.engine
    plain: list[float] = []
    instrumented: list[float] = []
    try:
        for _ in range(reps):
            engine.metrics = None
            t, _ = _time_batches(sampler, constraints, batch_queries)
            plain.append(t)
            engine.metrics = MetricsRegistry()
            t, _ = _time_batches(sampler, constraints, batch_queries)
            instrumented.append(t)
    finally:
        engine.metrics = None
    return float(np.median(plain)), float(np.median(instrumented))


def run_infer_latency(profile: Profile | None = None,
                      batch_queries: int = 8,
                      write_artifact: bool = True) -> dict:
    """Legacy vs compiled-engine throughput on the DMV workload."""
    profile = profile or current_profile()
    n_queries = _LATENCY_QUERIES.get(profile.name, 64)
    table = load("dmv", rows=profile.dataset_rows("dmv"), seed=0)
    uae = UAE(table, hidden=profile.hidden, num_blocks=profile.num_blocks,
              est_samples=profile.est_samples, seed=0)
    rng = np.random.default_rng(1234)
    workload = generate_inworkload(table, n_queries, rng)
    constraints = [uae.fact.expand_masks(q.masks(table))
                   for q in workload.queries]

    samplers = {
        "legacy": ProgressiveSampler(uae.model,
                                     num_samples=profile.est_samples,
                                     seed=5, backend="legacy"),
        "engine": ProgressiveSampler(uae.model,
                                     num_samples=profile.est_samples,
                                     seed=5, backend="engine"),
    }
    # Warm both paths (buffer pools, compiled caches, BLAS threads) on a
    # throwaway chunk so the measured loops are steady-state.
    for sampler in samplers.values():
        sampler.estimate_batch(constraints[:batch_queries])

    timings: dict[str, float] = {}
    estimates: dict[str, np.ndarray] = {}
    for name, sampler in samplers.items():
        sampler.rng = np.random.default_rng(99)  # identical draw streams
        timings[name], estimates[name] = _time_batches(
            sampler, constraints, batch_queries)

    scheduled = ProgressiveSampler(uae.model, num_samples=profile.est_samples,
                                   seed=5, backend="engine")
    scheduled.estimate_many(constraints[:batch_queries])
    scheduled.rng = np.random.default_rng(99)
    start = time.perf_counter()
    scheduled.estimate_many(constraints)
    timings["engine+scheduler"] = time.perf_counter() - start

    # Observability must stay effectively free on the hot path: A/B the
    # engine with its registry attached vs detached and gate the delta.
    plain_s, instr_s = _measure_obs_overhead(
        samplers["engine"], constraints, batch_queries)
    obs_overhead_pct = (instr_s / plain_s - 1.0) * 100.0
    checks = {"obs_overhead": obs_overhead_pct <= OBS_OVERHEAD_PCT}

    speedup = timings["legacy"] / timings["engine"]
    diff = np.abs(estimates["legacy"] - estimates["engine"])
    denom = np.maximum(np.maximum(estimates["legacy"],
                                  estimates["engine"]), 1e-12)
    rows = []
    for name in ("legacy", "engine", "engine+scheduler"):
        elapsed = timings[name]
        rows.append({
            "path": name,
            "queries_per_sec": n_queries / elapsed,
            "ms_per_query": elapsed * 1e3 / n_queries,
            "speedup_vs_legacy": timings["legacy"] / elapsed,
        })

    payload = {
        "generated_at": datetime.now(timezone.utc).isoformat(),
        "profile": profile.name,
        "dataset": "dmv",
        "num_rows": table.num_rows,
        "num_queries": n_queries,
        "num_samples": profile.est_samples,
        "batch_queries": batch_queries,
        "legacy_qps": n_queries / timings["legacy"],
        "engine_qps": n_queries / timings["engine"],
        "scheduler_qps": n_queries / timings["engine+scheduler"],
        "speedup_estimate_batch": speedup,
        "estimate_max_abs_diff": float(diff.max()),
        "estimate_max_rel_diff": float((diff / denom).max()),
        "obs_overhead_pct": obs_overhead_pct,
        "obs_overhead_threshold_pct": OBS_OVERHEAD_PCT,
        "obs_plain_qps": n_queries / plain_s,
        "obs_instrumented_qps": n_queries / instr_s,
        "checks": checks,
        "rows": rows,
    }
    if write_artifact:
        try:
            with open(BENCH_PATH, "w") as fh:
                json.dump(payload, fh, indent=2)
        except OSError as exc:  # never discard timed results over a write
            print(f"warning: could not write {BENCH_PATH}: {exc}")
    failed = [name for name, ok in checks.items() if not ok]
    if failed:
        raise RuntimeError(
            f"inference bench invariants violated: {failed} "
            f"(metrics overhead {obs_overhead_pct:.2f}% > "
            f"{OBS_OVERHEAD_PCT}% ceiling)")
    return {"title": "Inference engine throughput: legacy vs compiled "
                     f"(DMV, profile={profile.name})",
            "columns": ["path", "queries_per_sec", "ms_per_query",
                        "speedup_vs_legacy"],
            "rows": rows,
            **{k: v for k, v in payload.items() if k != "rows"}}
