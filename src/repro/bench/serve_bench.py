"""End-to-end serving benchmark: Section 4.5's incremental scenario live.

Drives the :mod:`repro.serve` subsystem through four phases:

1. **steady** — sustained in-distribution traffic (with realistic query
   repetition) through the micro-batching service; measures q/s and
   p50/p99 latency, and times the same stream through plain engine
   batching as the no-serving-layer baseline;
2. **shifted** — the table grows by 40% (new rows skewed to one region,
   the ``incremental_data`` setup) and the workload shifts onto the new
   region; the stale model's rolling q-error degrades past the drift
   threshold;
3. **hot-swap** — the drift-triggered refinement (staged data ingestion
   + query feedback, both halves of Section 4.5) runs in the background
   while the foreground keeps serving; the swap must lose zero estimates,
   and answers must stay bit-identical to their snapshot's reference
   before *and* after;
4. **post-swap** — the shifted traffic again, on the refined model: the
   rolling q-error must improve.

``python -m repro.bench serving --profile bench`` writes the
``BENCH_serve.json`` artifact; ``--profile ci`` is the tiny smoke profile
the CI workflow gates on.  Violated invariants raise ``RuntimeError`` so
the process exits non-zero.
"""

from __future__ import annotations

import json
import os
import time
from datetime import datetime, timezone

import numpy as np

from ..core import UAE
from ..data import Table, load
from ..data.schema import make_imdb
from ..serve import (HAVE_SHARED_MEMORY, ChaosPlan, ClusterEstimateService,
                     FeedbackCollector, LoadShedError, ModelOpsConfig,
                     RoutedEstimateService, UAEServer,
                     UnknownNamespaceError, WorkerUnavailableError)
from ..workload import (Predicate, Query, WorkloadConfig,
                        generate_inworkload, summarize)
from ..workload.metrics import qerrors
from .profiles import Profile, current_profile
from .reporting import RESULTS_DIR

BENCH_SERVE_PATH = os.path.join(
    os.path.dirname(os.path.abspath(RESULTS_DIR)), "BENCH_serve.json")
BENCH_INFER_PATH = os.path.join(
    os.path.dirname(os.path.abspath(RESULTS_DIR)), "BENCH_infer.json")

_REPEAT_FRACTION = 0.35     # fraction of the stream that re-asks hot queries
_WAVE = 64                  # closed-loop submission window
_PROBES = 12                # consistency probe set size
_SEED = 1234                # pinned sampling seed for bit-identity checks
_SPLIT = 0.6                # initial fraction of the table; rest arrives live


def _zipf_stream(queries: list, n_total: int,
                 rng: np.random.Generator) -> list:
    """A serving stream with skewed repetition over a base query set."""
    n_unique = max(1, int(round(n_total * (1.0 - _REPEAT_FRACTION))))
    base = list(queries[:n_unique])
    stream = list(base)
    weights = 1.0 / np.arange(1, len(base) + 1, dtype=np.float64)
    weights /= weights.sum()
    hot = rng.choice(len(base), size=n_total - len(base), p=weights)
    stream.extend(base[i] for i in hot)
    perm = rng.permutation(len(stream))
    return [stream[i] for i in perm]


def _serve_stream(server: UAEServer, stream: list) -> tuple[float, list]:
    """Closed-loop drive through the micro-batching worker; returns
    (elapsed_seconds, results in stream order)."""
    results = []
    start = time.perf_counter()
    for lo in range(0, len(stream), _WAVE):
        requests = [server.submit(q) for q in stream[lo:lo + _WAVE]]
        results.extend(r.result(timeout=120.0) for r in requests)
    return time.perf_counter() - start, results


def _phase_latency(server: UAEServer, n_requests: int) -> dict[str, float]:
    """Quantiles over the last ``n_requests`` served (the phase just run;
    robust to the bounded latency deque having rotated)."""
    arr = np.fromiter(server.service.latencies.copy(), dtype=np.float64)
    arr = arr[-min(len(arr), n_requests):]
    if arr.size == 0:
        return {"p50_ms": 0.0, "p99_ms": 0.0}
    return {"p50_ms": float(np.percentile(arr, 50) * 1e3),
            "p99_ms": float(np.percentile(arr, 99) * 1e3)}


def run_multi_table(profile: Profile | None = None,
                    datasets: tuple[str, ...] = ("dmv", "census"),
                    raise_on_failure: bool = True) -> dict:
    """The multi-table front-door scenario: several table namespaces plus
    one join-schema namespace behind a single
    :class:`~repro.serve.RoutedEstimateService`.

    Measures mixed-stream routing throughput and verifies, bit-exactly:

    * **routing parity** — a mixed seeded batch answers each query
      identically to its namespace's direct snapshot reference (queries
      land on the right model, and namespaces do not perturb each
      other's sampling streams);
    * **typed misses** — a query naming unknown columns raises
      :class:`~repro.serve.UnknownNamespaceError`;
    * **namespace isolation** — a drift-triggered hot-swap in the first
      table namespace (run on the shared refinement pool) changes *its*
      answers, while every other namespace's per-version seeded answers
      stay bit-identical and their versions stay put.

    Runs standalone as ``python -m repro.bench serving_multi`` (or via
    ``python -m repro.serve --datasets ...``); ``run_serving`` embeds the
    payload in ``BENCH_serve.json`` under ``"multi_table"``.
    """
    profile = profile or current_profile()
    rng = np.random.default_rng(4242)
    uae_kwargs = dict(hidden=profile.hidden, num_blocks=profile.num_blocks,
                      est_samples=profile.est_samples,
                      dps_samples=max(4, profile.dps_samples),
                      batch_size=profile.batch_size,
                      query_batch_size=profile.query_batch_size)

    front = RoutedEstimateService(
        pool_workers=1, max_batch=32, max_wait_ms=2.0, seed=7,
        refine_epochs=max(4, profile.query_epochs // 2))
    n_each = max(16, profile.serve_stream_queries // 2)
    workloads: dict[str, object] = {}
    for i, name in enumerate(datasets):
        table = load(name, rows=profile.dataset_rows(name))
        uae = UAE(table, seed=i, **uae_kwargs)
        uae.fit(epochs=max(1, profile.epochs // 3), mode="data")
        front.add_table(uae)
        workloads[name] = generate_inworkload(table, n_each, rng)

    schema = make_imdb(n_titles=profile.join_titles, seed=0)
    from ..joins import UAEJoin, generate_job_light_ranges_focused
    join = UAEJoin(schema, sample_size=profile.join_sample, seed=0,
                   **uae_kwargs)
    join.fit(epochs=max(1, profile.join_epochs // 3), mode="data")
    join_name = "imdb_star"
    front.add_join(join, namespace=join_name)
    workloads[join_name] = generate_job_light_ranges_focused(
        schema, max(8, profile.join_test_queries // 4), rng)

    names = front.registry.names()
    swap_ns = datasets[0]
    checks: dict[str, bool] = {}
    rows: list[dict] = []
    probes = {name: list(workloads[name].queries[:_PROBES])
              for name in names}

    # Interleaved mixed stream over every namespace.
    mixed: list = []
    pools = {name: list(workloads[name].queries) for name in names}
    k = 0
    while any(pools.values()):
        name = names[k % len(names)]
        if pools[name]:
            mixed.append(pools[name].pop(0))
        k += 1

    with front:
        # Routing parity: one mixed seeded batch vs per-namespace
        # snapshot references.
        mixed_est = front.estimate_batch(mixed, seed=_SEED, use_cache=False)
        parity = True
        for name in names:
            indices = [i for i, q in enumerate(mixed)
                       if front.resolve(q).name == name]
            ref = front.estimate_on(name, [mixed[i] for i in indices],
                                    seed=_SEED)
            parity = parity and bool(np.array_equal(mixed_est[indices], ref))
        checks["routing_bit_parity"] = parity
        try:
            front.estimate(Query((Predicate("__no_such_column__", "=", 0),)))
            checks["unknown_namespace_raises"] = False
        except UnknownNamespaceError:
            checks["unknown_namespace_raises"] = True

        # Mixed-stream throughput through the per-namespace micro-batchers.
        start = time.perf_counter()
        for lo in range(0, len(mixed), _WAVE):
            requests = [front.submit(q) for q in mixed[lo:lo + _WAVE]]
            for request in requests:
                request.result(timeout=120.0)
        front_qps = len(mixed) / (time.perf_counter() - start)

        # Per-namespace, per-version references before any swap.
        refs_pre = {name: front.estimate_on(name, probes[name], seed=_SEED)
                    for name in names}

        # Drift in the swap namespace only: bad estimates drive its
        # monitor over the threshold; maintain() queues the refinement
        # on the shared pool.
        swap_server = front.namespace(swap_ns).server
        swap_server.feedback.min_observations = min(
            16, len(workloads[swap_ns]))
        swap_server.feedback.threshold = 2.0
        for query, truth in zip(workloads[swap_ns].queries,
                                workloads[swap_ns].cardinalities):
            front.observe(query, truth, estimate=100.0 * max(truth, 1.0))
        jobs = front.maintain(background=True)
        checks["drift_refines_only_swap_namespace"] = \
            list(jobs) == [swap_ns]
        for job in jobs.values():
            job.join(timeout=600.0)

        # Isolation: the swap namespace moved to v2 and answers changed;
        # everyone else is bit-identical on the same seed and version.
        versions = {name: front.namespace(name).version for name in names}
        checks["swap_namespace_bumped"] = versions[swap_ns] == 2
        checks["other_namespaces_unbumped"] = all(
            versions[name] == 1 for name in names if name != swap_ns)
        isolated = True
        for name in names:
            if name == swap_ns:
                continue
            post = front.estimate_on(name, probes[name], seed=_SEED)
            isolated = isolated and bool(
                np.array_equal(post, refs_pre[name]))
        checks["namespace_isolation_bit_identical"] = isolated
        swapped = front.estimate_on(swap_ns, probes[swap_ns], seed=_SEED)
        checks["swap_changes_swapped_namespace"] = \
            not np.array_equal(swapped, refs_pre[swap_ns])
        old = front.estimate_on(swap_ns, probes[swap_ns], version=1,
                                seed=_SEED)
        checks["swapped_namespace_v1_reproducible"] = bool(
            np.array_equal(old, refs_pre[swap_ns]))
        checks["zero_failures"] = all(
            space.server.service.failures == 0 for space in front.registry)

        pool_stats = front.pool.stats()
        stats = front.stats()
        for name in names:
            space = front.namespace(name)
            rows.append({
                "namespace": name, "kind": space.kind,
                "queries": len(workloads[name]),
                "served": stats["namespaces"][name]["service"]["served"],
                "version": versions[name],
                "refined": pool_stats["per_namespace"].get(name, 0),
            })

    payload = {
        "generated_at": datetime.now(timezone.utc).isoformat(),
        "profile": profile.name,
        "datasets": list(datasets),
        "namespaces": names,
        "swap_namespace": swap_ns,
        "mixed_stream_queries": len(mixed),
        "front_door_qps": front_qps,
        "pool": pool_stats,
        "checks": checks,
        "rows": rows,
    }
    failed = [name for name, ok in checks.items() if not ok]
    if failed and raise_on_failure:
        raise RuntimeError(
            f"multi-table serving invariants violated: {failed}")
    return {"title": "Multi-table front door: "
                     f"{' + '.join(names)} behind one RoutedEstimateService "
                     f"(profile={profile.name})",
            "columns": ["namespace", "kind", "queries", "served", "version",
                        "refined"],
            **payload}


def run_scale_out(profile: Profile | None = None,
                  raise_on_failure: bool = True) -> dict:
    """The scale-out serving scenario: N shared-nothing worker processes
    behind a :class:`~repro.serve.ClusterEstimateService`.

    Measures aggregate throughput of the same seeded mixed stream at
    each worker count in ``profile.scale_workers`` and verifies:

    * **bit-parity** — the cluster's seeded mixed batch equals the
      single-process :class:`~repro.serve.RoutedEstimateService` on the
      parity slice, per query;
    * **swap propagation** — a zero-copy publish (one shared-memory
      serialization, per-worker rebuild) reaches the owning worker in
      under 250 ms, for every namespace;
    * **post-swap parity** — after the publish, the swapped namespace's
      seeded answers match a direct engine reference on the *new*
      weights (the version-counter contract crossed the process
      boundary);
    * **overload** — under a saturating deadline burst, rejected
      requests are typed ``LoadShedError`` sheds, never failures.

    The 4-vs-1-worker throughput check (>= 2.5x) is only enforced when
    the host actually has >= 4 cores; on smaller machines the run still
    executes every worker count but gates on a sanity floor instead and
    records ``cpu_limited: true`` in the artifact — a 1-core container
    cannot demonstrate parallel speedup honestly.
    """
    profile = profile or current_profile()
    if not HAVE_SHARED_MEMORY:      # pragma: no cover - platform gate
        return {"title": "Scale-out serving (skipped: no shared_memory)",
                "skipped": True, "checks": {}, "rows": [], "columns": []}
    rng = np.random.default_rng(777)
    datasets = tuple(profile.scale_datasets)
    workers = tuple(int(w) for w in profile.scale_workers)
    cores = os.cpu_count() or 1
    uae_kwargs = dict(hidden=profile.hidden, num_blocks=profile.num_blocks,
                      est_samples=profile.est_samples,
                      dps_samples=max(4, profile.dps_samples),
                      batch_size=profile.batch_size,
                      query_batch_size=profile.query_batch_size)

    estimators: dict[str, UAE] = {}
    pools: dict[str, list] = {}
    n_each = max(16, profile.scale_stream_queries // len(datasets))
    for i, name in enumerate(datasets):
        table = load(name, rows=profile.dataset_rows(name))
        uae = UAE(table, seed=i, **uae_kwargs)
        uae.fit(epochs=max(1, profile.epochs // 3), mode="data")
        estimators[name] = uae
        pools[name] = list(generate_inworkload(table, n_each, rng).queries)

    # Interleaved mixed stream: every wave touches every namespace, so
    # multi-worker runs get concurrent per-namespace groups to spread.
    mixed: list = []
    remaining = {name: list(queries) for name, queries in pools.items()}
    k = 0
    while any(remaining.values()):
        name = datasets[k % len(datasets)]
        if remaining[name]:
            mixed.append(remaining[name].pop(0))
        k += 1
    parity_slice = mixed[:min(len(mixed), _PROBES * len(datasets))]

    # Single-process reference for the parity slice.
    front = RoutedEstimateService(max_batch=32, max_wait_ms=2.0, seed=7)
    for name in datasets:
        front.add_table(estimators[name])
    with front:
        parity_ref = front.estimate_batch(parity_slice, seed=_SEED,
                                          use_cache=False)

    checks: dict[str, bool] = {}
    rows: list[dict] = []
    qps: dict[int, float] = {}
    parity_ok = True
    publishes: list[dict] = []
    post_swap_ok = True
    shed_stats: dict = {}

    for n in workers:
        cluster = ClusterEstimateService(workers=n, queue_depth=4, seed=7)
        for name in datasets:
            cluster.add_table(estimators[name])
        with cluster:
            placement = cluster.assignment()
            # Parity on the seeded slice (every worker count must agree
            # with the single-process reference bit-for-bit).
            got = cluster.estimate_batch(parity_slice, seed=_SEED)
            parity_ok = parity_ok and bool(np.array_equal(got, parity_ref))
            # Aggregate throughput: closed-loop waves of the full mixed
            # stream; each wave fans out per-namespace groups across the
            # workers.
            start = time.perf_counter()
            for lo in range(0, len(mixed), _WAVE):
                cluster.estimate_batch(mixed[lo:lo + _WAVE])
            elapsed = time.perf_counter() - start
            qps[n] = len(mixed) / elapsed
            stats = cluster.stats()

            if n == workers[-1]:
                # Zero-copy swap propagation: republish every namespace
                # (weights changed by one refinement epoch) and verify
                # the rebuilt workers answer from the new weights.
                for name in datasets:
                    refined = estimators[name]
                    refined.fit(epochs=1, mode="data")
                    publishes.append(cluster.publish(name, refined))
                for name in datasets:
                    sub = [q for q in parity_slice
                           if cluster.resolve(q) == name]
                    if not sub:
                        continue
                    got_post = cluster.estimate_batch(sub, seed=_SEED)
                    refined = estimators[name]
                    constraints = [
                        refined.fact.expand_masks(q.masks(refined.table))
                        for q in sub]
                    sels = refined.sampler.scheduler.estimate_many(
                        constraints, refined.sampler.num_samples,
                        np.random.default_rng(_SEED))
                    ref_post = np.clip(sels, 0.0, 1.0) \
                        * refined.table.num_rows
                    post_swap_ok = post_swap_ok and bool(
                        np.array_equal(got_post, ref_post))
            zero_failed = stats["failures"] == 0 \
                and stats["unavailable"] == 0
            rows.append({"workers": n, "queries": len(mixed),
                         "qps": qps[n],
                         "namespaces": len(datasets),
                         "distinct_owners": len(set(placement.values())),
                         "failures": stats["failures"],
                         "sheds": stats["sheds"]})
            checks[f"zero_failed_{n}w"] = zero_failed

    # Overload segment: a saturating deadline burst against a
    # queue_depth-1 cluster.  Every rejected request must be a typed
    # shed; none may surface as a failure.
    overload = ClusterEstimateService(workers=min(2, max(workers)),
                                      queue_depth=1, seed=7)
    for name in datasets:
        overload.add_table(estimators[name])
    with overload:
        burst_ns = datasets[0]
        burst = (pools[burst_ns] * 3)[:max(48, _WAVE)]
        overload.estimate_batch(burst[:8])     # warm the latency EWMA
        requests = [overload.submit(q, deadline_ms=1.0) for q in burst]
        shed, ok, other = 0, 0, 0
        for request in requests:
            try:
                request.result(timeout=60.0)
                ok += 1
            except LoadShedError:
                shed += 1
            except Exception:               # noqa: BLE001 - counted below
                other += 1
        over_stats = overload.stats()
        shed_stats = {"burst": len(burst), "answered": ok, "shed": shed,
                      "untyped_errors": other,
                      "failures": over_stats["failures"],
                      "saturations": over_stats["saturations"]}
    checks["parity_vs_single_process"] = parity_ok
    checks["post_swap_parity"] = post_swap_ok
    max_prop = max((p["propagation_ms"] for p in publishes), default=0.0)
    checks["swap_propagation_under_250ms"] = max_prop < 250.0
    checks["overload_sheds_typed"] = shed > 0 and other == 0 \
        and shed_stats["failures"] == 0
    cpu_limited = cores < max(workers)
    if not cpu_limited and max(workers) >= 4:
        checks["scale_throughput"] = \
            qps[max(workers)] >= 2.5 * qps[min(workers)]
    else:
        # A host with fewer cores than workers cannot show parallel
        # speedup; gate on a sanity floor (multi-process dispatch must
        # not collapse throughput) and record the limitation.
        checks["scale_throughput"] = \
            qps[max(workers)] >= 0.5 * qps[min(workers)]

    payload = {
        "generated_at": datetime.now(timezone.utc).isoformat(),
        "profile": profile.name,
        "datasets": list(datasets),
        "worker_counts": list(workers),
        "cpu_count": cores,
        "cpu_limited": cpu_limited,
        "stream_queries": len(mixed),
        "parity_queries": len(parity_slice),
        "qps_by_workers": {str(n): qps[n] for n in workers},
        "speedup_max_vs_1": qps[max(workers)] / qps[min(workers)],
        "publishes": publishes,
        "max_propagation_ms": max_prop,
        "overload": shed_stats,
        "checks": checks,
        "rows": rows,
    }
    failed = [name for name, ok_ in checks.items() if not ok_]
    if failed and raise_on_failure:
        raise RuntimeError(
            f"scale-out serving invariants violated: {failed} "
            f"[qps {payload['qps_by_workers']}; max propagation "
            f"{max_prop:.1f} ms; overload {shed_stats}]")
    return {"title": "Scale-out serving: shared-nothing workers, "
                     "zero-copy hot-swap, load-shedding balancer "
                     f"(profile={profile.name})",
            "columns": ["workers", "queries", "qps", "namespaces",
                        "distinct_owners", "failures", "sheds"],
            **payload}


def run_chaos(profile: Profile | None = None,
              raise_on_failure: bool = True,
              include_single: bool = True,
              include_cluster: bool = True,
              workers: int = 2) -> dict:
    """The self-healing chaos scenario: seeded faults injected into the
    serving stack must be *healed*, not merely survived.

    Single-process part (model-ops, :mod:`repro.serve.modelops`):

    * **shadow reject** — a ``refine.weights`` poison fault corrupts a
      refinement candidate; shadow validation must reject it, publish
      nothing, and restore the trainer bit-identically;
    * **tripwire rollback** — the same poison published past a disabled
      gate must trip the post-swap q-error tripwire within a bounded
      observation window and auto-roll-back; post-heal seeded answers
      must be bit-identical to pre-fault and post-heal accuracy no worse
      than the pre-fault ceiling;
    * **publish drop + cache warm** — a dropped publish attempt must be
      retried transparently, and the post-swap warmer must prime the
      result cache with the hottest signatures;
    * **feedback corruption** — a corrupted truth label must flow
      through as a (bad) typed observation, never a crash.

    Cluster part (supervision, :mod:`repro.serve.supervisor`): a
    ``worker.batch`` kill fault SIGKILLs a worker mid-stream; the
    supervisor must restart it within a bounded window, the restarted
    worker must serve bit-identical seeded answers from the retained
    snapshot segments, and every surfaced error must be typed.
    """
    profile = profile or current_profile()
    rng = np.random.default_rng(97)
    uae_kwargs = dict(hidden=profile.hidden, num_blocks=profile.num_blocks,
                      est_samples=profile.est_samples,
                      dps_samples=max(4, profile.dps_samples),
                      batch_size=profile.batch_size,
                      query_batch_size=profile.query_batch_size)
    checks: dict[str, bool] = {}
    rows: list[dict] = []
    detail: dict = {}

    if include_single:
        name = profile.scale_datasets[0]
        table = load(name, rows=profile.dataset_rows(name))
        uae = UAE(table, seed=0, **uae_kwargs)
        uae.fit(epochs=max(1, profile.epochs // 3), mode="data")
        n_queries = max(24, profile.scale_stream_queries // 2)
        # Wide queries (few filters, generous bounds): truths well above
        # 1, so a poisoned model's collapsed estimates (floored at 1 by
        # the q-error metric) are *distinguishable* from healthy ones —
        # hyper-selective probes would make every model look fine.
        wl = generate_inworkload(
            table, n_queries, rng,
            cfg=WorkloadConfig(num_filters_min=1, num_filters_max=2,
                               bounded_volume=0.3))
        probes = list(wl.queries[:_PROBES])

        # ------------------------------------------------------------
        # 1. Shadow reject: poisoned candidate never publishes.
        plan_a = ChaosPlan(seed=11)
        plan_a.inject("refine.weights", "poison", at=1,
                      params={"magnitude": 25.0})
        cfg_a = ModelOpsConfig(reject_ratio=1.5, min_probes=4,
                               cooldown_s=0.0, warm_top_n=0)
        server_a = UAEServer(uae, refine_epochs=2, max_batch=32,
                             max_wait_ms=2.0, seed=7, chaos=plan_a,
                             modelops=cfg_a)
        with server_a:
            ests = server_a.estimate_batch(wl.queries)
            for q, est, tru in zip(wl.queries, ests, wl.cardinalities):
                server_a.observe(q, tru, estimate=float(est))
            ref_pre = server_a.estimate_batch(probes, seed=_SEED,
                                              use_cache=False)
            record = server_a.refine()
            ref_post = server_a.estimate_batch(probes, seed=_SEED,
                                               use_cache=False)
            checks["shadow_reject_fired"] = bool(
                server_a.modelops.rejects) and bool(
                record and record.get("rejected"))
            checks["reject_no_publish"] = server_a.registry.version == 1
            checks["reject_restores_weights"] = bool(
                np.array_equal(ref_pre, ref_post))

            # Feedback-stream corruption: contained, typed, observable.
            plan_a.inject("feedback.record", "corrupt", at=1,
                          params={"factor": 500.0})
            q0 = wl.queries[0]
            err = server_a.observe(q0, float(wl.cardinalities[0]),
                                   estimate=float(ests[0]))
            checks["feedback_corruption_contained"] = \
                err >= 10.0 and server_a.service.failures == 0
            stats_a = server_a.modelops.stats()
        rows.append({"fault": "poison-refinement", "action": "reject",
                     "observations": len(wl), "version": 1})
        detail["shadow"] = {"verdict": stats_a["last_verdict"],
                            "rejects": stats_a["rejects"]}

        # ------------------------------------------------------------
        # 2. Tripwire rollback: the same poison published past a
        #    disabled gate must be rolled back from live traffic.
        plan_b = ChaosPlan(seed=13)
        plan_b.inject("refine.weights", "poison", at=1,
                      params={"magnitude": 25.0})
        plan_b.inject("publish.snapshot", "drop", at=2)
        cfg_b = ModelOpsConfig(reject_ratio=float("inf"),
                               tripwire_ratio=2.0, tripwire_window=16,
                               tripwire_min_obs=6, cooldown_s=0.0,
                               warm_top_n=16)
        server_b = UAEServer(uae.clone(), refine_epochs=2, max_batch=32,
                             max_wait_ms=2.0, seed=7, chaos=plan_b,
                             modelops=cfg_b)
        with server_b:
            ests = server_b.estimate_batch(wl.queries)
            for q, est, tru in zip(wl.queries, ests, wl.cardinalities):
                server_b.observe(q, tru, estimate=float(est))
            pre_seeded = server_b.estimate_batch(wl.queries, seed=_SEED,
                                                 use_cache=False)
            pre_q = float(qerrors(pre_seeded, wl.cardinalities).mean())
            refs_pre = server_b.estimate_batch(probes, seed=_SEED,
                                               use_cache=False)
            server_b.refine()                  # publishes poisoned v2
            checks["poison_published"] = server_b.registry.version == 2
            budget = 3 * (cfg_b.tripwire_min_obs + cfg_b.tripwire_window)
            obs_to_rollback = 0
            for i in range(budget):
                q = wl.queries[i % len(wl.queries)]
                tru = float(wl.cardinalities[i % len(wl.queries)])
                server_b.observe(q, tru, estimate=server_b.estimate(q))
                obs_to_rollback += 1
                if server_b.registry.version >= 3:
                    break
            checks["tripwire_rollback_fired"] = bool(
                server_b.modelops.rollbacks) \
                and server_b.registry.version == 3
            checks["rollback_within_window"] = obs_to_rollback <= \
                cfg_b.tripwire_min_obs + cfg_b.tripwire_window
            post_heal = server_b.estimate_batch(probes, seed=_SEED,
                                                use_cache=False)
            checks["postheal_bit_identical"] = bool(
                np.array_equal(post_heal, refs_pre))
            post_seeded = server_b.estimate_batch(wl.queries, seed=_SEED,
                                                  use_cache=False)
            post_q = float(qerrors(post_seeded, wl.cardinalities).mean())
            checks["postheal_qerr_under_ceiling"] = \
                post_q <= max(pre_q, 1.0) * 1.05
            rows.append({"fault": "poison-refinement+tripwire",
                         "action": "rollback",
                         "observations": obs_to_rollback,
                         "version": server_b.registry.version})

            # --------------------------------------------------------
            # 3. Dropped publish heals by retry; the validated publish
            #    warms the cache with the hottest signatures.
            for q, est, tru in zip(wl.queries, ests, wl.cardinalities):
                server_b.observe(q, tru, estimate=float(est))
            server_b.refine()                  # drop fault -> retry -> v4
            fired = [f["hook"] for f in plan_b.fired_log]
            checks["publish_drop_healed"] = \
                fired.count("publish.snapshot") == 1 \
                and server_b.registry.version == 4
            server_b.modelops.join_warm(timeout=30.0)
            hot = server_b.service.hot_queries(1)
            req = server_b.submit(hot[0]) if hot else None
            if req is not None:
                req.result(timeout=60.0)
            checks["warm_primes_cache"] = \
                server_b.modelops.warmed > 0 and req is not None \
                and req.from_cache \
                and req.version == server_b.registry.version
            checks["zero_untyped_singleproc"] = \
                server_a.service.failures == 0 \
                and server_b.service.failures == 0
            detail["tripwire"] = server_b.modelops.stats()
        rows.append({"fault": "drop-publish", "action": "retry+warm",
                     "observations": server_b.modelops.warmed,
                     "version": server_b.registry.version})

    if include_cluster:
        if not HAVE_SHARED_MEMORY:  # pragma: no cover - platform gate
            checks["cluster_skipped_no_shared_memory"] = True
        else:
            datasets = tuple(profile.scale_datasets)
            estimators: dict[str, UAE] = {}
            pools: dict[str, list] = {}
            n_each = max(16, profile.scale_stream_queries // len(datasets))
            for i, name in enumerate(datasets):
                table = load(name, rows=profile.dataset_rows(name))
                est = UAE(table, seed=i, **uae_kwargs)
                est.fit(epochs=max(1, profile.epochs // 3), mode="data")
                estimators[name] = est
                pools[name] = list(
                    generate_inworkload(table, n_each, rng).queries)

            plan_c = ChaosPlan(seed=29)
            # 2nd batch of worker w0's first incarnation dies; the
            # restarted incarnation runs healthy.  w1's first batch is
            # merely slow (latency fault): it must answer, not crash.
            plan_c.inject("worker.batch", "kill", at=2,
                          where={"worker": "w0", "incarnation": 0})
            plan_c.inject("worker.batch", "sleep", at=1,
                          where={"worker": "w1"},
                          params={"seconds": 0.05})
            cluster = ClusterEstimateService(workers=max(2, workers),
                                             queue_depth=4, seed=7,
                                             chaos=plan_c)
            for name in datasets:
                cluster.add_table(estimators[name])
            untyped = 0
            with cluster:
                supervisor = cluster.supervise(
                    poll_interval=0.02, backoff_base_s=0.02,
                    backoff_max_s=0.5, max_restarts=3, seed=7)
                slices = {name: [q for q in pools[name][:_PROBES]]
                          for name in datasets}
                # On profiles with more namespaces than workers w0 owns
                # several, so the kill can fire while these references
                # are computed; retry through the healing window (the
                # restarted worker answers bit-identically, so the
                # reference stays valid either way).
                refs = {}
                ref_deadline = time.perf_counter() + 60.0
                for name in datasets:
                    while True:
                        try:
                            refs[name] = cluster.estimate_batch(
                                slices[name], seed=_SEED)
                            break
                        except (WorkerUnavailableError, LoadShedError):
                            if time.perf_counter() > ref_deadline:
                                raise
                            time.sleep(0.05)
                # Drive mixed waves; the kill fires on w0's 2nd batch.
                # Typed unavailability is retried (that is the healing
                # window); anything untyped is a hard failure.
                mixed = [q for pair in zip(*pools.values()) for q in pair]
                deadline = time.perf_counter() + 60.0
                lo, waves = 0, 0
                while lo < len(mixed) and time.perf_counter() < deadline:
                    try:
                        cluster.estimate_batch(mixed[lo:lo + 8])
                        lo += 8
                        waves += 1
                    except (WorkerUnavailableError, LoadShedError):
                        time.sleep(0.05)
                    except Exception:   # noqa: BLE001 - counted + gated
                        untyped += 1
                        lo += 8
                t_restart = time.perf_counter()
                while time.perf_counter() < deadline \
                        and not supervisor.restarts:
                    time.sleep(0.02)
                restart_s = time.perf_counter() - t_restart
                checks["kill_fired"] = any(
                    f["hook"] == "worker.batch" and f["action"] == "kill"
                    for f in plan_c.fired_log) \
                    or cluster.stats()["workers"].get("w0", {}) \
                        .get("incarnation", 0) >= 1
                checks["worker_restarted"] = len(supervisor.restarts) >= 1
                checks["restart_within_window"] = \
                    bool(supervisor.restarts) and restart_s < 30.0
                post = {}
                for name in datasets:
                    for _ in range(40):     # restarted worker settles
                        try:
                            post[name] = cluster.estimate_batch(
                                slices[name], seed=_SEED)
                            break
                        except (WorkerUnavailableError, LoadShedError):
                            time.sleep(0.05)
                checks["restart_bit_identical"] = all(
                    name in post and bool(
                        np.array_equal(post[name], refs[name]))
                    for name in datasets)
                stats = cluster.stats()
                checks["cluster_zero_untyped"] = untyped == 0 \
                    and stats["failures"] == 0
                detail["cluster"] = {
                    "restarts": supervisor.stats()["restarts"],
                    "restart_wait_s": restart_s,
                    "waves": waves,
                    "incarnations": {
                        wid: w["incarnation"]
                        for wid, w in stats["workers"].items()},
                    "fired": plan_c.summary()["fired"],
                }
            rows.append({"fault": "kill-worker+slow-worker",
                         "action": "restart",
                         "observations": len(mixed),
                         "version": len(supervisor.restarts)})

    payload = {
        "generated_at": datetime.now(timezone.utc).isoformat(),
        "profile": profile.name,
        "checks": checks,
        "detail": detail,
        "rows": rows,
    }
    failed = [name for name, ok in checks.items() if not ok]
    if failed and raise_on_failure:
        raise RuntimeError(
            f"chaos healing invariants violated: {failed} "
            f"[detail {detail}]")
    return {"title": "Self-healing under deterministic chaos: shadow "
                     "rejects, tripwire rollback, worker supervision "
                     f"(profile={profile.name})",
            "columns": ["fault", "action", "observations", "version"],
            **payload}


def run_serving(profile: Profile | None = None,
                write_artifact: bool = True,
                include_multi_table: bool = True,
                include_scale_out: bool = True,
                include_open_loop: bool = True,
                include_chaos: bool = True) -> dict:
    """The serving scenario; returns the usual experiment dict.

    After the single-table loop, the multi-table front-door scenario
    (:func:`run_multi_table`) runs too; its payload lands in the
    artifact under ``"multi_table"`` and its checks join the gate with
    an ``mt_`` prefix.  The scale-out cluster scenario
    (:func:`run_scale_out`) follows under ``"scale_out"`` with an
    ``so_`` prefix (skipped automatically where
    ``multiprocessing.shared_memory`` is unavailable), the
    open-loop HTTP load scenario
    (:func:`~repro.bench.load_bench.run_open_loop`) under
    ``"open_loop"`` with its own ``ol_``-prefixed checks, and the
    self-healing chaos scenario (:func:`run_chaos`) under ``"chaos"``
    with a ``ch_`` prefix.
    """
    profile = profile or current_profile()
    rng = np.random.default_rng(2024)

    # The table starts at 60% of its rows (sorted by the first column, as
    # in the ``incremental_data`` experiment); the rest arrives mid-run.
    full = load("dmv", rows=profile.dataset_rows("dmv"), seed=0)
    order = np.argsort(full.codes[:, 0], kind="stable")
    split = int(_SPLIT * full.num_rows)
    base = Table(full.name, full.columns, full.codes[order[:split]])
    new_rows = full.codes[order[split:]]
    col0 = full.columns[0]
    c_star = int(full.codes[order[split], 0])

    # Data-only pretraining on the initial table: the model has never
    # seen query feedback, so the shifted phase exercises exactly the
    # paper's Section 4.5 loop.
    uae = UAE(base, hidden=profile.hidden, num_blocks=profile.num_blocks,
              est_samples=profile.est_samples,
              dps_samples=max(16, profile.dps_samples),
              batch_size=profile.batch_size,
              query_batch_size=profile.query_batch_size, seed=0)
    uae.fit(epochs=max(2, profile.epochs // 3), mode="data")

    n_stream = profile.serve_stream_queries
    steady = generate_inworkload(base, n_stream, rng)
    truth_of = dict(zip(steady.queries, steady.cardinalities))
    stream = _zipf_stream(steady.queries, n_stream, rng)

    # Shifted workload: bounded on the insert region of the sort column,
    # truths against the *grown* table — the stale model is systematically
    # wrong there.
    lo_rel = min(0.95, c_star / max(col0.size - 1, 1) + 0.02)
    shift_cfg = WorkloadConfig(center_range=(lo_rel, 1.0),
                               bounded_volume=0.08,
                               num_filters_min=2, num_filters_max=5)
    # Floor of 64: the drift decision quantiles a rolling window of this
    # stream, and fewer observations make the p90 too noisy to gate on.
    n_shift = max(64, profile.incremental_train)
    shift_fb = generate_inworkload(full, n_shift, rng,
                                   bounded_column=col0.name, cfg=shift_cfg)
    shift_test = generate_inworkload(full, profile.incremental_test, rng,
                                     bounded_column=col0.name, cfg=shift_cfg)

    feedback = FeedbackCollector(
        window=max(64, n_shift), capacity=2 * n_shift,
        min_observations=min(32, n_shift), quantile=0.9, threshold=3.0)
    server = UAEServer(uae, feedback=feedback, refine_epochs=12,
                       data_epochs=3, max_batch=32, max_wait_ms=2.0, seed=7)
    rows: list[dict] = []
    checks: dict[str, bool] = {}

    probes = steady.queries[:_PROBES]
    with server:
        # ----------------------------------------------------------
        # Pre-swap consistency: service answers == snapshot reference.
        v1 = server.registry.active()
        svc_pre = server.estimate_batch(probes, seed=_SEED, use_cache=False)
        svc_pre_again = server.estimate_batch(probes, seed=_SEED,
                                              use_cache=False)
        ref_pre = server.service.estimate_on(v1, probes, seed=_SEED)
        checks["pre_swap_bit_identical"] = bool(
            np.array_equal(svc_pre, ref_pre)
            and np.array_equal(svc_pre, svc_pre_again))

        # ----------------------------------------------------------
        # Phase 1: steady traffic through the micro-batching worker.
        server.estimate_batch(steady.queries[:8])  # warm engine + caches
        elapsed, results = _serve_stream(server, stream)
        serving_qps = len(stream) / elapsed
        steady_truths = np.array([truth_of[q] for q in stream])
        steady_err = summarize(np.array(results), steady_truths)
        for q, est, tru in zip(stream, results, steady_truths):
            server.feedback.record(q, est, tru)
        rows.append({"phase": "steady", "queries": len(stream),
                     "qps": serving_qps,
                     **_phase_latency(server, len(stream)),
                     "qerr_mean": steady_err.mean,
                     "qerr_p95": steady_err.p95,
                     "version": server.registry.version})

        # Plain engine batching over the identical stream: the
        # no-serving-subsystem baseline (chunked estimate_batch, as in
        # the BENCH_infer latency bench).
        sampler = v1.model.sampler
        constraints = [v1.model.fact.expand_masks(q.masks(base))
                       for q in stream]
        start = time.perf_counter()
        for lo in range(0, len(constraints), 8):
            sampler.estimate_batch(constraints[lo:lo + 8])
        engine_qps = len(stream) / (time.perf_counter() - start)

        # Drift threshold: degradation relative to the steady state
        # (1.25x the steady p90, floored — the shifted phase degrades the
        # tail well past this; steady traffic stays under it).
        steady_p90 = server.feedback.monitor.quantile(0.9)
        server.feedback.threshold = max(2.5, 1.25 * steady_p90)
        checks["steady_no_refine"] = not server.feedback.should_refine()

        # ----------------------------------------------------------
        # Phase 2: 40% of the table arrives (staged for the next
        # refinement; stale feedback labels are dropped), and the
        # workload shifts onto the new region.
        server.stage_data(new_rows)
        shifted_elapsed, shift_est = _serve_stream(server, shift_fb.queries)
        for q, est, tru in zip(shift_fb.queries, shift_est,
                               shift_fb.cardinalities):
            server.feedback.record(q, est, tru)
        before = summarize(np.array(shift_est), shift_fb.cardinalities)
        heldout_before = summarize(
            server.estimate_batch(shift_test.queries, seed=_SEED + 1),
            shift_test.cardinalities)
        drift = server.feedback.drift()
        checks["drift_triggered"] = server.feedback.should_refine()
        rows.append({"phase": "shifted", "queries": len(shift_fb),
                     "qps": len(shift_fb) / shifted_elapsed,
                     **_phase_latency(server, len(shift_fb)),
                     "qerr_mean": before.mean, "qerr_p95": before.p95,
                     "version": server.registry.version})

        # ----------------------------------------------------------
        # Phase 3: background refinement + hot-swap under live traffic.
        # The swap stream uses *fresh* queries (nothing cached), so both
        # the outgoing and the incoming snapshot serve real engine work.
        swap_wl = generate_inworkload(full, min(64, n_stream), rng)
        failures_before = server.service.failures
        refine_thread = server.refine(background=True)
        swap_served = 0
        swap_versions: set[int] = set()
        while refine_thread is not None and refine_thread.is_alive():
            request = server.submit(
                swap_wl.queries[swap_served % len(swap_wl.queries)])
            request.result(timeout=120.0)
            swap_versions.add(request.version)
            swap_served += 1
            if request.from_cache:
                # Once the rotation is fully cached the loop would spin
                # at memory speed, starving the refinement thread it is
                # waiting on; pace like a real client instead.
                time.sleep(0.001)
        server.join_refinement()
        # One more wave after the swap so the new version shows up even
        # when refinement finishes between foreground requests.
        for q in probes:
            req = server.submit(q)
            req.result(timeout=120.0)
            swap_versions.add(req.version)
            swap_served += 1
        checks["swap_zero_failed"] = \
            server.service.failures == failures_before
        checks["swap_spans_versions"] = len(swap_versions) >= 2 \
            and server.registry.version in swap_versions
        # No qps/latency/q-error cells: the swap stream is paced load,
        # not a measurement (and NaN would corrupt the JSON artifact).
        rows.append({"phase": "hot-swap", "queries": swap_served,
                     "version": server.registry.version})

        # ----------------------------------------------------------
        # Post-swap consistency + accuracy on the shifted traffic.
        v2 = server.registry.active()
        svc_post = server.estimate_batch(probes, seed=_SEED, use_cache=False)
        ref_post = server.service.estimate_on(v2, probes, seed=_SEED)
        checks["post_swap_bit_identical"] = bool(
            np.array_equal(svc_post, ref_post))
        old = server.registry.get(v1.version)
        checks["old_version_reproducible"] = old is not None and bool(
            np.array_equal(server.service.estimate_on(old, probes,
                                                      seed=_SEED), svc_pre))
        checks["weights_actually_swapped"] = not np.array_equal(svc_pre,
                                                                svc_post)

        post_elapsed, after_est = _serve_stream(server, shift_fb.queries)
        after = summarize(np.array(after_est), shift_fb.cardinalities)
        heldout_after = summarize(
            server.estimate_batch(shift_test.queries, seed=_SEED + 1),
            shift_test.cardinalities)
        rows.append({"phase": "post-swap shifted",
                     "queries": len(shift_fb),
                     "qps": len(shift_fb) / post_elapsed,
                     **_phase_latency(server, len(shift_fb)),
                     "qerr_mean": after.mean, "qerr_p95": after.p95,
                     "version": server.registry.version})

        improvement = before.mean / max(after.mean, 1e-9)
        checks["qerror_improves"] = after.mean <= before.mean
        checks["zero_failures"] = server.service.failures == 0
        p99 = rows[0]["p99_ms"]
        checks["latency_sane"] = p99 < 2000.0
        qps_floor = 0.9 if profile.name == "ci" else 1.0
        checks["throughput_beats_engine"] = \
            serving_qps >= qps_floor * engine_qps
        stats = server.stats()

    multi = None
    if include_multi_table:
        multi = run_multi_table(profile, raise_on_failure=False)
        checks.update({f"mt_{name}": ok
                       for name, ok in multi["checks"].items()})
        rows.extend({"phase": f"mt:{row['namespace']}",
                     "queries": row["queries"],
                     "version": row["version"]}
                    for row in multi["rows"])

    scale = None
    if include_scale_out:
        scale = run_scale_out(profile, raise_on_failure=False)
        checks.update({f"so_{name}": ok
                       for name, ok in scale["checks"].items()})
        rows.extend({"phase": f"so:{row['workers']}w",
                     "queries": row["queries"], "qps": row["qps"]}
                    for row in scale.get("rows", []))

    open_loop = None
    if include_open_loop:
        from .load_bench import run_open_loop
        open_loop = run_open_loop(profile, raise_on_failure=False)
        checks.update(open_loop["checks"])      # already ol_-prefixed
        rows.extend({"phase": f"ol:{row['fraction_of_capacity']}x",
                     "queries": row["sent"],
                     "qps": row["achieved_qps"],
                     "p50_ms": row["p50_ms"], "p99_ms": row["p99_ms"]}
                    for row in open_loop.get("rows", []))

    chaos = None
    if include_chaos:
        chaos = run_chaos(profile, raise_on_failure=False)
        checks.update({f"ch_{name}": ok
                       for name, ok in chaos["checks"].items()})
        rows.extend({"phase": f"ch:{row['fault']}",
                     "queries": row["observations"]}
                    for row in chaos.get("rows", []))

    infer_reference = None
    if os.path.exists(BENCH_INFER_PATH):
        try:
            with open(BENCH_INFER_PATH) as fh:
                infer_reference = json.load(fh).get("engine_qps")
        except (OSError, ValueError):
            pass

    payload = {
        "generated_at": datetime.now(timezone.utc).isoformat(),
        "profile": profile.name,
        "dataset": "dmv",
        "num_rows": full.num_rows,
        "initial_rows": base.num_rows,
        "num_samples": profile.est_samples,
        "stream_queries": len(stream),
        "repeat_fraction": _REPEAT_FRACTION,
        "serving_qps": serving_qps,
        "engine_qps_baseline": engine_qps,
        "infer_bench_engine_qps": infer_reference,
        "p50_ms": rows[0]["p50_ms"],
        "p99_ms": rows[0]["p99_ms"],
        "drift_at_trigger": drift,
        "drift_threshold": server.feedback.threshold,
        "qerr_shifted_before": before.row(),
        "qerr_shifted_after": after.row(),
        "qerr_heldout_before": heldout_before.row(),
        "qerr_heldout_after": heldout_after.row(),
        "qerr_improvement": improvement,
        "swap_served": swap_served,
        "swap_versions": sorted(swap_versions),
        "refinements": server.refinements,
        "service": stats["service"],
        "checks": checks,
        "rows": rows,
    }
    if multi is not None:
        payload["multi_table"] = {k: v for k, v in multi.items()
                                  if k not in ("title", "columns")}
    if scale is not None:
        payload["scale_out"] = {k: v for k, v in scale.items()
                                if k not in ("title", "columns")}
    if open_loop is not None:
        payload["open_loop"] = {k: v for k, v in open_loop.items()
                                if k not in ("title", "columns")}
    if chaos is not None:
        payload["chaos"] = {k: v for k, v in chaos.items()
                            if k not in ("title", "columns")}
    if write_artifact:
        try:
            with open(BENCH_SERVE_PATH, "w") as fh:
                json.dump(payload, fh, indent=2)
        except OSError as exc:  # never discard timed results over a write
            print(f"warning: could not write {BENCH_SERVE_PATH}: {exc}")

    failed = [name for name, ok in checks.items() if not ok]
    if failed:
        raise RuntimeError(
            f"serving bench invariants violated: {failed} "
            f"[drift {drift:.2f} vs threshold "
            f"{server.feedback.threshold:.2f}; shifted q-error mean "
            f"{before.mean:.2f} -> {after.mean:.2f}; serving "
            f"{serving_qps:.0f} q/s vs engine {engine_qps:.0f} q/s; "
            f"p99 {p99:.1f} ms; failures {server.service.failures}]; see "
            f"{BENCH_SERVE_PATH if write_artifact else 'payload'}")

    return {"title": "Online serving: micro-batched estimates, hot-swap, "
                     f"feedback refinement (DMV, profile={profile.name})",
            "columns": ["phase", "queries", "qps", "p50_ms", "p99_ms",
                        "qerr_mean", "qerr_p95", "version"],
            "rows": rows,
            **{k: v for k, v in payload.items() if k != "rows"}}
