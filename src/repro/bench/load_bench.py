"""Open-loop load benchmark over the asyncio HTTP front door.

Closed-loop drivers (every other serving bench here) hide saturation:
when the server slows down, the driver slows down with it and the
measured latency stays flat.  Production load is **open-loop** — users
arrive when they arrive — so this bench measures the system the way an
SLO would:

1. **calibrate** — a short concurrent closed-loop burst over the wire
   measures the door's actual capacity ``C`` (q/s) and baseline
   latency on *this* host (the repo routinely runs on one core, so
   absolute rates are meaningless; fractions of measured capacity are
   not);
2. **sweep** — for each offered rate in ``fraction * C`` (the profile's
   ``load_rate_fractions`` span comfortable to ~3x saturated), generate
   Poisson arrivals (seeded exponential inter-arrival gaps) and fire
   each request at its scheduled instant regardless of how the previous
   ones are doing.  Latency is measured **from the scheduled arrival**,
   so queueing delay from falling behind is charged to the server, not
   silently absorbed (no coordinated omission);
3. **account** — per rate: achieved throughput, p50/p95/p99 latency of
   successes, typed rejections (503 shed / 504 deadline) and untyped
   failures, and the **saturation knee** — the first offered rate whose
   loss fraction (sheds + deadline misses + errors) exceeds 5%.

Hard checks (``ol_`` prefix in ``BENCH_serve.json``): the knee exists
and is not the lowest rate (the door survives comfortable load and
breaks typed under overload), p99 below the knee stays within the SLO
(adapted to calibrated baseline latency on slow hosts), every rejection
above the knee is typed, and **zero** untyped failures anywhere.

One more (``metrics_internal``): the internal
``repro_http_request_seconds`` histogram delta taken around the lowest
offered rate must agree with the harness's *externally* measured
latency — internal p99 within 1.5x external p99 (+5 ms bucket slack)
and at least as many observations as successes.  This pins the
observability plane to ground truth: a registry that under-counts or
mis-buckets fails the bench, not just a unit test.

``python -m repro.bench serving_load`` runs it standalone;
``run_serving`` embeds the payload under ``"open_loop"``.
"""

from __future__ import annotations

import asyncio
import time
from datetime import datetime, timezone

import numpy as np

from ..core import UAE
from ..data import load
from ..obs import percentile_from_counts
from ..serve import (AsyncEstimateService, AsyncHTTPClient, HTTPFrontDoor,
                     UAEServer)
from ..workload import generate_inworkload
from .profiles import Profile, current_profile

_SEED = 20210621        # arrival-process seed (paper's SIGMOD year+date)


def _percentiles(latencies: list[float]) -> dict[str, float]:
    if not latencies:
        return {"p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0,
                "mean_ms": 0.0}
    arr = np.asarray(latencies, dtype=np.float64) * 1e3
    return {"p50_ms": float(np.percentile(arr, 50)),
            "p95_ms": float(np.percentile(arr, 95)),
            "p99_ms": float(np.percentile(arr, 99)),
            "mean_ms": float(arr.mean())}


class _ClientPool:
    """Grab-an-idle-or-dial connection pool: open-loop arrivals must
    never queue behind a busy keep-alive socket (that would re-introduce
    the coordinated omission the bench exists to avoid), but unbounded
    dialing would measure the kernel, so the pool caps total sockets and
    sheds client-side past the cap (counted, never silent)."""

    def __init__(self, host: str, port: int, cap: int):
        self.host = host
        self.port = port
        self.cap = cap
        self.idle: list[AsyncHTTPClient] = []
        self.total = 0
        self.client_sheds = 0

    def acquire(self) -> AsyncHTTPClient | None:
        if self.idle:
            return self.idle.pop()
        if self.total >= self.cap:
            self.client_sheds += 1
            return None
        self.total += 1
        return AsyncHTTPClient(self.host, self.port)

    def release(self, client: AsyncHTTPClient) -> None:
        self.idle.append(client)

    async def close(self) -> None:
        for client in self.idle:
            await client.close()
        self.idle.clear()


async def _fire(pool: _ClientPool, payload: dict, scheduled: float,
                results: list) -> None:
    """One open-loop request: latency from the *scheduled* arrival."""
    client = pool.acquire()
    if client is None:
        results.append(("client_shed", 0.0))
        return
    try:
        status, _body, _hdr = await client.post("/estimate", payload)
        latency = time.perf_counter() - scheduled
        if status == 200:
            results.append(("ok", latency))
        elif status == 503:
            results.append(("shed", latency))
        elif status == 504:
            results.append(("deadline", latency))
        else:
            results.append((f"http_{status}", latency))
        pool.release(client)
    except (ConnectionError, OSError, asyncio.IncompleteReadError):
        results.append(("conn_error", time.perf_counter() - scheduled))
        await client.close()
        pool.total -= 1


async def _calibrate(host: str, port: int, payloads: list[dict],
                     n_requests: int, concurrency: int) -> dict:
    """Concurrent closed-loop capacity probe over the wire."""
    latencies: list[float] = []
    counter = {"next": 0}

    async def worker():
        client = AsyncHTTPClient(host, port)
        try:
            while counter["next"] < n_requests:
                i = counter["next"]
                counter["next"] += 1
                t0 = time.perf_counter()
                status, _b, _h = await client.post(
                    "/estimate", payloads[i % len(payloads)])
                if status == 200:
                    latencies.append(time.perf_counter() - t0)
        finally:
            await client.close()

    start = time.perf_counter()
    await asyncio.gather(*(worker() for _ in range(concurrency)))
    elapsed = time.perf_counter() - start
    return {"requests": n_requests, "concurrency": concurrency,
            "elapsed_s": elapsed,
            "capacity_qps": len(latencies) / max(elapsed, 1e-9),
            **_percentiles(latencies)}


async def _sweep_rate(host: str, port: int, payloads: list[dict],
                      rate_qps: float, duration_s: float,
                      max_requests: int, connections: int,
                      rng: np.random.Generator) -> dict:
    """One offered rate: Poisson arrivals, every request fired on
    schedule whatever the earlier ones are doing."""
    n = int(min(max_requests, max(8, round(rate_qps * duration_s))))
    gaps = rng.exponential(1.0 / rate_qps, size=n)
    pool = _ClientPool(host, port, cap=connections)
    results: list[tuple[str, float]] = []
    tasks: list[asyncio.Task] = []
    start = time.perf_counter()
    arrival = start
    for i in range(n):
        arrival += gaps[i]
        delay = arrival - time.perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(asyncio.ensure_future(_fire(
            pool, payloads[i % len(payloads)], arrival, results)))
    await asyncio.gather(*tasks)
    elapsed = time.perf_counter() - start
    await pool.close()

    ok = [lat for kind, lat in results if kind == "ok"]
    sheds = sum(1 for kind, _ in results
                if kind in ("shed", "client_shed"))
    deadline = sum(1 for kind, _ in results if kind == "deadline")
    untyped = sum(1 for kind, _ in results
                  if kind not in ("ok", "shed", "client_shed", "deadline"))
    loss = (sheds + deadline + untyped) / max(len(results), 1)
    return {"offered_qps": rate_qps, "sent": n,
            "achieved_qps": len(ok) / max(elapsed, 1e-9),
            "ok": len(ok), "shed_503": sheds, "deadline_504": deadline,
            "untyped": untyped, "loss": loss,
            "client_sheds": pool.client_sheds,
            "connections": pool.total,
            **_percentiles(ok)}


def run_open_loop(profile: Profile | None = None,
                  raise_on_failure: bool = True) -> dict:
    """The open-loop scenario; returns the usual experiment dict (and
    the payload ``run_serving`` embeds under ``"open_loop"``)."""
    profile = profile or current_profile()
    rng = np.random.default_rng(_SEED)

    table = load("dmv", rows=profile.dataset_rows("dmv"), seed=0)
    uae = UAE(table, hidden=profile.hidden, num_blocks=profile.num_blocks,
              est_samples=profile.est_samples,
              dps_samples=max(4, profile.dps_samples),
              batch_size=profile.batch_size,
              query_batch_size=profile.query_batch_size, seed=0)
    uae.fit(epochs=max(1, profile.epochs // 3), mode="data")
    queries = list(generate_inworkload(
        table, profile.load_pool, rng).queries)

    # cache_capacity=1 + a round-robin pool of distinct queries: every
    # request pays real engine compute, so the knee reflects the
    # estimator, not the result cache.
    server = UAEServer(uae, cache_capacity=1, max_batch=32,
                       max_wait_ms=2.0, seed=7)
    rows: list[dict] = []
    checks: dict[str, bool] = {}

    async def _main() -> dict:
        door = HTTPFrontDoor(AsyncEstimateService(server),
                             port=0, max_inflight=profile.load_max_inflight)
        await door.start()
        try:
            # The pool ships as indices resolved by a pluggable parser:
            # the bench measures the serving path, not SQL parsing
            # (which has its own fuzz suite), and index payloads keep
            # every request byte-for-byte comparable across rates.
            door.parser = lambda ref: queries[int(ref)]
            payloads = [{"sql": str(i)} for i in range(len(queries))]

            calib = await _calibrate(
                door.host, door.port, payloads,
                profile.load_calib_requests,
                profile.load_calib_concurrency)
            capacity = calib["capacity_qps"]
            # SLO: the profile's absolute bound, relaxed on hosts whose
            # calibrated baseline latency is already near it (a 1-core
            # container cannot honestly meet a wall-clock SLO tuned for
            # real hardware).
            slo_ms = max(profile.load_slo_ms, 8.0 * calib["mean_ms"])
            deadline_ms = 4.0 * slo_ms
            for payload in payloads:
                payload["deadline_ms"] = deadline_ms

            # The door's own /estimate latency histogram: delta its
            # bucket counts around the lowest (least queue-distorted)
            # offered rate and cross-check against the external view.
            h_route = door.metrics.get_family(
                "repro_http_request_seconds").labels(route="/estimate")
            internal = None
            for i, fraction in enumerate(profile.load_rate_fractions):
                before = list(h_route.counts)
                row = await _sweep_rate(
                    door.host, door.port, payloads,
                    rate_qps=max(1.0, fraction * capacity),
                    duration_s=profile.load_duration_s,
                    max_requests=profile.load_max_requests,
                    connections=profile.load_connections,
                    rng=rng)
                row["fraction_of_capacity"] = fraction
                rows.append(row)
                if i == 0:
                    delta = [a - b for a, b in
                             zip(h_route.counts, before)]
                    internal = {
                        "observations": int(sum(delta)),
                        "p50_ms": percentile_from_counts(
                            h_route.bounds, delta, 0.50) * 1e3,
                        "p99_ms": percentile_from_counts(
                            h_route.bounds, delta, 0.99) * 1e3,
                    }
            return {"calibration": calib, "slo_ms": slo_ms,
                    "deadline_ms": deadline_ms,
                    "metrics_internal": internal,
                    "door": {"requests": door.requests,
                             "served": door.served,
                             "sheds": door.sheds,
                             "status_counts": {str(k): v for k, v in
                                               door.status_counts.items()}}}
        finally:
            await door.stop()

    with server:
        meta = asyncio.run(_main())

    calib = meta["calibration"]
    slo_ms = meta["slo_ms"]
    knee = next((row for row in rows if row["loss"] > 0.05), None)
    below_knee = rows if knee is None else \
        rows[:rows.index(knee)]
    checks["ol_knee_exists"] = knee is not None
    checks["ol_knee_not_first_rate"] = bool(below_knee) \
        and rows[0]["loss"] <= 0.05
    checks["ol_p99_bounded_below_knee"] = all(
        row["p99_ms"] <= slo_ms for row in below_knee) \
        and bool(below_knee)
    checks["ol_overload_rejections_typed"] = \
        knee is None or (knee["shed_503"] + knee["deadline_504"] > 0)
    checks["ol_zero_untyped_failures"] = all(
        row["untyped"] == 0 for row in rows)
    checks["ol_throughput_tracks_offer_below_knee"] = all(
        row["achieved_qps"] >= 0.7 * row["offered_qps"]
        for row in below_knee) and bool(below_knee)
    # Internal histogram vs external harness at the lowest rate: the
    # external clock starts at the *scheduled* arrival (upstream of the
    # internal one), so internal <= external up to bucket quantization.
    internal = meta["metrics_internal"]
    first = rows[0]
    checks["metrics_internal"] = (
        internal is not None
        and internal["observations"] >= first["ok"] > 0
        and internal["p99_ms"] == internal["p99_ms"]  # not NaN
        and internal["p99_ms"] <= 1.5 * first["p99_ms"] + 5.0)

    payload = {
        "generated_at": datetime.now(timezone.utc).isoformat(),
        "profile": profile.name,
        "dataset": "dmv",
        "query_pool": len(queries),
        "calibration": calib,
        "capacity_qps": calib["capacity_qps"],
        "slo_ms": slo_ms,
        "deadline_ms": meta["deadline_ms"],
        "knee_offered_qps": None if knee is None else knee["offered_qps"],
        "knee_fraction": None if knee is None
        else knee["fraction_of_capacity"],
        "metrics_internal": internal,
        "door": meta["door"],
        "service": server.stats()["service"],
        "checks": checks,
        "rows": rows,
    }
    failed = [name for name, ok in checks.items() if not ok]
    if failed and raise_on_failure:
        summary = [(round(row["offered_qps"]), round(row["loss"], 3))
                   for row in rows]
        raise RuntimeError(
            f"open-loop load invariants violated: {failed} "
            f"[capacity {calib['capacity_qps']:.0f} q/s; slo "
            f"{slo_ms:.0f} ms; (offered, loss) per rate: {summary}]")
    return {"title": "Open-loop HTTP load: Poisson arrivals over the "
                     f"asyncio front door (DMV, profile={profile.name})",
            "columns": ["offered_qps", "achieved_qps", "sent", "ok",
                        "shed_503", "deadline_504", "untyped", "p50_ms",
                        "p95_ms", "p99_ms", "loss"],
            **payload}
