"""CLI: ``python -m repro.bench <experiment> [--profile small|bench|paper]``.

``python -m repro.bench list`` shows every experiment id;
``python -m repro.bench all`` runs the full sweep and saves JSON artifacts
under ``results/``.
"""

from __future__ import annotations

import argparse
import sys
import time

from .experiments import EXPERIMENTS
from .profiles import PROFILES
from .reporting import format_table, save_json


def main(argv: list[str] | None = None) -> int:
    """Entry point: run one experiment (or `all`/`list`) and report."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiment",
                        help="experiment id, 'list', or 'all'")
    parser.add_argument("--profile", default=None,
                        choices=sorted(PROFILES),
                        help="scale profile (default: $REPRO_PROFILE or "
                             "'bench')")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name in EXPERIMENTS:
            print(name)
        return 0

    profile = PROFILES[args.profile] if args.profile else None
    names = list(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}; "
              f"try 'list'", file=sys.stderr)
        return 2

    failed: list[str] = []
    for name in names:
        start = time.perf_counter()
        try:
            result = EXPERIMENTS[name](profile)
        except Exception as exc:
            # A single experiment run is a gate (CI smoke) — propagate.
            # In an `all` sweep, report and keep going so one timing
            # blip doesn't discard every experiment after it.
            if len(names) == 1:
                raise
            print(f"[{name} FAILED after "
                  f"{time.perf_counter() - start:.1f}s: {exc}]\n",
                  file=sys.stderr)
            failed.append(name)
            continue
        elapsed = time.perf_counter() - start
        print(format_table(result["rows"], result["columns"],
                           title=result["title"]))
        print(f"[{name} took {elapsed:.1f}s]")
        path = save_json(name, {k: v for k, v in result.items()
                                if k not in ("speedups",)})
        print(f"saved {path}\n")
    if failed:
        print(f"failed experiments: {failed}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
