"""Training-engine throughput microbenchmark.

Measures optimizer steps per second for the three training modes of
Algorithm 3 — data-only (Eq. 2), query-only (Eq. 5/6 via DPS), and
hybrid — on the legacy autograd backend and the fused training engine
*in the same run*, over the same DMV table and identically-seeded
models.  Two additional sections:

* **gradient parity** — same weights, same batch, same random draws:
  the fused backward must reproduce the legacy gradients to float32
  rounding (max abs diff < 1e-4).  A violation raises, which is the
  contract the CI training smoke job gates on.
* **refinement wall-clock** — the serving loop's Section 4.5 refinement
  (staged-insert ``ingest_data`` + feedback ``ingest_queries``, the same
  epoch counts ``UAEServer`` uses) timed end to end per backend: the
  number that bounds hot-swap freshness under drift.

Run ``python -m repro.bench training --profile bench`` to regenerate the
``BENCH_train.json`` artifact at the repo root (plus the usual
``results/training.json``).
"""

from __future__ import annotations

import json
import os
import time
from datetime import datetime, timezone

import numpy as np

from ..core import UAE
from ..data import load
from ..workload import generate_inworkload
from .profiles import Profile, current_profile
from .reporting import RESULTS_DIR

BENCH_TRAIN_PATH = os.path.join(
    os.path.dirname(os.path.abspath(RESULTS_DIR)), "BENCH_train.json")

# Measured optimizer steps per mode (after warmup); refinement uses the
# serving loop's epoch counts and scales with the profile's row/query
# budget on its own.
_TRAIN_STEPS = {"ci": 4, "small": 6, "bench": 12, "paper": 24}
_WARMUP = 3
_PARITY_TOLERANCE = 1e-4
# The serving defaults (UAEServer refine_epochs/data_epochs in the
# serving bench scenario).
_REFINE_EPOCHS = 12
_DATA_EPOCHS = 3


def _make_uae(table, profile: Profile, backend: str) -> UAE:
    return UAE(table, hidden=profile.hidden, num_blocks=profile.num_blocks,
               est_samples=profile.est_samples,
               dps_samples=profile.dps_samples,
               batch_size=profile.batch_size,
               query_batch_size=profile.query_batch_size,
               lam=profile.lam, seed=0, train_backend=backend)


def _time_steps(uae: UAE, prepared: dict, mode: str, reps: int) -> float:
    """Mean seconds per optimizer step for one training mode."""
    rows = uae.model_codes
    batch = min(uae.config.batch_size, len(rows))

    def one_step():
        loss = None
        if mode in ("data", "hybrid"):
            idx = uae.rng.integers(0, len(rows), batch)
            loss = uae.data_loss(rows[idx])
        if mode in ("query", "hybrid"):
            q_loss = uae._query_step_loss(prepared)
            scale = uae.config.lam if mode == "hybrid" else 1.0
            loss = q_loss * scale if loss is None else loss + q_loss * scale
        uae.optimizer.zero_grad()
        loss.backward()
        uae.optimizer.step()

    for _ in range(_WARMUP):
        one_step()
    start = time.perf_counter()
    for _ in range(reps):
        one_step()
    return (time.perf_counter() - start) / reps


def _time_refinement(uae: UAE, new_rows: np.ndarray, workload) -> float:
    """Wall-clock of one serving-style refinement (data + query halves)."""
    start = time.perf_counter()
    uae.ingest_data(new_rows, epochs=_DATA_EPOCHS)
    uae.ingest_queries(workload, epochs=_REFINE_EPOCHS)
    return time.perf_counter() - start


def run_training(profile: Profile | None = None,
                 write_artifact: bool = True) -> dict:
    """Legacy vs fused-engine training throughput on the DMV workload."""
    from ..train import gradient_parity

    profile = profile or current_profile()
    reps = _TRAIN_STEPS.get(profile.name, 10)
    table = load("dmv", rows=profile.dataset_rows("dmv"), seed=0)
    rng = np.random.default_rng(17)
    step_wl = generate_inworkload(table, 64, rng)
    refine_wl = generate_inworkload(table, max(32, profile.incremental_train),
                                    rng)

    # ------------------------------------------------------------------
    # Gradient parity: identically-seeded models, one shared batch.
    probe = _make_uae(table, profile, "engine")
    pick = np.random.default_rng(3).integers(0, len(probe.model_codes),
                                             min(256, len(probe.model_codes)))
    batch_codes = probe.model_codes[pick]
    constraints = [probe.fact.expand_masks(q.masks(table))
                   for q in step_wl.queries[:profile.query_batch_size]]
    sels = step_wl.selectivities(table.num_rows)[:profile.query_batch_size]
    parity = gradient_parity(lambda b: _make_uae(table, profile, b),
                             batch_codes, constraints, sels,
                             tolerance=_PARITY_TOLERANCE)

    # ------------------------------------------------------------------
    # Steps/s per mode per backend.
    step_seconds: dict[tuple[str, str], float] = {}
    for backend in ("legacy", "engine"):
        uae = _make_uae(table, profile, backend)
        prepared = uae._prepare_workload(step_wl)
        for mode in ("data", "query", "hybrid"):
            step_seconds[(mode, backend)] = _time_steps(uae, prepared,
                                                        mode, reps)

    # ------------------------------------------------------------------
    # End-to-end refinement wall-clock (Section 4.5, serving epochs):
    # 40% fresh rows staged plus the shifted feedback workload.
    n_new = max(1, int(0.4 * table.num_rows))
    new_rows = table.codes[np.random.default_rng(23).integers(
        0, table.num_rows, n_new)]
    refine_seconds: dict[str, float] = {}
    for backend in ("legacy", "engine"):
        uae = _make_uae(table, profile, backend)
        refine_seconds[backend] = _time_refinement(uae, new_rows, refine_wl)

    rows = []
    for mode in ("data", "query", "hybrid"):
        legacy_s = step_seconds[(mode, "legacy")]
        engine_s = step_seconds[(mode, "engine")]
        rows.append({"mode": mode,
                     "legacy_steps_per_sec": 1.0 / legacy_s,
                     "engine_steps_per_sec": 1.0 / engine_s,
                     "speedup": legacy_s / engine_s})
    rows.append({"mode": "refinement (wall-clock s)",
                 "legacy_steps_per_sec": refine_seconds["legacy"],
                 "engine_steps_per_sec": refine_seconds["engine"],
                 "speedup": refine_seconds["legacy"]
                 / refine_seconds["engine"]})

    hybrid_speedup = step_seconds[("hybrid", "legacy")] \
        / step_seconds[("hybrid", "engine")]
    checks = {
        "grad_parity_data": parity["data_max_abs_grad_diff"]
        < _PARITY_TOLERANCE,
        "grad_parity_query": parity["query_max_abs_grad_diff"]
        < _PARITY_TOLERANCE,
        "all_finite": all(np.isfinite(v) for v in step_seconds.values())
        and all(np.isfinite(v) for v in refine_seconds.values()),
        "hybrid_speedup_ge_3": bool(hybrid_speedup >= 3.0),
    }

    payload = {
        "generated_at": datetime.now(timezone.utc).isoformat(),
        "profile": profile.name,
        "dataset": "dmv",
        "num_rows": table.num_rows,
        "batch_size": profile.batch_size,
        "query_batch_size": profile.query_batch_size,
        "dps_samples": profile.dps_samples,
        "measured_steps": reps,
        "data_steps_per_sec": {b: 1.0 / step_seconds[("data", b)]
                               for b in ("legacy", "engine")},
        "query_steps_per_sec": {b: 1.0 / step_seconds[("query", b)]
                                for b in ("legacy", "engine")},
        "hybrid_steps_per_sec": {b: 1.0 / step_seconds[("hybrid", b)]
                                 for b in ("legacy", "engine")},
        "hybrid_speedup": hybrid_speedup,
        "refinement_seconds": refine_seconds,
        "refinement_rows": int(n_new),
        "refinement_queries": len(refine_wl),
        "gradient_parity": parity,
        "checks": checks,
        "rows": rows,
    }
    if write_artifact:
        try:
            with open(BENCH_TRAIN_PATH, "w") as fh:
                json.dump(payload, fh, indent=2)
        except OSError as exc:  # never discard timed results over a write
            print(f"warning: could not write {BENCH_TRAIN_PATH}: {exc}")

    # Parity and sanity are hard gates (the CI smoke job relies on the
    # non-zero exit); the speedup figure is recorded, not gated — step
    # timing on a noisy shared core is not a correctness property.
    failed = [name for name in ("grad_parity_data", "grad_parity_query",
                                "all_finite") if not checks[name]]
    if failed:
        raise RuntimeError(
            f"training bench invariants violated: {failed} "
            f"[data diff {parity['data_max_abs_grad_diff']:.2e}, query diff "
            f"{parity['query_max_abs_grad_diff']:.2e}]; see "
            f"{BENCH_TRAIN_PATH if write_artifact else 'payload'}")

    return {"title": "Training engine throughput: legacy autograd vs fused "
                     f"kernels (DMV, profile={profile.name})",
            "columns": ["mode", "legacy_steps_per_sec",
                        "engine_steps_per_sec", "speedup"],
            "rows": rows,
            **{k: v for k, v in payload.items() if k != "rows"}}
