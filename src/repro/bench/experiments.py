"""One function per paper table/figure (see DESIGN.md's experiment index).

Every function returns ``{"title", "columns", "rows", ...}`` ready for
:func:`repro.bench.reporting.format_table`, and is invoked both by the
pytest-benchmark suite in ``benchmarks/`` and the CLI
(``python -m repro.bench <experiment>``).
"""

from __future__ import annotations

import time

import numpy as np

from ..core import UAE
from ..data import load
from ..data.schema import make_imdb, make_imdb_large
from ..estimators import (BayesNetEstimator, FeedbackKDEEstimator,
                          KDEEstimator, LinearRegressionEstimator, MSCNBase,
                          MSCNSampling, Naru, SamplingEstimator, SPNEstimator)
from ..joins import (MSCNJoin, NeuroCard, SPNJoin, UAEJoin,
                     generate_job_light, generate_job_light_ranges_focused)
from ..joins.workload import generate_job_m_focused
from ..optimizer import EstimatorCardAdapter, run_optimizer_study
from ..workload import (generate_inworkload, generate_random,
                        generate_shifted_partitions, summarize)
from .profiles import Profile, current_profile

_ERROR_COLS = ["mean", "median", "95th", "max"]


# ----------------------------------------------------------------------
# Shared setup
# ----------------------------------------------------------------------
def single_table_setup(dataset: str, profile: Profile, seed: int = 0) -> dict:
    """Table + train/test workloads for one single-table experiment."""
    table = load(dataset, rows=profile.dataset_rows(dataset),
                 seed={"dmv": 0, "census": 1, "kddcup": 2}.get(dataset, 7))
    rng = np.random.default_rng(seed + 100)
    train = generate_inworkload(table, profile.train_queries, rng)
    test_in = generate_inworkload(table, profile.test_queries, rng)
    test_rand = generate_random(table, profile.test_queries, rng)
    return {"table": table, "train": train, "test_in": test_in,
            "test_rand": test_rand, "dataset": dataset}


def _uae_kwargs(profile: Profile, **extra) -> dict:
    kwargs = dict(hidden=profile.hidden, num_blocks=profile.num_blocks,
                  est_samples=profile.est_samples,
                  dps_samples=profile.dps_samples,
                  batch_size=profile.batch_size,
                  query_batch_size=profile.query_batch_size,
                  lam=profile.lam, seed=0)
    kwargs.update(extra)
    return kwargs


def _evaluate(estimator, setup: dict, size_bytes: int | None = None) -> dict:
    est_in = estimator.estimate_many(setup["test_in"].queries)
    est_rand = estimator.estimate_many(setup["test_rand"].queries)
    sin = summarize(est_in, setup["test_in"].cardinalities)
    sra = summarize(est_rand, setup["test_rand"].cardinalities)
    row = {"model": estimator.name,
           "size_kb": (size_bytes if size_bytes is not None
                       else estimator.size_bytes()) / 1024.0}
    row.update({f"in_{k}": v for k, v in sin.row().items()})
    row.update({f"rand_{k}": v for k, v in sra.row().items()})
    return row


SINGLE_TABLE_COLUMNS = (["model", "size_kb"]
                        + [f"in_{c}" for c in _ERROR_COLS]
                        + [f"rand_{c}" for c in _ERROR_COLS])


# ----------------------------------------------------------------------
# Tables 2-4: single-table estimator comparison
# ----------------------------------------------------------------------
def run_single_table(dataset: str, profile: Profile | None = None,
                     estimators: list[str] | None = None) -> dict:
    """Tables 2-4: every estimator on one dataset, both query kinds."""
    profile = profile or current_profile()
    setup = single_table_setup(dataset, profile)
    table, train = setup["table"], setup["train"]
    rows = []
    wanted = set(estimators) if estimators else None

    def include(name: str) -> bool:
        return wanted is None or name in wanted

    uae = UAE(table, **_uae_kwargs(profile))
    uae.fit(epochs=profile.epochs, workload=train, mode="hybrid")
    # Sampling/KDE/MSCN sample sizes match the paper's budget-derived
    # ratios (Section 5.1.4) — see Profile.sampling_fraction.
    fraction = profile.sampling_fraction(dataset)
    sample_rows = max(24, int(round(fraction * table.num_rows)))

    if include("LR"):
        rows.append(_evaluate(
            LinearRegressionEstimator(table).fit(train), setup))
    if include("MSCN-base"):
        rows.append(_evaluate(
            MSCNBase(table, epochs=profile.mscn_epochs).fit(train), setup))
    if include("UAE-Q"):
        uae_q = UAE(table, **_uae_kwargs(profile))
        uae_q.fit(epochs=profile.query_epochs, workload=train, mode="query")
        rows.append(_evaluate(_named(uae_q, "UAE-Q"), setup))
    if include("Sampling"):
        rows.append(_evaluate(
            SamplingEstimator(table, fraction=fraction), setup))
    if include("BayesNet"):
        rows.append(_evaluate(BayesNetEstimator(table), setup))
    if include("KDE"):
        rows.append(_evaluate(
            KDEEstimator(table, sample_size=sample_rows), setup))
    if include("DeepDB"):
        rows.append(_evaluate(SPNEstimator(table), setup))
    if include("Naru"):
        naru = Naru(table, **_uae_kwargs(profile))
        naru.fit(epochs=profile.epochs)
        rows.append(_evaluate(naru, setup))
    if include("MSCN+sampling"):
        rows.append(_evaluate(
            MSCNSampling(table, epochs=profile.mscn_epochs,
                         sample_budget_bytes=4 * table.num_cols
                         * sample_rows).fit(train), setup))
    if include("Feedback-KDE"):
        rows.append(_evaluate(
            FeedbackKDEEstimator(table, sample_size=sample_rows).fit(train),
            setup))
    if include("UAE"):
        rows.append(_evaluate(uae, setup))

    return {"title": f"Estimation errors on {dataset} "
                     f"(profile={profile.name})",
            "columns": SINGLE_TABLE_COLUMNS, "rows": rows,
            "dataset": dataset}


def _named(estimator, name: str):
    estimator.name = name
    return estimator


# ----------------------------------------------------------------------
# Table 5: join queries on IMDB
# ----------------------------------------------------------------------
def run_joins(profile: Profile | None = None) -> dict:
    """Table 5: join estimators on the IMDB-like star schema."""
    profile = profile or current_profile()
    schema = make_imdb(n_titles=profile.join_titles, seed=0)
    rng = np.random.default_rng(77)
    train = generate_job_light_ranges_focused(
        schema, profile.join_train_queries, rng)
    test_focused = generate_job_light_ranges_focused(
        schema, profile.join_test_queries, rng)
    test_light = generate_job_light(schema, profile.join_test_queries, rng)

    common = dict(sample_size=profile.join_sample)
    # The paper sets lambda = 10 on IMDB (Section 5.1.4).
    uae_kwargs = _uae_kwargs(profile, lam=10.0)

    estimators = []
    deepdb = SPNJoin(schema, **common)
    estimators.append(deepdb)
    mscn = MSCNJoin(schema, sample_size=min(profile.join_sample, 4000),
                    epochs=profile.mscn_epochs, seed=0)
    mscn.fit(train)
    estimators.append(mscn)
    neurocard = NeuroCard(schema, **common, **uae_kwargs)
    neurocard.fit(epochs=profile.join_epochs)
    estimators.append(neurocard)
    uae = UAEJoin(schema, **common, **uae_kwargs)
    uae.fit(epochs=profile.join_epochs, workload=train, mode="hybrid")
    estimators.append(_named(uae, "UAE"))

    rows = []
    for est in estimators:
        foc = summarize(est.estimate_many(test_focused.queries),
                        test_focused.cardinalities)
        lig = summarize(est.estimate_many(test_light.queries),
                        test_light.cardinalities)
        rows.append({
            "model": est.name, "size_kb": est.size_bytes() / 1024.0,
            "focused_median": foc.median, "focused_95th": foc.p95,
            "focused_max": foc.maximum,
            "light_median": lig.median, "light_95th": lig.p95,
            "light_max": lig.maximum,
        })
    return {"title": f"Estimation errors on IMDB joins "
                     f"(profile={profile.name})",
            "columns": ["model", "size_kb", "focused_median", "focused_95th",
                        "focused_max", "light_median", "light_95th",
                        "light_max"],
            "rows": rows}


# ----------------------------------------------------------------------
# Table 6: incremental query workload
# ----------------------------------------------------------------------
def run_incremental(profile: Profile | None = None) -> dict:
    """Table 6: stale Naru vs query-refined UAE across shifted
    workload partitions (Section 5.4)."""
    profile = profile or current_profile()
    table = load("dmv", rows=profile.dataset_rows("dmv"), seed=0)
    rng = np.random.default_rng(55)
    # Narrow windows make the partitions tail-focused — the regime where
    # the paper's Naru visibly drifts and query feedback pays off.
    partitions = generate_shifted_partitions(
        table, profile.incremental_parts, profile.incremental_train,
        profile.incremental_test, rng, bounded_volume=0.004)

    naru = Naru(table, **_uae_kwargs(profile))
    naru.fit(epochs=max(2, profile.epochs // 2))
    # Same starting knowledge; refinement uses more DPS samples and a
    # gentler learning rate (the query loss is Monte-Carlo noisy).
    uae = naru.clone(dps_samples=max(16, profile.dps_samples))
    uae.optimizer.lr = uae.config.lr * 0.5

    naru_means, uae_means = [], []
    for part_train, part_test in partitions:
        uae.ingest_queries(part_train,
                           epochs=min(profile.query_epochs, 10))
        naru_err = summarize(naru.estimate_many(part_test.queries),
                             part_test.cardinalities)
        uae_err = summarize(uae.estimate_many(part_test.queries),
                            part_test.cardinalities)
        naru_means.append(naru_err.mean)
        uae_means.append(uae_err.mean)

    rows = [
        {"model": "Naru (stale)", **{f"part{i+1}": naru_means[i]
                                     for i in range(len(naru_means))}},
        {"model": "UAE (refined)", **{f"part{i+1}": uae_means[i]
                                      for i in range(len(uae_means))}},
    ]
    columns = ["model"] + [f"part{i+1}" for i in range(len(naru_means))]
    return {"title": "Incremental query workload: stale Naru vs refined UAE "
                     f"(mean q-error, profile={profile.name})",
            "columns": columns, "rows": rows,
            "naru": naru_means, "uae": uae_means}


# ----------------------------------------------------------------------
# Figure 3: selectivity distributions
# ----------------------------------------------------------------------
def selectivity_distribution(profile: Profile | None = None) -> dict:
    """Figure 3: selectivity spectra of in-workload vs random queries."""
    profile = profile or current_profile()
    rows = []
    for dataset in ("dmv", "census", "kddcup"):
        setup = single_table_setup(dataset, profile)
        for kind in ("test_in", "test_rand"):
            sels = setup[kind].selectivities(setup["table"].num_rows)
            log_sel = np.log10(np.maximum(sels, 1e-9))
            rows.append({
                "dataset": dataset,
                "workload": "in-workload" if kind == "test_in" else "random",
                "log10_min": float(log_sel.min()),
                "log10_p25": float(np.percentile(log_sel, 25)),
                "log10_median": float(np.median(log_sel)),
                "log10_p75": float(np.percentile(log_sel, 75)),
                "log10_max": float(log_sel.max()),
            })
    return {"title": "Figure 3: query selectivity distributions "
                     f"(profile={profile.name})",
            "columns": ["dataset", "workload", "log10_min", "log10_p25",
                        "log10_median", "log10_p75", "log10_max"],
            "rows": rows}


# ----------------------------------------------------------------------
# Figure 4(a) + temperature study: UAE-Q refinement hyper-parameters
# ----------------------------------------------------------------------
def _pretrained_uae_d(profile: Profile, setup: dict) -> UAE:
    uae = UAE(setup["table"], **_uae_kwargs(profile))
    uae.fit(epochs=profile.epochs, mode="data")
    return uae


def sweep_dps_samples(profile: Profile | None = None,
                      values: tuple = (2, 4, 8, 16)) -> dict:
    """Impact of S in DPS (Figure 4(a)); paper sweeps {50,100,200,400}."""
    profile = profile or current_profile()
    setup = single_table_setup("dmv", profile)
    base = _pretrained_uae_d(profile, setup)
    rows = []
    for s in values:
        refined = base.clone(dps_samples=s)
        refined.ingest_queries(setup["train"], epochs=profile.query_epochs)
        err = summarize(refined.estimate_many(setup["test_in"].queries),
                        setup["test_in"].cardinalities)
        rows.append({"S": s, **err.row()})
    return {"title": "Figure 4(a): impact of DPS sample count S on DMV "
                     f"(profile={profile.name})",
            "columns": ["S"] + _ERROR_COLS, "rows": rows}


def sweep_temperature(profile: Profile | None = None,
                      values: tuple = (0.5, 0.75, 1.0, 1.25)) -> dict:
    """Temperature study of Section 5.3 (paper finds tau=1.0 best)."""
    profile = profile or current_profile()
    setup = single_table_setup("dmv", profile)
    base = _pretrained_uae_d(profile, setup)
    rows = []
    for tau in values:
        refined = base.clone(temperature=tau)
        refined.dps.temperature = tau
        refined.ingest_queries(setup["train"], epochs=profile.query_epochs)
        err = summarize(refined.estimate_many(setup["test_in"].queries),
                        setup["test_in"].cardinalities)
        rows.append({"tau": tau, **err.row()})
    return {"title": "Section 5.3: impact of Gumbel-Softmax temperature "
                     f"(profile={profile.name})",
            "columns": ["tau"] + _ERROR_COLS, "rows": rows}


# ----------------------------------------------------------------------
# Figure 4(b): trade-off parameter lambda
# ----------------------------------------------------------------------
def sweep_lambda(profile: Profile | None = None,
                 values: tuple = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2)) -> dict:
    """Figure 4(b): the Eq. 11 trade-off parameter lambda."""
    profile = profile or current_profile()
    setup = single_table_setup("dmv", profile)
    rows = []
    for lam in values:
        uae = UAE(setup["table"], **_uae_kwargs(profile, lam=lam))
        uae.fit(epochs=profile.epochs, workload=setup["train"],
                mode="hybrid")
        err_in = summarize(uae.estimate_many(setup["test_in"].queries),
                           setup["test_in"].cardinalities)
        err_rand = summarize(uae.estimate_many(setup["test_rand"].queries),
                             setup["test_rand"].cardinalities)
        rows.append({"lambda": lam, "in_mean": err_in.mean,
                     "in_max": err_in.maximum, "rand_mean": err_rand.mean,
                     "rand_max": err_rand.maximum})
    return {"title": "Figure 4(b): impact of trade-off parameter lambda "
                     f"(profile={profile.name})",
            "columns": ["lambda", "in_mean", "in_max", "rand_mean",
                        "rand_max"],
            "rows": rows}


# ----------------------------------------------------------------------
# Figure 5(1): training curve; Figure 5(2): estimation latency
# ----------------------------------------------------------------------
def training_curve(profile: Profile | None = None) -> dict:
    """Figure 5(1): per-epoch q-error on Census during hybrid training."""
    profile = profile or current_profile()
    setup = single_table_setup("census", profile)
    curve = []

    def record(epoch: int, model: UAE) -> None:
        err = summarize(model.estimate_many(setup["test_in"].queries),
                        setup["test_in"].cardinalities)
        curve.append({"epoch": epoch + 1, "max": err.maximum,
                      "mean": err.mean})

    uae = UAE(setup["table"], **_uae_kwargs(profile))
    uae.fit(epochs=profile.epochs, workload=setup["train"], mode="hybrid",
            on_epoch_end=record)
    return {"title": "Figure 5(1): training epochs vs q-error on Census "
                     f"(profile={profile.name})",
            "columns": ["epoch", "max", "mean"], "rows": curve}


def estimation_latency(profile: Profile | None = None,
                       n_queries: int = 10) -> dict:
    """Figure 5(2): per-query wall-clock latency per estimator."""
    profile = profile or current_profile()
    setup = single_table_setup("dmv", profile)
    table, train = setup["table"], setup["train"]
    queries = setup["test_in"].queries[:n_queries]

    uae = UAE(table, **_uae_kwargs(profile))
    uae.fit(epochs=max(1, profile.epochs // 2), workload=train, mode="hybrid")
    fraction = profile.sampling_fraction("dmv")
    sample_rows = max(24, int(round(fraction * table.num_rows)))
    estimators = [
        _named(uae, "UAE"),
        SamplingEstimator(table, fraction=fraction),
        BayesNetEstimator(table),
        KDEEstimator(table, sample_size=sample_rows),
        SPNEstimator(table),
        MSCNBase(table, epochs=max(5, profile.mscn_epochs // 4)).fit(train),
        MSCNSampling(table, epochs=max(5, profile.mscn_epochs // 4),
                     sample_budget_bytes=4 * table.num_cols
                     * sample_rows).fit(train),
        LinearRegressionEstimator(table).fit(train),
    ]
    rows = []
    for est in estimators:
        latency = est.latency_seconds(queries)
        rows.append({"model": est.name, "ms_per_query": latency * 1e3})
    rows.sort(key=lambda r: r["ms_per_query"])
    return {"title": "Figure 5(2): estimation latency on DMV "
                     f"(profile={profile.name})",
            "columns": ["model", "ms_per_query"], "rows": rows}


# ----------------------------------------------------------------------
# Figure 6: impact on query optimization
# ----------------------------------------------------------------------
def optimizer_impact(profile: Profile | None = None) -> dict:
    """Figure 6: plan-quality speedups from injected cardinalities."""
    profile = profile or current_profile()
    schema = make_imdb_large(n_titles=profile.join_titles // 2, seed=1)
    rng = np.random.default_rng(99)
    train = generate_job_m_focused(schema, profile.join_train_queries, rng)
    test = generate_job_m_focused(schema, profile.optimizer_queries, rng)

    # The paper sets lambda = 10 on IMDB (Section 5.1.4).
    uae_kwargs = _uae_kwargs(profile, lam=10.0)
    uae = UAEJoin(schema, sample_size=profile.join_sample, **uae_kwargs)
    uae.fit(epochs=profile.join_epochs, workload=train, mode="hybrid")
    neurocard = NeuroCard(schema, sample_size=profile.join_sample,
                          **uae_kwargs)
    neurocard.fit(epochs=profile.join_epochs)

    from ..optimizer.postgres import MagicConstantHeuristic
    results = run_optimizer_study(schema, test.queries, [
        MagicConstantHeuristic(schema),
        EstimatorCardAdapter(neurocard, "NeuroCard"),
        EstimatorCardAdapter(_named(uae, "UAE"), "UAE"),
    ])
    rows = [{"estimator": r.estimator, **r.summary()} for r in results]
    return {"title": "Figure 6: query execution speedups vs PostgreSQL "
                     f"(profile={profile.name})",
            "columns": ["estimator", "median", "mean", "p10", "p90"],
            "rows": rows,
            "speedups": {r.estimator: r.speedups for r in results}}


# ----------------------------------------------------------------------
# Ablations (DESIGN.md Section 5)
# ----------------------------------------------------------------------
def ablation_gradient_estimator(profile: Profile | None = None) -> dict:
    """Gumbel-Softmax vs REINFORCE for training UAE-Q (paper Section 4.3)."""
    profile = profile or current_profile()
    setup = single_table_setup("census", profile)
    rows = []
    for estimator in ("gumbel", "reinforce"):
        start = time.perf_counter()
        uae = UAE(setup["table"],
                  **_uae_kwargs(profile, gradient_estimator=estimator))
        uae.fit(epochs=profile.query_epochs, workload=setup["train"],
                mode="query")
        err = summarize(uae.estimate_many(setup["test_in"].queries),
                        setup["test_in"].cardinalities)
        rows.append({"gradient": estimator, **err.row(),
                     "train_s": time.perf_counter() - start})
    return {"title": "Ablation: Gumbel-Softmax vs REINFORCE (UAE-Q, Census, "
                     f"profile={profile.name})",
            "columns": ["gradient"] + _ERROR_COLS + ["train_s"],
            "rows": rows}


def ablation_discrepancy(profile: Profile | None = None) -> dict:
    """Q-error vs MSE vs MSLE as Discrepancy(.) in Eq. 5 (Section 4.7)."""
    profile = profile or current_profile()
    setup = single_table_setup("census", profile)
    rows = []
    for kind in ("qerror", "mse", "msle"):
        uae = UAE(setup["table"], **_uae_kwargs(profile, discrepancy=kind))
        uae.fit(epochs=max(2, profile.epochs // 2), workload=setup["train"],
                mode="hybrid")
        err = summarize(uae.estimate_many(setup["test_in"].queries),
                        setup["test_in"].cardinalities)
        rows.append({"discrepancy": kind, **err.row()})
    return {"title": "Ablation: query-loss discrepancy function "
                     f"(profile={profile.name})",
            "columns": ["discrepancy"] + _ERROR_COLS, "rows": rows}


def ablation_encoding(profile: Profile | None = None) -> dict:
    """Binary vs one-hot input encodings (Section 4.2)."""
    profile = profile or current_profile()
    setup = single_table_setup("census", profile)
    rows = []
    for encoding in ("binary", "onehot"):
        uae = UAE(setup["table"], **_uae_kwargs(profile, encoding=encoding))
        uae.fit(epochs=max(2, profile.epochs // 2), mode="data")
        err = summarize(uae.estimate_many(setup["test_in"].queries),
                        setup["test_in"].cardinalities)
        rows.append({"encoding": encoding, "size_kb": uae.size_bytes() / 1024,
                     **err.row()})
    return {"title": f"Ablation: input encoding (profile={profile.name})",
            "columns": ["encoding", "size_kb"] + _ERROR_COLS, "rows": rows}


def ablation_sampler(profile: Profile | None = None) -> dict:
    """Progressive vs uniform sampling at inference (Section 4.2)."""
    profile = profile or current_profile()
    setup = single_table_setup("dmv", profile)
    uae = _pretrained_uae_d(profile, setup)
    progressive = uae.estimate_many(setup["test_in"].queries)
    uniform = np.array([uae.estimate_uniform(q, num_samples=profile.est_samples)
                        for q in setup["test_in"].queries])
    rows = [
        {"sampler": "progressive",
         **summarize(progressive, setup["test_in"].cardinalities).row()},
        {"sampler": "uniform",
         **summarize(uniform, setup["test_in"].cardinalities).row()},
    ]
    return {"title": "Ablation: progressive vs uniform sampling on DMV "
                     f"(profile={profile.name})",
            "columns": ["sampler"] + _ERROR_COLS, "rows": rows}


def ablation_wildcard(profile: Profile | None = None) -> dict:
    """Wildcard-skipping dropout on/off (Section 4.6)."""
    profile = profile or current_profile()
    setup = single_table_setup("census", profile)
    rows = []
    for frac in (0.0, 0.5):
        uae = UAE(setup["table"],
                  **_uae_kwargs(profile, wildcard_max_frac=frac))
        uae.fit(epochs=max(2, profile.epochs // 2), mode="data")
        err = summarize(uae.estimate_many(setup["test_in"].queries),
                        setup["test_in"].cardinalities)
        rows.append({"wildcard_max_frac": frac, **err.row()})
    return {"title": "Ablation: wildcard-skipping dropout "
                     f"(profile={profile.name})",
            "columns": ["wildcard_max_frac"] + _ERROR_COLS, "rows": rows}


def ablation_column_order(profile: Profile | None = None) -> dict:
    """Natural vs random autoregressive order (Section 4.2 references the
    ordering strategies of Naru/MADE)."""
    profile = profile or current_profile()
    setup = single_table_setup("census", profile)
    rows = []
    for order in ("natural", "random"):
        uae = UAE(setup["table"], **_uae_kwargs(profile, column_order=order))
        uae.fit(epochs=max(2, profile.epochs // 2), mode="data")
        err = summarize(uae.estimate_many(setup["test_in"].queries),
                        setup["test_in"].cardinalities)
        rows.append({"order": order, **err.row()})
    return {"title": "Ablation: autoregressive column order "
                     f"(profile={profile.name})",
            "columns": ["order"] + _ERROR_COLS, "rows": rows}


def run_dmv_large(profile: Profile | None = None) -> dict:
    """DMV-large (Section 5.1.1): columns with very large NDVs.

    Compares the paper's two large-NDV treatments — learnable embeddings
    vs column factorization (Section 4.6) — on a table with a ~100%-unique
    VIN column, against DeepDB whose leaf histograms the paper expects to
    struggle at high NDV.
    """
    profile = profile or current_profile()
    from ..data import make_dmv
    table = make_dmv(rows=profile.dataset_rows("dmv"), seed=0,
                     large_ndv=True)
    rng = np.random.default_rng(123)
    from ..workload import WorkloadConfig
    cfg = WorkloadConfig()
    train = generate_inworkload(table, profile.train_queries, rng,
                                bounded_column="county", cfg=cfg)
    test = generate_inworkload(table, profile.test_queries, rng,
                               bounded_column="county", cfg=cfg)
    setup = {"table": table, "test_in": test, "test_rand": test}

    rows = []
    epochs = max(2, profile.epochs // 2)
    factored = UAE(table, **_uae_kwargs(profile, factor_threshold=2048))
    factored.fit(epochs=epochs, mode="data")
    err = summarize(factored.estimate_many(test.queries), test.cardinalities)
    rows.append({"model": "UAE (factorized)",
                 "size_kb": factored.size_bytes() / 1024, **err.row()})

    embedded = UAE(table, **_uae_kwargs(
        profile, factor_threshold=10 ** 9, embedding_threshold=1024,
        embedding_dim=16))
    embedded.fit(epochs=epochs, mode="data")
    err = summarize(embedded.estimate_many(test.queries), test.cardinalities)
    rows.append({"model": "UAE (embeddings)",
                 "size_kb": embedded.size_bytes() / 1024, **err.row()})

    spn = SPNEstimator(table)
    err = summarize(spn.estimate_many(test.queries), test.cardinalities)
    rows.append({"model": "DeepDB", "size_kb": spn.size_bytes() / 1024,
                 **err.row()})

    sampling = SamplingEstimator(table, budget_bytes=factored.size_bytes())
    err = summarize(sampling.estimate_many(test.queries), test.cardinalities)
    rows.append({"model": "Sampling", "size_kb": sampling.size_bytes() / 1024,
                 **err.row()})

    return {"title": "DMV-large: very large NDVs (embeddings vs "
                     f"factorization, profile={profile.name})",
            "columns": ["model", "size_kb"] + _ERROR_COLS, "rows": rows}


def run_incremental_data(profile: Profile | None = None) -> dict:
    """Incremental data ingestion (goal G3; Section 5.4 defers to prior
    work for this half, reproduced here for completeness).

    The table grows by 40% with rows skewed to a new data region; the
    stale model keeps its old weights and row count, the refreshed model
    ingests the new tuples with a few data-loss epochs.
    """
    profile = profile or current_profile()
    from ..data import Table, load
    full = load("dmv", rows=profile.dataset_rows("dmv"), seed=0)
    order = np.argsort(full.codes[:, 0], kind="stable")
    split = int(0.6 * full.num_rows)
    base = Table(full.name, full.columns, full.codes[order[:split]])
    new_rows = full.codes[order[split:]]

    rng = np.random.default_rng(321)
    test = generate_inworkload(full, profile.test_queries, rng)

    stale = UAE(base, **_uae_kwargs(profile))
    stale.fit(epochs=profile.epochs, mode="data")
    refreshed = stale.clone()
    refreshed.ingest_data(new_rows, epochs=max(2, profile.epochs // 2))

    rows = []
    for name, model in (("stale (pre-insert)", stale),
                        ("refreshed (ingested)", refreshed)):
        err = summarize(model.estimate_many(test.queries),
                        test.cardinalities)
        rows.append({"model": name, **err.row()})
    return {"title": "Incremental data: stale vs refreshed UAE on the "
                     f"grown table (profile={profile.name})",
            "columns": ["model"] + _ERROR_COLS, "rows": rows}


def capability_matrix(profile: Profile | None = None) -> dict:
    """Paper Table 1: which estimator families support what."""
    from ..estimators import capability_rows
    rows = capability_rows()
    return {"title": "Table 1: capability matrix of estimator families",
            "columns": list(rows[0]), "rows": rows}


def run_sub_baselines(profile: Profile | None = None) -> dict:
    """The paper's footnote comparison: STHoles, MHIST, QuickSel and
    Postgres-style histograms performed worse than the nine reported
    baselines.  This experiment verifies that shape against UAE."""
    profile = profile or current_profile()
    from ..estimators import (IndependenceHistogramEstimator, MHISTEstimator,
                              QuickSelEstimator, STHolesEstimator)
    setup = single_table_setup("dmv", profile)
    table, train = setup["table"], setup["train"]
    rows = []
    uae = UAE(table, **_uae_kwargs(profile))
    uae.fit(epochs=profile.epochs, workload=train, mode="hybrid")
    rows.append(_evaluate(uae, setup))
    rows.append(_evaluate(IndependenceHistogramEstimator(table), setup))
    rows.append(_evaluate(MHISTEstimator(table), setup))
    rows.append(_evaluate(STHolesEstimator(table).fit(train), setup))
    rows.append(_evaluate(QuickSelEstimator(table).fit(train), setup))
    return {"title": "Sub-baselines the paper omits (STHoles / MHIST / "
                     f"QuickSel / Postgres1D) vs UAE (profile={profile.name})",
            "columns": SINGLE_TABLE_COLUMNS, "rows": rows}


def ablation_ensemble(profile: Profile | None = None) -> dict:
    """Horizontal-partition ensemble vs monolithic UAE (the paper's
    Section 4.1 discussion of ensembles, realised without independence
    assumptions through additive row partitions)."""
    profile = profile or current_profile()
    from ..core import PartitionedUAE
    setup = single_table_setup("dmv", profile)
    table = setup["table"]
    epochs = max(2, profile.epochs // 2)
    rows = []
    mono = UAE(table, **_uae_kwargs(profile))
    mono.fit(epochs=epochs, mode="data")
    err = summarize(mono.estimate_many(setup["test_in"].queries),
                    setup["test_in"].cardinalities)
    rows.append({"model": "UAE (monolithic)",
                 "size_kb": mono.size_bytes() / 1024, **err.row()})
    for parts in (2, 4):
        ens = PartitionedUAE(table, "county", num_partitions=parts,
                             **_uae_kwargs(profile))
        ens.fit(epochs=epochs, mode="data")
        err = summarize(ens.estimate_many(setup["test_in"].queries),
                        setup["test_in"].cardinalities)
        rows.append({"model": f"UAE-ensemble x{parts}",
                     "size_kb": ens.size_bytes() / 1024, **err.row()})
    return {"title": "Ablation: horizontal-partition ensemble "
                     f"(profile={profile.name})",
            "columns": ["model", "size_kb"] + _ERROR_COLS, "rows": rows}


def run_infer_latency(profile: Profile | None = None) -> dict:
    """Inference-engine microbenchmark (writes BENCH_infer.json)."""
    from .infer_bench import run_infer_latency as _run
    return _run(profile)


def run_serving(profile: Profile | None = None) -> dict:
    """Online serving scenario (writes BENCH_serve.json)."""
    from .serve_bench import run_serving as _run
    return _run(profile)


def run_serving_multi(profile: Profile | None = None) -> dict:
    """Multi-table front-door scenario (standalone; also embedded in
    BENCH_serve.json by the `serving` experiment)."""
    from .serve_bench import run_multi_table as _run
    return _run(profile)


def run_serving_scale(profile: Profile | None = None) -> dict:
    """Scale-out cluster scenario (standalone; also embedded in
    BENCH_serve.json by the `serving` experiment)."""
    from .serve_bench import run_scale_out as _run
    return _run(profile)


def run_serving_load(profile: Profile | None = None) -> dict:
    """Open-loop HTTP load scenario (standalone; also embedded in
    BENCH_serve.json by the `serving` experiment)."""
    from .load_bench import run_open_loop as _run
    return _run(profile)


def run_serving_chaos(profile: Profile | None = None) -> dict:
    """Self-healing chaos scenario (standalone; also embedded in
    BENCH_serve.json by the `serving` experiment)."""
    from .serve_bench import run_chaos as _run
    return _run(profile)


def run_plan_quality(profile: Profile | None = None) -> dict:
    """Optimizer-in-the-loop plan-quality scenario (writes
    BENCH_plan.json): the DP planner's card function answered by the
    live serving tier, scored against oracle/heuristic baselines."""
    from .plan_bench import run_plan_quality as _run
    return _run(profile)


def run_training_bench(profile: Profile | None = None) -> dict:
    """Training-engine microbenchmark (writes BENCH_train.json)."""
    from .train_bench import run_training as _run
    return _run(profile)


EXPERIMENTS = {
    "latency": run_infer_latency,
    "serving": run_serving,
    "serving_multi": run_serving_multi,
    "serving_scale": run_serving_scale,
    "serving_load": run_serving_load,
    "serving_chaos": run_serving_chaos,
    "plans": run_plan_quality,
    "training": run_training_bench,
    "table1": capability_matrix,
    "sub_baselines": run_sub_baselines,
    "ablation_ensemble": ablation_ensemble,
    "table2": lambda p=None: run_single_table("dmv", p),
    "table3": lambda p=None: run_single_table("census", p),
    "table4": lambda p=None: run_single_table("kddcup", p),
    "table5": run_joins,
    "table6": run_incremental,
    "fig3": selectivity_distribution,
    "fig4a": sweep_dps_samples,
    "fig4b": sweep_lambda,
    "fig5_curve": training_curve,
    "fig5_latency": estimation_latency,
    "fig6": optimizer_impact,
    "tau": sweep_temperature,
    "ablation_gradient": ablation_gradient_estimator,
    "ablation_discrepancy": ablation_discrepancy,
    "ablation_encoding": ablation_encoding,
    "ablation_sampler": ablation_sampler,
    "ablation_wildcard": ablation_wildcard,
    "ablation_order": ablation_column_order,
    "dmv_large": run_dmv_large,
    "incremental_data": run_incremental_data,
}
