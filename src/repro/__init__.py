"""repro — reproduction of "A Unified Deep Model of Learning from both Data
and Queries for Cardinality Estimation" (UAE, SIGMOD 2021).

Public API tour:

* :mod:`repro.data` — tables, synthetic datasets, factorization.
* :mod:`repro.workload` — predicates, generators, ground truth, q-error.
* :mod:`repro.core` — the UAE estimator (UAE-D / UAE-Q / hybrid), DPS and
  Gumbel-Softmax.
* :mod:`repro.estimators` — the nine baselines of the paper's evaluation.
* :mod:`repro.joins` — join sampling and the multi-table estimator.
* :mod:`repro.optimizer` — the query-optimizer impact study.
* :mod:`repro.bench` — harnesses regenerating every table and figure.
"""

from .core import UAE, UAEConfig
from .data import Table, load
from .workload import LabeledWorkload, Predicate, Query

__version__ = "1.0.0"

__all__ = ["UAE", "UAEConfig", "Table", "load", "Query", "Predicate",
           "LabeledWorkload", "__version__"]
