"""Dependency-free metrics registry for the serving stack.

Three instrument kinds, all thread-safe and cheap enough for hot paths:

* :class:`Counter` — monotonic float, ``inc()`` only.
* :class:`Gauge` — settable value, or a callable sampled lazily at
  snapshot/render time (``set_function``), so exposing e.g. a queue
  depth costs nothing until someone scrapes ``/metrics``.
* :class:`Histogram` — log-bucketed latency histogram with a **fixed**
  bucket layout (:data:`DEFAULT_BUCKETS`).  Because every process uses
  the same bounds, bucket counts are mergeable across workers by plain
  element-wise addition, and p50/p95/p99 computed from the merged
  counts are exact up to one bucket's width.

Instruments are grouped into labeled *families* (one family per metric
name, one child per label-value tuple), mirroring the Prometheus data
model.  :meth:`MetricsRegistry.snapshot` produces a plain-dict,
pickle/JSON-friendly dump; :meth:`MetricsRegistry.ingest` adds a
snapshot into a registry (optionally stamping extra labels such as
``worker="w0"``), which is how the cluster tier merges worker-process
metrics into one exposition; :meth:`MetricsRegistry.render` emits
Prometheus text format 0.0.4.

Only ``math``/``threading`` are imported — no third-party deps, safe to
use inside cluster worker processes.
"""

from __future__ import annotations

import math
import threading
from typing import Callable, Iterable, Mapping, Sequence

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "log_buckets",
    "percentile_from_counts",
]


def log_buckets(start: float = 1e-4, stop: float = 100.0,
                per_decade: int = 8) -> tuple[float, ...]:
    """Geometric bucket upper bounds from *start* to at least *stop*.

    The default spans 100 microseconds to 100 seconds at 8 buckets per
    decade (each bound ~33% above the previous), 49 finite bounds — an
    implicit +Inf overflow bucket is always appended by Histogram.
    """
    bounds: list[float] = []
    n = 0
    while True:
        b = start * 10.0 ** (n / per_decade)
        # Round to a stable short decimal so every process, regardless of
        # platform libm, agrees bit-for-bit on the layout (mergeability).
        b = float(f"{b:.6g}")
        bounds.append(b)
        if b >= stop:
            break
        n += 1
    return tuple(bounds)


DEFAULT_BUCKETS = log_buckets()


def percentile_from_counts(bounds: Sequence[float], counts: Sequence[int],
                           q: float) -> float:
    """Estimate the *q*-quantile (0..1) from histogram bucket counts.

    *counts* has ``len(bounds) + 1`` entries (last one is the +Inf
    overflow bucket).  Linear interpolation inside the target bucket;
    the overflow bucket clamps to the last finite bound, which makes
    the estimate conservative (never exaggerates tail latency).
    """
    total = sum(counts)
    if total <= 0:
        return math.nan
    rank = q * total
    cum = 0.0
    for i, c in enumerate(counts):
        if c <= 0:
            continue
        lo = bounds[i - 1] if i > 0 else 0.0
        if i >= len(bounds):          # overflow bucket: clamp
            return float(bounds[-1])
        hi = bounds[i]
        if cum + c >= rank:
            frac = (rank - cum) / c
            return lo + (hi - lo) * min(max(frac, 0.0), 1.0)
        cum += c
    return float(bounds[-1])


def _fmt(v: float) -> str:
    if v != v:
        return "NaN"
    if v == math.inf:
        return "+Inf"
    if v == -math.inf:
        return "-Inf"
    if float(v).is_integer() and abs(v) < 1e15:
        return str(int(v))
    return repr(float(v))


def _escape(v: str) -> str:
    return v.replace("\\", "\\\\").replace("\"", "\\\"").replace("\n", "\\n")


class Counter:
    """Monotonic counter child (one label combination)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """Settable gauge child; may be backed by a callable sampled lazily."""

    __slots__ = ("_lock", "_value", "_fn")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0
        self._fn: Callable[[], float] | None = None

    def set(self, value: float) -> None:
        with self._lock:
            self._fn = None
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_function(self, fn: Callable[[], float]) -> None:
        """Sample *fn* at snapshot/render time instead of storing a value."""
        with self._lock:
            self._fn = fn

    @property
    def value(self) -> float:
        fn = self._fn
        if fn is not None:
            try:
                return float(fn())
            except Exception:
                return math.nan
        return self._value


class Histogram:
    """Fixed-layout log-bucketed histogram child."""

    __slots__ = ("_lock", "bounds", "counts", "sum", "count", "min", "max")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self._lock = threading.Lock()
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self.min = math.inf
        self.max = -math.inf

    def _index(self, value: float) -> int:
        # Binary search over the fixed bounds; ~6 comparisons for the
        # default layout.  bisect on a tuple would allocate; inline it.
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def observe(self, value: float) -> None:
        value = float(value)
        idx = self._index(value)
        with self._lock:
            self.counts[idx] += 1
            self.sum += value
            self.count += 1
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    def percentile(self, q: float) -> float:
        with self._lock:
            counts = list(self.counts)
            mn, mx = self.min, self.max
        est = percentile_from_counts(self.bounds, counts, q)
        if est != est:
            return est
        # Clamp by the observed range — tightens the first/last buckets.
        if mn <= mx:
            est = min(max(est, mn), mx)
        return est

    def merge_counts(self, counts: Sequence[int], total: float, n: int,
                     mn: float = math.inf, mx: float = -math.inf) -> None:
        if len(counts) != len(self.counts):
            raise ValueError("histogram bucket layouts differ; cannot merge")
        with self._lock:
            for i, c in enumerate(counts):
                self.counts[i] += c
            self.sum += total
            self.count += n
            if mn < self.min:
                self.min = mn
            if mx > self.max:
                self.max = mx


class _Family:
    """One metric name: a set of children keyed by label-value tuples."""

    def __init__(self, name: str, kind: str, help: str,
                 label_names: tuple[str, ...],
                 buckets: tuple[float, ...] | None = None) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = label_names
        self.buckets = buckets
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], Counter | Gauge | Histogram] = {}

    def _make_child(self) -> Counter | Gauge | Histogram:
        if self.kind == "counter":
            return Counter()
        if self.kind == "gauge":
            return Gauge()
        return Histogram(self.buckets or DEFAULT_BUCKETS)

    def labels(self, **labels: object):
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {tuple(labels)}")
        key = tuple(str(labels[n]) for n in self.label_names)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._make_child())
        return child

    # Convenience: an unlabeled family proxies straight to its sole child.
    @property
    def _default(self):
        return self.labels()

    def inc(self, amount: float = 1.0) -> None:
        self._default.inc(amount)

    def set(self, value: float) -> None:
        self._default.set(value)

    def set_function(self, fn: Callable[[], float]) -> None:
        self._default.set_function(fn)

    def observe(self, value: float) -> None:
        self._default.observe(value)

    @property
    def value(self) -> float:
        return self._default.value

    def total(self) -> float:
        """Sum of all children (counters/gauges)."""
        with self._lock:
            children = list(self._children.values())
        return sum(c.value for c in children)

    def series(self) -> list[tuple[dict[str, str], Counter | Gauge | Histogram]]:
        with self._lock:
            items = sorted(self._children.items())
        return [(dict(zip(self.label_names, key)), child)
                for key, child in items]


class MetricsRegistry:
    """A process-local collection of metric families.

    ``counter``/``gauge``/``histogram`` are get-or-create: calling twice
    with the same name returns the same family (kind and label names
    must agree).  Everything is safe to call from any thread.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    # ------------------------------------------------------------------
    def _get(self, name: str, kind: str, help: str,
             label_names: Iterable[str],
             buckets: tuple[float, ...] | None = None) -> _Family:
        label_names = tuple(label_names)
        with self._lock:
            fam = self._families.get(name)
            if fam is None:
                fam = _Family(name, kind, help, label_names, buckets)
                self._families[name] = fam
            elif fam.kind != kind or fam.label_names != label_names:
                raise ValueError(
                    f"metric {name!r} re-registered as {kind}{label_names} "
                    f"(was {fam.kind}{fam.label_names})")
            return fam

    def counter(self, name: str, help: str = "",
                labels: Iterable[str] = ()) -> _Family:
        return self._get(name, "counter", help, labels)

    def gauge(self, name: str, help: str = "",
              labels: Iterable[str] = ()) -> _Family:
        return self._get(name, "gauge", help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: Iterable[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> _Family:
        return self._get(name, "histogram", help, labels, tuple(buckets))

    def get_family(self, name: str) -> _Family | None:
        with self._lock:
            return self._families.get(name)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Plain-dict dump of every family — pickle/JSON friendly."""
        with self._lock:
            fams = list(self._families.values())
        out = []
        for fam in fams:
            series = []
            for labels, child in fam.series():
                if fam.kind == "histogram":
                    with child._lock:
                        series.append({
                            "labels": labels,
                            "counts": list(child.counts),
                            "sum": child.sum,
                            "count": child.count,
                            "min": child.min,
                            "max": child.max,
                        })
                else:
                    series.append({"labels": labels, "value": child.value})
            entry = {"name": fam.name, "kind": fam.kind, "help": fam.help,
                     "label_names": list(fam.label_names), "series": series}
            if fam.kind == "histogram":
                entry["buckets"] = list(fam.buckets or DEFAULT_BUCKETS)
            out.append(entry)
        return {"families": out}

    def ingest(self, snapshot: Mapping,
               extra_labels: Mapping[str, str] | None = None) -> None:
        """Merge a :meth:`snapshot` dump into this registry.

        *extra_labels* (e.g. ``{"worker": "w0"}``) are appended to every
        series, which keeps per-worker series distinguishable while the
        fixed bucket layout keeps histograms mergeable.  Ingest the same
        snapshot into a **fresh** registry per merge — counters add, so
        re-ingesting into a live registry double-counts.
        """
        extra = dict(extra_labels or {})
        for fam_dump in snapshot.get("families", []):
            names = tuple(fam_dump["label_names"]) + tuple(extra)
            kind = fam_dump["kind"]
            fam = self._get(fam_dump["name"], kind, fam_dump.get("help", ""),
                            names,
                            tuple(fam_dump.get("buckets") or DEFAULT_BUCKETS)
                            if kind == "histogram" else None)
            for s in fam_dump["series"]:
                child = fam.labels(**{**s["labels"], **extra})
                if kind == "counter":
                    child.inc(s["value"])
                elif kind == "gauge":
                    child.set(s["value"])
                else:
                    child.merge_counts(s["counts"], s["sum"], s["count"],
                                       s.get("min", math.inf),
                                       s.get("max", -math.inf))

    @staticmethod
    def merged(snapshots: Iterable[tuple[Mapping, Mapping[str, str] | None]]
               ) -> "MetricsRegistry":
        """Fresh registry built from ``(snapshot, extra_labels)`` pairs.

        Extra-label *keys* are unioned across all pairs (missing values
        become ``""``) so e.g. a parent snapshot without a ``worker``
        label merges cleanly alongside worker-labeled ones.
        """
        pairs = [(snap, dict(extra or {})) for snap, extra in snapshots]
        keys = sorted({k for _, extra in pairs for k in extra})
        reg = MetricsRegistry()
        for snap, extra in pairs:
            reg.ingest(snap, {k: extra.get(k, "") for k in keys})
        return reg

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Prometheus text exposition format 0.0.4."""
        with self._lock:
            fams = sorted(self._families.values(), key=lambda f: f.name)
        lines: list[str] = []
        for fam in fams:
            if fam.help:
                lines.append(f"# HELP {fam.name} {_escape(fam.help)}")
            lines.append(f"# TYPE {fam.name} {fam.kind}")
            for labels, child in fam.series():
                if fam.kind == "histogram":
                    with child._lock:
                        counts = list(child.counts)
                        total, n = child.sum, child.count
                    cum = 0
                    bounds = fam.buckets or DEFAULT_BUCKETS
                    for i, bound in enumerate(bounds):
                        cum += counts[i]
                        lines.append(self._line(
                            fam.name + "_bucket",
                            {**labels, "le": _fmt(bound)}, cum))
                    cum += counts[-1]
                    lines.append(self._line(fam.name + "_bucket",
                                            {**labels, "le": "+Inf"}, cum))
                    lines.append(self._line(fam.name + "_sum", labels, total))
                    lines.append(self._line(fam.name + "_count", labels, n))
                else:
                    lines.append(self._line(fam.name, labels, child.value))
        return "\n".join(lines) + "\n"

    @staticmethod
    def _line(name: str, labels: Mapping[str, str], value: float) -> str:
        if labels:
            body = ",".join(f'{k}="{_escape(str(v))}"'
                            for k, v in labels.items())
            return f"{name}{{{body}}} {_fmt(value)}"
        return f"{name} {_fmt(value)}"
