"""Unified observability layer: metrics, tracing, and event logging.

See README section "Observability" for the metric catalogue and label
conventions.  Everything here is stdlib-only and safe to import inside
cluster worker processes.
"""

from .events import EVENTS, EventLog
from .metrics import (DEFAULT_BUCKETS, Counter, Gauge, Histogram,
                      MetricsRegistry, log_buckets, percentile_from_counts)
from .trace import Span, Trace, TraceRecorder

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "EVENTS",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Trace",
    "TraceRecorder",
    "log_buckets",
    "percentile_from_counts",
]
