"""Structured JSON-lines event log for serving lifecycle events.

Every consequential state change in the serving stack — hot-swap
publish/adopt, rollback, drift trigger, refinement start/finish, load
shed, cancellation, worker crash/recover — is emitted as one JSON
object per line: ``{"ts": <unix>, "event": <name>, ...fields}``.

Events go to a bounded in-memory ring (always) and, if a sink is
configured, to a JSON-lines file.  Set the ``REPRO_EVENT_LOG``
environment variable to a path to capture the process-default log
(:data:`EVENTS`) to disk; components accept an ``events=`` argument to
use a private log instead.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque

__all__ = ["EventLog", "EVENTS"]


class EventLog:
    def __init__(self, capacity: int = 1024,
                 path: str | None = None) -> None:
        self._ring: deque[dict] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._path = path
        self._file = None
        self.emitted = 0

    def emit(self, event: str, **fields) -> dict:
        record = {"ts": round(time.time(), 6), "event": event, **fields}
        with self._lock:
            self.emitted += 1
            self._ring.append(record)
            if self._path is not None:
                try:
                    if self._file is None:
                        self._file = open(self._path, "a", encoding="utf-8")
                    self._file.write(json.dumps(record, default=str) + "\n")
                    self._file.flush()
                except OSError:
                    # Telemetry must never take down serving.
                    self._path = None
        return record

    def recent(self, n: int | None = None,
               event: str | None = None) -> list[dict]:
        with self._lock:
            items = list(self._ring)
        if event is not None:
            items = [r for r in items if r["event"] == event]
        return items[-n:] if n else items

    def counts(self) -> dict[str, int]:
        with self._lock:
            items = list(self._ring)
        out: dict[str, int] = {}
        for r in items:
            out[r["event"]] = out.get(r["event"], 0) + 1
        return out

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                try:
                    self._file.close()
                except OSError:
                    pass
                self._file = None


#: Process-default event log; ``REPRO_EVENT_LOG=<path>`` adds a file sink.
EVENTS = EventLog(path=os.environ.get("REPRO_EVENT_LOG"))
