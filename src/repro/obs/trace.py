"""Per-request tracing: spans, traces, and a bounded recorder.

A :class:`Trace` is created at the edge (HTTP accept, or ``submit`` for
in-process callers) and threaded through the stack as an optional
``trace=`` argument.  Each stage appends :class:`Span` records — queue
wait, micro-batch compute, settle, cluster slot wait, worker compute —
using either explicit timestamps it already has on hand (the serving
hot paths never take extra clock readings just for tracing) or the
:meth:`Trace.span` context manager for code that owns its own timing.

All span times are ``time.perf_counter()`` values.  On Linux that is
``CLOCK_MONOTONIC``, which is shared across processes on the same host,
so worker-side timestamps shipped back in the cluster response envelope
land on the same axis as parent-side spans.

:class:`TraceRecorder` keeps two bounded rings — most recent traces and
slowest-over-threshold traces — for the ``GET /debug/traces`` dump.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque
from contextlib import contextmanager

__all__ = ["Span", "Trace", "TraceRecorder"]

_ids = itertools.count(1)


class Span:
    """One timed stage inside a trace."""

    __slots__ = ("name", "start", "end", "parent", "attrs")

    def __init__(self, name: str, start: float, end: float | None = None,
                 parent: "Span | None" = None,
                 attrs: dict | None = None) -> None:
        self.name = name
        self.start = start
        self.end = end
        self.parent = parent
        self.attrs = attrs

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def to_dict(self, origin: float = 0.0) -> dict:
        d = {
            "name": self.name,
            "start_ms": (self.start - origin) * 1e3,
            "duration_ms": self.duration * 1e3,
        }
        if self.parent is not None:
            d["parent"] = self.parent.name
        if self.attrs:
            d["attrs"] = self.attrs
        return d


class Trace:
    """A request's spans plus identifying attributes."""

    __slots__ = ("trace_id", "name", "started", "ended", "started_unix",
                 "attrs", "spans", "_lock")

    def __init__(self, name: str, trace_id: str | None = None) -> None:
        self.name = name
        if trace_id is None:
            trace_id = f"{os.getpid():x}-{next(_ids):08x}"
        self.trace_id = trace_id
        self.started = time.perf_counter()
        self.started_unix = time.time()
        self.ended: float | None = None
        self.attrs: dict = {}
        self.spans: list[Span] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def add_span(self, name: str, start: float, end: float | None = None,
                 parent: Span | None = None, **attrs) -> Span:
        """Record a span from timestamps the caller already holds."""
        span = Span(name, start, end, parent, attrs or None)
        with self._lock:
            self.spans.append(span)
        return span

    @contextmanager
    def span(self, name: str, parent: Span | None = None, **attrs):
        span = self.add_span(name, time.perf_counter(), None, parent, **attrs)
        try:
            yield span
        finally:
            span.end = time.perf_counter()

    def set(self, **attrs) -> None:
        self.attrs.update(attrs)

    def finish(self, **attrs) -> "Trace":
        if attrs:
            self.set(**attrs)
        if self.ended is None:
            self.ended = time.perf_counter()
        return self

    @property
    def duration(self) -> float:
        end = self.ended if self.ended is not None else time.perf_counter()
        return end - self.started

    def to_dict(self) -> dict:
        with self._lock:
            spans = list(self.spans)
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "started_unix": self.started_unix,
            "duration_ms": self.duration * 1e3,
            "attrs": self.attrs,
            "spans": [s.to_dict(self.started) for s in spans],
        }


class TraceRecorder:
    """Bounded rings of recent and slow traces."""

    def __init__(self, capacity: int = 128, slow_capacity: int = 32,
                 slow_threshold_s: float = 0.25) -> None:
        self.slow_threshold_s = slow_threshold_s
        self._recent: deque[Trace] = deque(maxlen=capacity)
        self._slow: deque[Trace] = deque(maxlen=slow_capacity)
        self._lock = threading.Lock()
        self.recorded = 0

    def record(self, trace: Trace) -> None:
        with self._lock:
            self.recorded += 1
            self._recent.append(trace)
            if trace.duration >= self.slow_threshold_s:
                self._slow.append(trace)

    def recent(self, n: int | None = None) -> list[Trace]:
        with self._lock:
            items = list(self._recent)
        return items[-n:] if n else items

    def slow(self, n: int | None = None) -> list[Trace]:
        with self._lock:
            items = list(self._slow)
        return items[-n:] if n else items

    def to_dict(self, n: int | None = None) -> dict:
        return {
            "recorded": self.recorded,
            "slow_threshold_ms": self.slow_threshold_s * 1e3,
            "recent": [t.to_dict() for t in self.recent(n)],
            "slow": [t.to_dict() for t in self.slow(n)],
        }
