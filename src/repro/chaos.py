"""Deterministic chaos injection for the serving stack.

Self-healing claims are only as good as the failures they were tested
against, and ad-hoc fault injection (a `kill -9` in a shell, a sleep
patched into a worker) is unrepeatable.  This module makes every fault a
*seeded, named, countable* event: a :class:`ChaosPlan` is built once,
threaded through the layers under test (server, cluster, workers), and
consulted at well-known **hook points**.  The same plan with the same
seed fires the same faults at the same occurrences — in a unit test, in
the ``chaos`` bench scenario, and in the CI smoke — so a healing bug
reproduces instead of flaking.

Hook points (the strings the serving stack passes to :meth:`ChaosPlan.fires`):

=====================  ======================================================
hook                   fired where / typical actions
=====================  ======================================================
``refine.weights``     :meth:`UAEServer._refine_now`, after ingestion and
                       before shadow validation — ``poison`` perturbs the
                       trainer's weights (a corrupted refinement candidate).
``publish.snapshot``   :meth:`UAEServer._refine_now`, at publish time —
                       ``drop`` makes one publish attempt vanish (the server
                       retries and records the heal).
``feedback.record``    :meth:`UAEServer.observe` — ``corrupt`` scales the
                       observed true cardinality (poisoned feedback stream).
``worker.batch``       cluster :func:`_worker_main`, on receipt of a batch
                       message — ``kill`` SIGKILLs the worker process,
                       ``sleep`` delays it (slow-worker latency).
=====================  ======================================================

A fault fires on specific *occurrences* of its hook (``at=3`` — the 3rd
time that hook is evaluated with a matching context; ``every=5`` — every
5th; ``prob=0.1`` — a per-occurrence seeded coin), optionally restricted
by a ``where`` context match (``where={"worker": "w1"}``) and capped by
``count``.  Occurrence counters are per-plan-copy: a plan forked into a
worker process counts that worker's occurrences from zero, so worker
faults are deterministic regardless of what the parent did.  Restarted
workers get an incremented ``incarnation`` in their hook context —
``where={"incarnation": 0}`` expresses "crash once, then stay healthy",
while a fault with no incarnation guard expresses a crash loop (what the
supervisor's circuit breaker is tested against).

The plan is picklable (it rides fork/spawn into cluster workers) and its
per-hook randomness derives from ``zlib.crc32`` of the hook name — never
from the salted builtin ``hash()`` — so firing is stable across
processes and interpreter runs.
"""

from __future__ import annotations

import random
import threading
import zlib
from dataclasses import dataclass, field

import numpy as np

#: Canonical hook-point names (call sites use the literals; these are the
#: documented, importable spellings).
HOOK_REFINE_WEIGHTS = "refine.weights"
HOOK_PUBLISH_SNAPSHOT = "publish.snapshot"
HOOK_FEEDBACK_RECORD = "feedback.record"
HOOK_WORKER_BATCH = "worker.batch"

HOOKS = (HOOK_REFINE_WEIGHTS, HOOK_PUBLISH_SNAPSHOT,
         HOOK_FEEDBACK_RECORD, HOOK_WORKER_BATCH)


@dataclass
class Fault:
    """One scheduled fault at a hook point.

    Exactly when it fires is the intersection of the occurrence selectors
    (``at`` / ``every`` / ``prob``; ``at`` counts matching occurrences
    from 1) and the ``where`` context filter; ``count`` caps total fires.
    """

    hook: str
    action: str = "fail"
    at: int | None = None            # fire on the Nth matching occurrence
    every: int | None = None         # fire on every Nth matching occurrence
    prob: float | None = None        # seeded per-occurrence coin
    count: int | None = 1            # max fires (None = unlimited)
    where: dict = field(default_factory=dict)
    params: dict = field(default_factory=dict)
    fired: int = 0                   # fires so far (mutated by the plan)

    def __post_init__(self):
        if self.hook not in HOOKS:
            raise ValueError(f"unknown hook {self.hook!r} (have {HOOKS})")
        if self.at is None and self.every is None and self.prob is None:
            self.at = 1              # default: the first matching occurrence
        if self.at is not None and self.at < 1:
            raise ValueError("at counts occurrences from 1")
        if self.every is not None and self.every < 1:
            raise ValueError("every must be >= 1")
        if self.prob is not None and not (0.0 <= self.prob <= 1.0):
            raise ValueError("prob must be in [0, 1]")

    def matches(self, ctx: dict) -> bool:
        return all(ctx.get(k) == v for k, v in self.where.items())


class ChaosPlan:
    """A seeded set of faults, consulted at hook points.

    Thread-safe in-process; picklable across processes (each copy counts
    its own occurrences — see the module docstring for why that is the
    deterministic choice for worker faults).
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self.faults: list[Fault] = []
        self.fired_log: list[dict] = []
        self._occurrences: dict[str, int] = {}
        self._rngs: dict[str, random.Random] = {}
        self._lock = threading.Lock()

    # -- construction --------------------------------------------------
    def inject(self, hook: str, action: str = "fail", **kw) -> Fault:
        """Schedule a fault; returns it (its ``fired`` counter is live)."""
        fault = Fault(hook, action, **kw)
        with self._lock:
            self.faults.append(fault)
        return fault

    # -- evaluation ----------------------------------------------------
    def _rng_for(self, hook: str) -> random.Random:
        rng = self._rngs.get(hook)
        if rng is None:
            # crc32, not hash(): builtin str hashing is salted per
            # process, which would unseed cross-process determinism.
            rng = random.Random((self.seed << 32) ^ zlib.crc32(hook.encode()))
            self._rngs[hook] = rng
        return rng

    def fires(self, hook: str, **ctx) -> Fault | None:
        """Evaluate one occurrence of ``hook`` under ``ctx``; returns the
        fault that fires (first match wins) or ``None``.

        Every call advances the hook's occurrence counter for matching
        faults, whether or not anything fires — selectors index real
        traffic, not prior fires.
        """
        with self._lock:
            winner: Fault | None = None
            for fault in self.faults:
                if fault.hook != hook or not fault.matches(ctx):
                    continue
                key = f"{hook}#{id(fault)}"
                n = self._occurrences.get(key, 0) + 1
                self._occurrences[key] = n
                if winner is not None:
                    continue             # still count occurrences
                if fault.count is not None and fault.fired >= fault.count:
                    continue
                hit = ((fault.at is not None and n == fault.at)
                       or (fault.every is not None and n % fault.every == 0)
                       or (fault.prob is not None
                           and self._rng_for(hook).random() < fault.prob))
                if hit:
                    fault.fired += 1
                    winner = fault
                    self.fired_log.append(
                        {"hook": hook, "action": fault.action,
                         "occurrence": n, **ctx})
            return winner

    def rng(self, hook: str) -> np.random.Generator:
        """A numpy generator seeded from (plan seed, hook) — for fault
        payloads (e.g. poison noise) that must be reproducible."""
        return np.random.default_rng(
            [self.seed, zlib.crc32(hook.encode())])

    # -- pickling (locks and lazily-built RNGs don't cross processes) --
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state.pop("_lock", None)
        state.pop("_rngs", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()
        self._rngs = {}

    def summary(self) -> dict:
        with self._lock:
            return {"seed": self.seed,
                    "faults": [{"hook": f.hook, "action": f.action,
                                "fired": f.fired} for f in self.faults],
                    "fired": list(self.fired_log)}


# ----------------------------------------------------------------------
# Fault payload helpers (shared by server hooks, tests, and the bench)
# ----------------------------------------------------------------------
def poison_state(state: dict, rng: np.random.Generator,
                 magnitude: float = 25.0) -> dict:
    """A corrupted copy of a weight state dict: large seeded noise on
    every array — the canonical "refinement gone wrong" payload.  The
    magnitude is far outside any healthy update, so a validator that
    misses it is broken, not unlucky."""
    out = {}
    for name, arr in state.items():
        arr = np.asarray(arr)
        out[name] = arr + magnitude * rng.standard_normal(
            arr.shape).astype(arr.dtype, copy=False)
    return out


def corrupt_truth(true_cardinality: float, fault: Fault) -> float:
    """A corrupted feedback label: the observed truth scaled by the
    fault's ``factor`` param (default 1000x — adversarially wrong)."""
    factor = float(fault.params.get("factor", 1000.0))
    return max(1.0, float(true_cardinality) * factor)
