"""Per-column input encoders for autoregressive models.

The paper (Section 4.2) encodes each attribute's dictionary code into a
dense input vector.  Two strategies are implemented:

* :class:`BinaryEncoder` — the paper's default: a ``ceil(log2 |A_i|)``-bit
  binary code, far denser than one-hot.
* :class:`EmbeddingEncoder` — learnable embeddings for columns with large
  numbers of distinct values (Section 4.6).
* :class:`OneHotEncoder` — kept for the encoding ablation.

Every encoder exposes the same three operations so the model and the
differentiable sampler can be agnostic to the choice:

* ``encode_hard(codes, wildcard)`` — numpy path for integer codes, with a
  wildcard indicator slot appended (Naru-style wildcard skipping).
* ``encode_soft(weights)`` — differentiable path for a soft one-hot
  distribution over the domain (used by Gumbel-Softmax sampling); returns
  ``weights @ CodeMatrix`` so gradients flow into the sample.
"""

from __future__ import annotations

import numpy as np

from .modules import Embedding, Module
from .tensor import Tensor, concatenate


def binary_code_matrix(domain_size: int) -> np.ndarray:
    """``[domain_size, bits]`` matrix whose row ``v`` is ``v`` in binary."""
    bits = max(1, int(np.ceil(np.log2(max(domain_size, 2)))))
    codes = np.arange(domain_size, dtype=np.int64)
    matrix = ((codes[:, None] >> np.arange(bits)[None, :]) & 1).astype(np.float32)
    return matrix


class ColumnEncoder(Module):
    """Base: encodes one column's codes into ``width`` input slots.

    The final slot is always the wildcard indicator; value slots are zeroed
    when the wildcard is active so an unqueried column carries no value
    information.
    """

    domain_size: int
    value_width: int

    @property
    def width(self) -> int:
        return self.value_width + 1  # +1 wildcard slot

    def encode_hard(self, codes: np.ndarray,
                    wildcard: np.ndarray | None = None) -> np.ndarray:
        raise NotImplementedError

    def encode_soft(self, weights: Tensor) -> Tensor:
        raise NotImplementedError

    def forward(self, codes: np.ndarray) -> Tensor:  # pragma: no cover
        return Tensor(self.encode_hard(codes))


class BinaryEncoder(ColumnEncoder):
    def __init__(self, domain_size: int):
        self.domain_size = domain_size
        self.code_matrix = binary_code_matrix(domain_size)
        self.value_width = self.code_matrix.shape[1]

    def encode_hard(self, codes: np.ndarray,
                    wildcard: np.ndarray | None = None) -> np.ndarray:
        codes = np.asarray(codes, dtype=np.int64)
        out = np.empty((len(codes), self.width), dtype=np.float32)
        out[:, :self.value_width] = self.code_matrix[codes]
        if wildcard is None:
            out[:, -1] = 0.0
        else:
            wc = np.asarray(wildcard, dtype=bool)
            out[:, -1] = wc
            out[wc, :self.value_width] = 0.0
        return out

    def encode_soft(self, weights: Tensor) -> Tensor:
        """``weights``: differentiable ``[batch, domain]`` soft one-hot."""
        values = weights @ Tensor(self.code_matrix)
        batch = weights.shape[0]
        zeros = Tensor(np.zeros((batch, 1), dtype=np.float32))
        return concatenate([values, zeros], axis=-1)


class OneHotEncoder(ColumnEncoder):
    def __init__(self, domain_size: int):
        self.domain_size = domain_size
        self.value_width = domain_size

    def encode_hard(self, codes: np.ndarray,
                    wildcard: np.ndarray | None = None) -> np.ndarray:
        codes = np.asarray(codes, dtype=np.int64)
        out = np.zeros((len(codes), self.width), dtype=np.float32)
        out[np.arange(len(codes)), codes] = 1.0
        if wildcard is not None:
            wc = np.asarray(wildcard, dtype=bool)
            out[wc, :self.value_width] = 0.0
            out[:, -1] = wc
        return out

    def encode_soft(self, weights: Tensor) -> Tensor:
        batch = weights.shape[0]
        zeros = Tensor(np.zeros((batch, 1), dtype=np.float32))
        return concatenate([weights, zeros], axis=-1)


class EmbeddingEncoder(ColumnEncoder):
    """Learnable embedding lookup (for large-NDV columns, Section 4.6)."""

    def __init__(self, domain_size: int, dim: int, rng: np.random.Generator):
        self.domain_size = domain_size
        self.value_width = dim
        self.table = Embedding(domain_size, dim, rng)

    def encode_hard(self, codes: np.ndarray,
                    wildcard: np.ndarray | None = None) -> np.ndarray:
        codes = np.asarray(codes, dtype=np.int64)
        values = self.table.weight.data[codes]
        out = np.empty((len(codes), self.width), dtype=np.float32)
        out[:, :self.value_width] = values
        if wildcard is None:
            out[:, -1] = 0.0
        else:
            wc = np.asarray(wildcard, dtype=bool)
            out[:, -1] = wc
            out[wc, :self.value_width] = 0.0
        return out

    def encode_hard_tensor(self, codes: np.ndarray) -> Tensor:
        """Differentiable hard lookup (used in the data-loss forward pass so
        that the embedding table itself trains)."""
        values = self.table(codes)
        zeros = Tensor(np.zeros((len(np.asarray(codes)), 1), dtype=np.float32))
        return concatenate([values, zeros], axis=-1)

    def encode_soft(self, weights: Tensor) -> Tensor:
        values = self.table.soft_lookup(weights)
        batch = weights.shape[0]
        zeros = Tensor(np.zeros((batch, 1), dtype=np.float32))
        return concatenate([values, zeros], axis=-1)


def make_encoder(domain_size: int, rng: np.random.Generator,
                 strategy: str = "binary", embedding_threshold: int = 8192,
                 embedding_dim: int = 32) -> ColumnEncoder:
    """Choose an encoder for a column.

    ``binary`` below ``embedding_threshold`` distinct values, learnable
    embeddings above, matching the paper's treatment of large-NDV columns.
    """
    if strategy == "onehot":
        return OneHotEncoder(domain_size)
    if strategy == "embedding" or (
            strategy == "binary" and domain_size > embedding_threshold):
        return EmbeddingEncoder(domain_size, embedding_dim, rng)
    if strategy == "binary":
        return BinaryEncoder(domain_size)
    raise ValueError(f"unknown encoding strategy: {strategy!r}")
