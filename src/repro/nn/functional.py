"""Composite differentiable functions used by the UAE model.

Everything here is built from the primitive ops in :mod:`repro.nn.tensor`, so
gradients flow automatically.  The numerically sensitive pieces (softmax,
log-softmax) subtract a *detached* running maximum, the standard
stabilisation that does not change the mathematical gradient.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, add_constant, where

NEG_INF = -1e9  # Finite stand-in for -inf so softmax stays NaN-free.


def softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shift = logits.data.max(axis=axis, keepdims=True)
    shifted = add_constant(logits, -shift)
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shift = logits.data.max(axis=axis, keepdims=True)
    shifted = add_constant(logits, -shift)
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def log_softmax_np(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax for plain numpy arrays.

    The inference paths (uniform sampling, numpy NLL evaluation) all need
    the same shifted-``exp``/``log`` composition; this is the single shared
    implementation.
    """
    shifted = logits - logits.max(axis=axis, keepdims=True)
    norm = np.exp(shifted).sum(axis=axis, keepdims=True)
    shifted -= np.log(norm)
    return shifted


def softmax_np(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax for plain numpy arrays."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    np.exp(shifted, out=shifted)
    shifted /= shifted.sum(axis=axis, keepdims=True)
    return shifted


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean negative log-likelihood of integer ``targets`` under ``logits``.

    ``logits``: ``[batch, num_classes]``; ``targets``: ``[batch]`` ints.
    """
    logp = log_softmax(logits, axis=-1)
    picked = logp.take_along_last(np.asarray(targets).reshape(-1, 1))
    return -picked.mean()


def nll_from_logprobs(logp: Tensor, targets: np.ndarray) -> Tensor:
    """Mean negative log-likelihood given precomputed log-probs."""
    picked = logp.take_along_last(np.asarray(targets).reshape(-1, 1))
    return -picked.mean()


def sample_gumbel(shape, rng: np.random.Generator, eps: float = 1e-20,
                  out: np.ndarray | None = None) -> np.ndarray:
    """Draw Gumbel(0, 1) noise: ``g = -log(-log(u))``, Eq. 9 of the paper.

    Drawn directly in float32 and transformed in place — noise generation
    sits on the per-step DPS hot path, where the old float64 draw plus
    ``astype`` copy was a measurable share of the query-loss step.  Pass
    a pooled float32 ``out`` buffer to make the draw allocation-free; the
    consumed random stream is identical either way.
    """
    if out is not None:
        u = out
        rng.random(out=u, dtype=np.float32)
    else:
        u = rng.random(shape, dtype=np.float32)
    u += np.float32(eps)
    np.log(u, out=u)
    np.negative(u, out=u)
    u += np.float32(eps)
    np.log(u, out=u)
    np.negative(u, out=u)
    return u


def masked_fill(logits: Tensor, invalid: np.ndarray, value: float = NEG_INF) -> Tensor:
    """Set ``logits`` to ``value`` where ``invalid`` is True (constant mask).

    Used to zero-out probabilities outside a query region (Algorithm 2,
    line 7) without breaking differentiability at the valid positions.
    """
    fill = Tensor(np.full(logits.shape, value, dtype=np.float32))
    return where(~np.asarray(invalid, dtype=bool), logits, fill)


def qerror_loss(est: Tensor, true_sel: np.ndarray, eps: float = 1e-9) -> Tensor:
    """Mean Q-error (Eq. 6) between estimated and true selectivities.

    ``est`` is a differentiable tensor of selectivities in [0, 1];
    ``true_sel`` is the constant ground truth.  Q-error is
    ``max(sel/est, est/sel)`` clamped below at 1; its subgradient is well
    defined everywhere except the kink, which is fine for SGD.
    """
    true = Tensor(np.maximum(np.asarray(true_sel, dtype=np.float32), eps))
    est = est.clamp(low=eps)
    ratio = est / true
    inverse = true / est
    q = ratio.maximum(inverse)
    return q.mean()


def mse_loss(est: Tensor, target: np.ndarray) -> Tensor:
    """Mean squared error against a constant target."""
    diff = est - Tensor(np.asarray(target, dtype=np.float32))
    return (diff * diff).mean()


def msle_loss(est: Tensor, target: np.ndarray, eps: float = 1e-9) -> Tensor:
    """Mean squared log error — a smoother alternative discrepancy."""
    target = np.maximum(np.asarray(target, dtype=np.float32), eps)
    diff = est.clamp(low=eps).log() - Tensor(np.log(target))
    return (diff * diff).mean()
