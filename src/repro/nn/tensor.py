"""Reverse-mode automatic differentiation over numpy arrays.

This module is the substrate that replaces PyTorch in this reproduction.  It
implements a :class:`Tensor` wrapper around ``numpy.ndarray`` with a dynamic
computation graph and reverse-mode gradients, supporting everything the UAE
model needs: broadcasting arithmetic, matrix multiplication, reductions,
softmax-style compositions, gather/scatter indexing, concatenation and
masking.  Gradients flow through every op exactly as they would in a standard
deep-learning framework, which is what makes differentiable progressive
sampling (paper Section 4.3) implementable here.

Design notes
------------
* Graphs are built eagerly; ``Tensor.backward()`` topologically sorts the
  graph and accumulates ``.grad`` arrays on every tensor with
  ``requires_grad=True``.
* Broadcasting follows numpy semantics; gradients are "unbroadcast" (summed
  over broadcast axes) before accumulation.
* ``float32`` is the default dtype, mirroring common deep-learning practice.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

DEFAULT_DTYPE = np.float32


def _as_array(value, dtype=DEFAULT_DTYPE) -> np.ndarray:
    if isinstance(value, np.ndarray):
        if value.dtype != dtype:
            return value.astype(dtype)
        return value
    return np.asarray(value, dtype=dtype)


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` over the axes that numpy broadcasting expanded.

    If ``shape`` was broadcast up to ``grad.shape``, the adjoint of the
    broadcast is a sum over the expanded axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor that records operations for backpropagation."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "name",
                 "version", "_grad_buf")

    def __init__(self, data, requires_grad: bool = False, _prev: Sequence["Tensor"] = (),
                 name: str = ""):
        self.data = _as_array(data)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._backward: Callable[[], None] | None = None
        self._prev: tuple[Tensor, ...] = tuple(_prev)
        self.name = name
        # Monotonic counter bumped whenever ``data`` is mutated in place
        # (optimizer steps, checkpoint loads).  Caches derived from the
        # parameter value — fused masked weights, compiled inference
        # models — compare versions instead of array contents.  Code that
        # mutates ``data`` directly must call :meth:`bump_version`.
        self.version = 0
        # Pooled gradient storage: ``zero_grad`` drops ``grad`` but keeps
        # this buffer, so long-lived tensors (parameters) reuse one array
        # across training steps instead of allocating a fresh gradient
        # every ``backward``.  Consequence: a reference to ``p.grad``
        # taken before ``zero_grad`` is overwritten by the next backward —
        # copy it if it must outlive the step.
        self._grad_buf: np.ndarray | None = None

    def bump_version(self) -> None:
        """Mark ``data`` as mutated so value-derived caches invalidate."""
        self.version += 1

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0])

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph machinery
    # ------------------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            buf = self._grad_buf
            if buf is None or buf.shape != self.data.shape \
                    or buf.dtype != self.data.dtype:
                buf = self._grad_buf = np.empty_like(self.data)
            np.copyto(buf, grad)
            self.grad = buf
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to ones (i.e. ``d self / d self = 1``); for scalar
        losses this is the usual entry point.
        """
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad, dtype=self.data.dtype)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward()

    @staticmethod
    def _make(data: np.ndarray, parents: Iterable["Tensor"],
              backward: Callable[["Tensor"], Callable[[], None]] | None) -> "Tensor":
        parents = tuple(parents)
        requires = any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires, _prev=parents if requires else ())
        if requires and backward is not None:
            out._backward = backward(out)
        return out

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data + other.data

        def make(out: Tensor):
            def backward():
                if self.requires_grad:
                    self._accumulate(_unbroadcast(out.grad, self.shape))
                if other.requires_grad:
                    other._accumulate(_unbroadcast(out.grad, other.shape))
            return backward

        return Tensor._make(data, (self, other), make)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def make(out: Tensor):
            def backward():
                if self.requires_grad:
                    self._accumulate(-out.grad)
            return backward

        return Tensor._make(-self.data, (self,), make)

    def __sub__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data - other.data

        def make(out: Tensor):
            def backward():
                if self.requires_grad:
                    self._accumulate(_unbroadcast(out.grad, self.shape))
                if other.requires_grad:
                    other._accumulate(_unbroadcast(-out.grad, other.shape))
            return backward

        return Tensor._make(data, (self, other), make)

    def __rsub__(self, other) -> "Tensor":
        return Tensor(other) - self

    def __mul__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data * other.data

        def make(out: Tensor):
            def backward():
                if self.requires_grad:
                    self._accumulate(_unbroadcast(out.grad * other.data, self.shape))
                if other.requires_grad:
                    other._accumulate(_unbroadcast(out.grad * self.data, other.shape))
            return backward

        return Tensor._make(data, (self, other), make)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data / other.data

        def make(out: Tensor):
            def backward():
                if self.requires_grad:
                    self._accumulate(_unbroadcast(out.grad / other.data, self.shape))
                if other.requires_grad:
                    grad = -out.grad * self.data / (other.data * other.data)
                    other._accumulate(_unbroadcast(grad, other.shape))
            return backward

        return Tensor._make(data, (self, other), make)

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        data = self.data ** exponent

        def make(out: Tensor):
            def backward():
                if self.requires_grad:
                    self._accumulate(out.grad * exponent * self.data ** (exponent - 1))
            return backward

        return Tensor._make(data, (self,), make)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data @ other.data

        def make(out: Tensor):
            def backward():
                if self.requires_grad:
                    grad = out.grad @ np.swapaxes(other.data, -1, -2)
                    self._accumulate(_unbroadcast(grad, self.shape))
                if other.requires_grad:
                    grad = np.swapaxes(self.data, -1, -2) @ out.grad
                    other._accumulate(_unbroadcast(grad, other.shape))
            return backward

        return Tensor._make(data, (self, other), make)

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def make(out: Tensor):
            def backward():
                if self.requires_grad:
                    self._accumulate(out.grad * out.data)
            return backward

        return Tensor._make(data, (self,), make)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def make(out: Tensor):
            def backward():
                if self.requires_grad:
                    self._accumulate(out.grad / self.data)
            return backward

        return Tensor._make(data, (self,), make)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def abs(self) -> "Tensor":
        data = np.abs(self.data)

        def make(out: Tensor):
            def backward():
                if self.requires_grad:
                    self._accumulate(out.grad * np.sign(self.data))
            return backward

        return Tensor._make(data, (self,), make)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = self.data * mask

        def make(out: Tensor):
            def backward():
                if self.requires_grad:
                    self._accumulate(out.grad * mask)
            return backward

        return Tensor._make(data, (self,), make)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def make(out: Tensor):
            def backward():
                if self.requires_grad:
                    self._accumulate(out.grad * out.data * (1.0 - out.data))
            return backward

        return Tensor._make(data, (self,), make)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def make(out: Tensor):
            def backward():
                if self.requires_grad:
                    self._accumulate(out.grad * (1.0 - out.data * out.data))
            return backward

        return Tensor._make(data, (self,), make)

    def clamp(self, low: float | None = None, high: float | None = None) -> "Tensor":
        data = np.clip(self.data, low, high)
        inside = np.ones_like(self.data, dtype=bool)
        if low is not None:
            inside &= self.data >= low
        if high is not None:
            inside &= self.data <= high

        def make(out: Tensor):
            def backward():
                if self.requires_grad:
                    self._accumulate(out.grad * inside)
            return backward

        return Tensor._make(data, (self,), make)

    def maximum(self, other) -> "Tensor":
        """Elementwise maximum; subgradient splits ties equally."""
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = np.maximum(self.data, other.data)
        self_wins = self.data > other.data
        tie = self.data == other.data

        def make(out: Tensor):
            def backward():
                if self.requires_grad:
                    grad = out.grad * (self_wins + 0.5 * tie)
                    self._accumulate(_unbroadcast(grad, self.shape))
                if other.requires_grad:
                    grad = out.grad * (~self_wins & ~tie) + out.grad * 0.5 * tie
                    other._accumulate(_unbroadcast(grad, other.shape))
            return backward

        return Tensor._make(data, (self, other), make)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def make(out: Tensor):
            def backward():
                if not self.requires_grad:
                    return
                grad = out.grad
                if axis is not None and not keepdims:
                    axes = axis if isinstance(axis, tuple) else (axis,)
                    axes = tuple(a % self.ndim for a in axes)
                    shape = [1 if i in axes else s for i, s in enumerate(self.shape)]
                    grad = grad.reshape(shape)
                # ``_accumulate`` copies (or adds) the broadcast view, so
                # no materialised copy is needed here.
                self._accumulate(np.broadcast_to(grad, self.shape))
            return backward

        return Tensor._make(data, (self,), make)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a % self.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)
        expanded = self.data.max(axis=axis, keepdims=True)
        mask = self.data == expanded
        counts = mask.sum(axis=axis, keepdims=True)

        def make(out: Tensor):
            def backward():
                if not self.requires_grad:
                    return
                grad = out.grad
                if axis is not None and not keepdims:
                    axes = axis if isinstance(axis, tuple) else (axis,)
                    axes = tuple(a % self.ndim for a in axes)
                    shape = [1 if i in axes else s for i, s in enumerate(self.shape)]
                    grad = grad.reshape(shape)
                self._accumulate(mask * grad / counts)
            return backward

        return Tensor._make(data, (self,), make)

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)

        def make(out: Tensor):
            def backward():
                if self.requires_grad:
                    self._accumulate(out.grad.reshape(self.shape))
            return backward

        return Tensor._make(data, (self,), make)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def make(out: Tensor):
            def backward():
                if self.requires_grad:
                    self._accumulate(out.grad.transpose(inverse))
            return backward

        return Tensor._make(data, (self,), make)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def make(out: Tensor):
            def backward():
                if self.requires_grad:
                    grad = np.zeros_like(self.data)
                    np.add.at(grad, index, out.grad)
                    self._accumulate(grad)
            return backward

        return Tensor._make(data, (self,), make)

    def gather_rows(self, row_index: np.ndarray) -> "Tensor":
        """Select rows ``self[row_index]`` (first axis), differentiable."""
        return self[np.asarray(row_index)]

    def take_along_last(self, index: np.ndarray) -> "Tensor":
        """``np.take_along_axis`` on the last axis, differentiable.

        ``index`` has the same shape as ``self`` except the last axis may be
        any length.
        """
        index = np.asarray(index)
        data = np.take_along_axis(self.data, index, axis=-1)

        def make(out: Tensor):
            def backward():
                if self.requires_grad:
                    # add.at on a flattened view accumulates correctly even
                    # when ``index`` repeats a position.
                    grad = np.zeros_like(self.data)
                    flat_rows = np.arange(int(np.prod(self.shape[:-1])))
                    cols = index.reshape(len(flat_rows), -1)
                    vals = out.grad.reshape(len(flat_rows), -1)
                    np.add.at(grad.reshape(len(flat_rows), -1),
                              (flat_rows[:, None], cols), vals)
                    self._accumulate(grad)
            return backward

        return Tensor._make(data, (self,), make)


# ----------------------------------------------------------------------
# Free functions
# ----------------------------------------------------------------------
def tensor(data, requires_grad: bool = False) -> Tensor:
    """Convenience constructor mirroring ``torch.tensor``."""
    return Tensor(data, requires_grad=requires_grad)


def zeros(shape, requires_grad: bool = False) -> Tensor:
    """All-zero tensor."""
    return Tensor(np.zeros(shape, dtype=DEFAULT_DTYPE), requires_grad=requires_grad)


def ones(shape, requires_grad: bool = False) -> Tensor:
    """All-one tensor."""
    return Tensor(np.ones(shape, dtype=DEFAULT_DTYPE), requires_grad=requires_grad)


def concatenate(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Differentiable concatenation along ``axis``."""
    arrays = [t.data for t in tensors]
    data = np.concatenate(arrays, axis=axis)
    sizes = [a.shape[axis] for a in arrays]
    offsets = np.cumsum([0] + sizes)

    def make(out: Tensor):
        def backward():
            for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if t.requires_grad:
                    slicer = [slice(None)] * out.grad.ndim
                    slicer[axis] = slice(start, stop)
                    t._accumulate(out.grad[tuple(slicer)])
        return backward

    return Tensor._make(data, tensors, make)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable stack along a new axis."""
    data = np.stack([t.data for t in tensors], axis=axis)

    def make(out: Tensor):
        def backward():
            grads = np.split(out.grad, len(tensors), axis=axis)
            for t, g in zip(tensors, grads):
                if t.requires_grad:
                    t._accumulate(np.squeeze(g, axis=axis))
        return backward

    return Tensor._make(data, tensors, make)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable select: gradient routes to the chosen branch."""
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    condition = np.asarray(condition, dtype=bool)
    data = np.where(condition, a.data, b.data)

    def make(out: Tensor):
        def backward():
            if a.requires_grad:
                a._accumulate(_unbroadcast(out.grad * condition, a.shape))
            if b.requires_grad:
                b._accumulate(_unbroadcast(out.grad * ~condition, b.shape))
        return backward

    return Tensor._make(data, (a, b), make)


def add_constant(t: Tensor, constant: np.ndarray) -> Tensor:
    """Add a non-differentiable constant array (e.g. -inf masks, Gumbel noise)."""
    data = t.data + constant

    def make(out: Tensor):
        def backward():
            if t.requires_grad:
                t._accumulate(_unbroadcast(out.grad, t.shape))
        return backward

    return Tensor._make(data, (t,), make)
