"""MADE and ResMADE: masked autoregressive networks over table columns.

The model factorizes ``P(a_1, ..., a_n) = prod_i P(a_i | a_<i)`` (paper
Eq. 1) with a left-to-right column order.  Masks enforce that the logits for
column ``i`` depend only on the *input slots* of columns ``< i``:

* every input slot of column ``c`` carries degree ``c``;
* hidden units carry degrees cycling over ``0 .. n-2``;
* a connection ``u -> v`` is allowed iff ``deg(v) >= deg(u)`` between
  input/hidden layers, and an output unit for column ``c`` connects to
  hidden units with degree ``< c``.

Column 0's logits therefore depend on nothing but the bias — exactly the
unconditional marginal ``P(A_1)``.

:class:`ResMADE` (Nash & Durkan 2019, the architecture the paper uses) wraps
the masked layers in residual blocks.
"""

from __future__ import annotations

import numpy as np

from .encoders import ColumnEncoder, EmbeddingEncoder, make_encoder
from .modules import MaskedLinear, Module
from .tensor import Tensor, concatenate


def input_degrees(widths: list[int]) -> np.ndarray:
    """Degree (owning column index) of every input slot."""
    return np.concatenate([np.full(w, c, dtype=np.int64)
                           for c, w in enumerate(widths)])


def hidden_degrees(num_units: int, num_cols: int) -> np.ndarray:
    """Hidden degrees over ``0..num_cols-2``: even coverage, **sorted**.

    The multiset of degrees is the same balanced assignment MADE uses
    (each degree appears ``num_units / (num_cols - 1)`` times, up to
    rounding), but laid out in ascending order instead of cycling.  Any
    assignment with these counts yields an equivalent architecture — the
    masks only compare degrees — and the sorted layout makes the units a
    position may depend on a contiguous *prefix*: everything relevant to
    sampling position ``p`` lives in hidden units ``[0, k)`` with
    ``k = count(degree < p)``.  The fused training kernels
    (:mod:`repro.train`) exploit this to shrink every per-step GEMM to
    the prefix that can actually carry gradient.
    """
    top = max(num_cols - 1, 1)
    return np.sort(np.arange(num_units, dtype=np.int64) % top)


def output_degrees(domain_sizes: list[int]) -> np.ndarray:
    """Degree of every output logit: the column it predicts."""
    return np.concatenate([np.full(k, c, dtype=np.int64)
                           for c, k in enumerate(domain_sizes)])


def mask_between(in_deg: np.ndarray, out_deg: np.ndarray,
                 is_output: bool = False) -> np.ndarray:
    """Connectivity mask ``[len(out_deg), len(in_deg)]``.

    Hidden/input rule: ``out >= in``; output rule: ``out > in`` (an output
    for column c may only see strictly earlier columns).
    """
    if is_output:
        allowed = out_deg[:, None] > in_deg[None, :]
    else:
        allowed = out_deg[:, None] >= in_deg[None, :]
    return allowed.astype(np.float32)


class ResidualBlock(Module):
    """ReLU -> MaskedLinear -> ReLU -> MaskedLinear with a skip connection."""

    def __init__(self, dim: int, degrees: np.ndarray, rng: np.random.Generator):
        self.fc1 = MaskedLinear(dim, dim, rng)
        self.fc2 = MaskedLinear(dim, dim, rng)
        mask = mask_between(degrees, degrees)
        self.fc1.set_mask(mask)
        self.fc2.set_mask(mask)

    def forward(self, x: Tensor) -> Tensor:
        h = self.fc1(x.relu())
        h = self.fc2(h.relu())
        return x + h


class ResMADE(Module):
    """Residual MADE over a list of column domain sizes.

    Parameters
    ----------
    domain_sizes:
        Distinct-value counts per (model) column, in autoregressive order.
    hidden:
        Width of the hidden layers (paper: 128).
    num_blocks:
        Number of residual blocks (paper: 2 hidden layers ~ 1 block + io).
    encoding:
        ``binary`` (paper default), ``onehot`` or ``embedding``.
    """

    def __init__(self, domain_sizes: list[int], hidden: int = 128,
                 num_blocks: int = 2, rng: np.random.Generator | None = None,
                 encoding: str = "binary", embedding_threshold: int = 8192,
                 embedding_dim: int = 32, order: list[int] | None = None):
        if rng is None:
            rng = np.random.default_rng(0)
        if not domain_sizes:
            raise ValueError("need at least one column")
        self.domain_sizes = list(int(d) for d in domain_sizes)
        self.num_cols = len(domain_sizes)
        # Autoregressive order: ``order[p]`` is the column sampled at
        # position p.  The paper uses left-to-right (natural); Naru/MADE
        # explore alternatives, exposed here for the ordering ablation.
        if order is None:
            order = list(range(self.num_cols))
        if sorted(order) != list(range(self.num_cols)):
            raise ValueError(f"order must be a permutation of columns, "
                             f"got {order}")
        self.order = list(order)
        self.position = {col: pos for pos, col in enumerate(self.order)}
        self.encoders: list[ColumnEncoder] = [
            make_encoder(d, rng, strategy=encoding,
                         embedding_threshold=embedding_threshold,
                         embedding_dim=embedding_dim)
            for d in self.domain_sizes]
        widths = [e.width for e in self.encoders]
        self.input_width = int(sum(widths))
        self.total_logits = int(sum(self.domain_sizes))

        pos_of = [self.position[c] for c in range(self.num_cols)]
        in_deg = np.concatenate([np.full(w, pos_of[c], dtype=np.int64)
                                 for c, w in enumerate(widths)])
        hid_deg = hidden_degrees(hidden, self.num_cols)
        out_deg = np.concatenate([np.full(k, pos_of[c], dtype=np.int64)
                                  for c, k in enumerate(self.domain_sizes)])

        self.input_layer = MaskedLinear(self.input_width, hidden, rng)
        self.input_layer.set_mask(mask_between(in_deg, hid_deg))
        self.blocks = [ResidualBlock(hidden, hid_deg, rng)
                       for _ in range(num_blocks)]
        self.output_layer = MaskedLinear(hidden, self.total_logits, rng)
        self.output_layer.set_mask(mask_between(hid_deg, out_deg, is_output=True))
        # ``hidden_prefix[p]``: hidden units with degree < p — because
        # degrees are sorted, the logits of the column at position ``p``
        # depend exactly on hidden units ``[0, hidden_prefix[p])``, so
        # per-position forwards/backwards can run on that prefix alone.
        self.hidden_prefix = np.searchsorted(hid_deg, np.arange(self.num_cols),
                                             side="left").astype(np.int64)

        # Slices into the input vector / logit vector per column.
        self.input_slices: list[slice] = []
        start = 0
        for w in widths:
            self.input_slices.append(slice(start, start + w))
            start += w
        self.logit_slices: list[slice] = []
        start = 0
        for k in self.domain_sizes:
            self.logit_slices.append(slice(start, start + k))
            start += k

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode_tuples(self, codes: np.ndarray,
                      wildcard: np.ndarray | None = None) -> np.ndarray:
        """Hard-encode integer code rows ``[batch, num_cols]`` (numpy path)."""
        codes = np.asarray(codes)
        parts = []
        for c, enc in enumerate(self.encoders):
            wc = None if wildcard is None else wildcard[:, c]
            parts.append(enc.encode_hard(codes[:, c], wc))
        return np.concatenate(parts, axis=1)

    def encode_tuples_tensor(self, codes: np.ndarray,
                             wildcard: np.ndarray | None = None) -> Tensor:
        """Differentiable encode: embedding tables join the graph."""
        codes = np.asarray(codes)
        parts: list[Tensor] = []
        for c, enc in enumerate(self.encoders):
            wc = None if wildcard is None else wildcard[:, c]
            if isinstance(enc, EmbeddingEncoder) and wc is None:
                parts.append(enc.encode_hard_tensor(codes[:, c]))
            else:
                parts.append(Tensor(enc.encode_hard(codes[:, c], wc)))
        return concatenate(parts, axis=-1)

    # ------------------------------------------------------------------
    # Forward passes
    # ------------------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:
        """Encoded input ``[batch, input_width]`` -> all logits."""
        h = self.input_layer(x)
        for block in self.blocks:
            h = block(h)
        return self.output_layer(h.relu())

    def forward_codes(self, codes: np.ndarray,
                      wildcard: np.ndarray | None = None) -> Tensor:
        return self.forward(self.encode_tuples_tensor(codes, wildcard))

    def logits_for(self, all_logits: Tensor, col: int) -> Tensor:
        return all_logits[:, self.logit_slices[col]]

    def logits_for_np(self, all_logits: np.ndarray, col: int) -> np.ndarray:
        return all_logits[:, self.logit_slices[col]]

    # ------------------------------------------------------------------
    # Column-sliced paths: progressive sampling at step ``i`` only needs
    # the logits of column ``i``, and the output projection dominates the
    # cost, so slicing it is a large win.
    # ------------------------------------------------------------------
    def hidden_tensor(self, x: Tensor) -> Tensor:
        """Differentiable trunk: encoded input -> pre-ReLU final hidden."""
        h = self.input_layer(x)
        for block in self.blocks:
            h = block(h)
        return h

    def column_logits_from_hidden(self, h: Tensor, col: int) -> Tensor:
        """Project hidden state to just column ``col``'s logits."""
        return self.output_layer.forward_rows(h.relu(), self.logit_slices[col])

    def hidden_np(self, x: np.ndarray) -> np.ndarray:
        h = x @ self.input_layer.fused_weight_t()
        h += self.input_layer.bias.data
        for block in self.blocks:
            a = np.maximum(h, 0.0)
            a = a @ block.fc1.fused_weight_t() + block.fc1.bias.data
            np.maximum(a, 0.0, out=a)
            a = a @ block.fc2.fused_weight_t() + block.fc2.bias.data
            h = h + a
        return h

    def column_logits_np(self, h: np.ndarray, col: int) -> np.ndarray:
        sl = self.logit_slices[col]
        w = self.output_layer.fused_weight()[sl]
        return np.maximum(h, 0.0) @ w.T + self.output_layer.bias.data[sl]

    # ------------------------------------------------------------------
    # Fast inference path (no gradients)
    # ------------------------------------------------------------------
    def forward_np(self, x: np.ndarray) -> np.ndarray:
        """Pure-numpy forward for inference-time progressive sampling."""
        h = np.maximum(self.hidden_np(x), 0.0)
        return h @ self.output_layer.fused_weight_t() \
            + self.output_layer.bias.data

    def nll_np(self, codes: np.ndarray) -> np.ndarray:
        """Per-row negative log-likelihood (numpy, for evaluation)."""
        from .functional import log_softmax_np
        x = self.encode_tuples(codes)
        logits = self.forward_np(x)
        total = np.zeros(len(codes), dtype=np.float64)
        for c in range(self.num_cols):
            logp = log_softmax_np(self.logits_for_np(logits, c))
            total -= logp[np.arange(len(codes)), codes[:, c]]
        return total
