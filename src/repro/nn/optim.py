"""Optimisers: SGD (with momentum) and Adam."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor


class Optimizer:
    """Base optimizer: holds parameters and clears gradients."""

    def __init__(self, params, lr: float):
        self.params: list[Tensor] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and decay."""

    def __init__(self, params, lr: float = 1e-2, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                grad = v
            p.data -= self.lr * grad
            p.bump_version()


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba, 2015)."""

    def __init__(self, params, lr: float = 1e-3, betas=(0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0,
                 grad_clip: float | None = None):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.grad_clip = grad_clip
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.grad_clip is not None:
                norm = np.linalg.norm(grad)
                if norm > self.grad_clip:
                    grad = grad * (self.grad_clip / (norm + 1e-12))
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
            p.bump_version()
