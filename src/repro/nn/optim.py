"""Optimisers: SGD (with momentum) and Adam.

Both optimizers update parameters **in place** through preallocated
per-parameter scratch buffers — a training step allocates no fresh arrays
— and expose ``state_dict``/``load_state_dict`` so callers (e.g.
``UAE.fit`` early stopping) can snapshot and restore moments alongside
model weights.

Gradient clipping (Adam's ``grad_clip``) scales by the **global** L2 norm
across every parameter, the standard ``clip_grad_norm_`` semantics: all
gradients shrink by one common factor, preserving the relative step sizes
between layers.  (An earlier revision clipped each parameter's gradient
by its own norm, which silently rebalanced effective learning rates
between layers whenever any single tensor exceeded the threshold.)
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor


class Optimizer:
    """Base optimizer: holds parameters and clears gradients."""

    def __init__(self, params, lr: float):
        self.params: list[Tensor] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def state_dict(self) -> dict:  # pragma: no cover - overridden
        return {}

    def load_state_dict(self, state: dict) -> None:  # pragma: no cover
        pass

    def _global_grad_norm(self) -> float:
        """L2 norm of the concatenation of every parameter gradient."""
        total = 0.0
        for p in self.params:
            g = p.grad
            if g is not None:
                flat = g.ravel()
                total += float(np.dot(flat, flat))
        return float(np.sqrt(total))

    def _clip_gradients(self, max_norm: float) -> None:
        """Scale all gradients in place so their global norm <= max_norm."""
        norm = self._global_grad_norm()
        if norm > max_norm:
            scale = max_norm / (norm + 1e-12)
            for p in self.params:
                if p.grad is not None:
                    p.grad *= scale


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and decay."""

    def __init__(self, params, lr: float = 1e-2, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]
        self._scratch = [np.empty_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v, s in zip(self.params, self._velocity, self._scratch):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                np.multiply(p.data, self.weight_decay, out=s)
                s += grad
                grad = s
            if self.momentum:
                v *= self.momentum
                v += grad
                grad = v
            np.multiply(grad, self.lr, out=s)
            p.data -= s
            p.bump_version()

    def state_dict(self) -> dict:
        return {"velocity": [v.copy() for v in self._velocity]}

    def load_state_dict(self, state: dict) -> None:
        for v, src in zip(self._velocity, state["velocity"]):
            np.copyto(v, src)


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba, 2015)."""

    def __init__(self, params, lr: float = 1e-3, betas=(0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0,
                 grad_clip: float | None = None):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.grad_clip = grad_clip
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._scratch = [np.empty_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        if self.grad_clip is not None:
            self._clip_gradients(self.grad_clip)
        b1, b2 = self.beta1, self.beta2
        # Fold the bias corrections into scalars: the update
        # ``lr * (m / bias1) / (sqrt(v / bias2) + eps)`` equals
        # ``(lr / bias1) * m / (sqrt(v) / sqrt(bias2) + eps)``.
        step_scale = self.lr / (1.0 - b1 ** self._t)
        denom_scale = 1.0 / np.sqrt(1.0 - b2 ** self._t)
        for p, m, v, s in zip(self.params, self._m, self._v, self._scratch):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                # Fold decay into the gradient buffer itself (it is
                # cleared on the next ``zero_grad`` anyway) so one scratch
                # array suffices for the whole update.
                np.multiply(p.data, self.weight_decay, out=s)
                grad += s
            np.multiply(grad, 1.0 - b1, out=s)
            m *= b1
            m += s
            np.multiply(grad, grad, out=s)
            s *= 1.0 - b2
            v *= b2
            v += s
            np.sqrt(v, out=s)
            s *= denom_scale
            s += self.eps
            np.divide(m, s, out=s)
            s *= step_scale
            p.data -= s
            p.bump_version()

    def state_dict(self) -> dict:
        """Snapshot of moments + step counter (copies, detached)."""
        return {"t": self._t,
                "m": [m.copy() for m in self._m],
                "v": [v.copy() for v in self._v]}

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot taken by :meth:`state_dict` in place."""
        self._t = int(state["t"])
        for m, src in zip(self._m, state["m"]):
            np.copyto(m, src)
        for v, src in zip(self._v, state["v"]):
            np.copyto(v, src)
