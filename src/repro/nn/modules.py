"""Neural-network module system: parameters, layers, containers.

A tiny analogue of ``torch.nn`` sufficient for ResMADE and MSCN.  Modules own
:class:`~repro.nn.tensor.Tensor` parameters with ``requires_grad=True``;
``Module.parameters()`` walks the tree so optimisers can update everything.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from . import init
from .tensor import Tensor


class Module:
    """Base class; subclasses register parameters/submodules as attributes."""

    def parameters(self) -> Iterator[Tensor]:
        seen: set[int] = set()
        for value in self.__dict__.values():
            if isinstance(value, Tensor) and value.requires_grad:
                if id(value) not in seen:
                    seen.add(id(value))
                    yield value
            elif isinstance(value, Module):
                yield from value.parameters()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.parameters()
                    elif isinstance(item, Tensor) and item.requires_grad:
                        if id(item) not in seen:
                            seen.add(id(item))
                            yield item

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def size_bytes(self) -> int:
        """Model footprint: 4 bytes per float32 parameter."""
        return 4 * self.num_parameters()

    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat name → array mapping, for checkpoint save/restore."""
        out: dict[str, np.ndarray] = {}
        self._collect_state("", out)
        return out

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = {}
        self._collect_state("", own)
        missing = set(own) - set(state)
        if missing:
            raise KeyError(f"state dict missing keys: {sorted(missing)}")
        for key, tensor_ref in self._iter_named_params(""):
            tensor_ref.data = np.array(state[key], dtype=np.float32)
            tensor_ref.bump_version()

    def _collect_state(self, prefix: str, out: dict[str, np.ndarray]) -> None:
        for key, tensor_ref in self._iter_named_params(prefix):
            out[key] = tensor_ref.data.copy()

    def _iter_named_params(self, prefix: str):
        for name, value in self.__dict__.items():
            path = f"{prefix}{name}"
            if isinstance(value, Tensor) and value.requires_grad:
                yield path, value
            elif isinstance(value, Module):
                yield from value._iter_named_params(path + ".")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item._iter_named_params(f"{path}.{i}.")
                    elif isinstance(item, Tensor) and item.requires_grad:
                        yield f"{path}.{i}", item

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


class Linear(Module):
    """Affine layer ``y = x W^T + b``."""

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator, bias: bool = True):
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(
            init.kaiming_uniform((out_features, in_features), in_features, rng),
            requires_grad=True)
        self.bias = (Tensor(init.zeros((out_features,)), requires_grad=True)
                     if bias else None)

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out


class MaskedLinear(Module):
    """Linear layer whose weight is elementwise-multiplied by a fixed mask.

    The mask enforces MADE's autoregressive property: entry ``[o, i]`` is 1
    iff output unit ``o`` may depend on input unit ``i``.

    The fused product ``weight * mask`` is cached (together with its
    transpose) and invalidated through the weight tensor's version counter,
    which optimizer steps and checkpoint loads bump — so neither the
    training forward nor the numpy inference paths pay the elementwise
    multiply on every call.  This cache is the single source of fused
    weights for every fast path: the autograd forward below, the
    inference snapshot (:class:`repro.infer.CompiledModel`), and the
    hand-written training kernels (:mod:`repro.train`).
    """

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator, bias: bool = True):
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(
            init.kaiming_uniform((out_features, in_features), in_features, rng),
            requires_grad=True)
        self.bias = (Tensor(init.zeros((out_features,)), requires_grad=True)
                     if bias else None)
        self.mask = np.ones((out_features, in_features), dtype=np.float32)
        self._fused: np.ndarray | None = None
        self._fused_t: np.ndarray | None = None
        self._fused_version = -1

    def set_mask(self, mask: np.ndarray) -> None:
        if mask.shape != (self.out_features, self.in_features):
            raise ValueError(
                f"mask shape {mask.shape} != "
                f"({self.out_features}, {self.in_features})")
        self.mask = mask.astype(np.float32)
        self._fused = None
        self._fused_version = -1

    def _refresh_fused(self) -> None:
        if self._fused is None or self._fused_version != self.weight.version:
            self._fused = np.ascontiguousarray(self.weight.data * self.mask)
            self._fused_t = np.ascontiguousarray(self._fused.T)
            self._fused_version = self.weight.version

    def fused_weight(self) -> np.ndarray:
        """``weight.data * mask`` — ``[out, in]``, contiguous, cached."""
        self._refresh_fused()
        return self._fused

    def fused_weight_t(self) -> np.ndarray:
        """Transposed fused weight — ``[in, out]``, contiguous, cached."""
        self._refresh_fused()
        return self._fused_t

    def forward(self, x: Tensor) -> Tensor:
        return self.forward_rows(x, slice(None))

    def forward_rows(self, x: Tensor, rows: slice) -> Tensor:
        """Affine map restricted to output units ``rows``.

        Forward uses the cached fused weight; backward applies the mask to
        the weight gradient directly — identical math to multiplying
        ``weight * mask`` inside the graph, without the per-call product.
        The fast closure assumes the usual ``[batch, features]`` input;
        higher-rank inputs take the explicit graph (general broadcasting
        gradients).
        """
        if x.ndim != 2:
            masked = (self.weight * Tensor(self.mask))[rows]
            out = x @ masked.T
            if self.bias is not None:
                out = out + self.bias[rows]
            return out
        fused = self.fused_weight()[rows]
        data = x.data @ fused.T
        bias = self.bias
        if bias is not None:
            data = data + bias.data[rows]
        layer, weight = self, self.weight
        parents = (x, weight) if bias is None else (x, weight, bias)

        def make(out: Tensor):
            def backward():
                if x.requires_grad:
                    x._accumulate(out.grad @ fused)
                if weight.requires_grad:
                    rows_grad = (out.grad.T @ x.data) * layer.mask[rows]
                    if rows == slice(None):
                        grad_w = rows_grad
                    else:
                        grad_w = np.zeros_like(weight.data)
                        grad_w[rows] = rows_grad
                    weight._accumulate(grad_w)
                if bias is not None and bias.requires_grad:
                    rows_grad = out.grad.sum(axis=0)
                    if rows == slice(None):
                        grad_b = rows_grad
                    else:
                        grad_b = np.zeros_like(bias.data)
                        grad_b[rows] = rows_grad
                    bias._accumulate(grad_b)
            return backward

        return Tensor._make(data, parents, make)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Sequential(Module):
    def __init__(self, *layers: Module):
        self.layers = list(layers)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x


class Embedding(Module):
    """Lookup table mapping integer codes to dense vectors.

    Used for columns with large numbers of distinct values (paper
    Section 4.6, "Handling Columns with Large NDVs").
    """

    def __init__(self, num_embeddings: int, dim: int, rng: np.random.Generator):
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Tensor(init.normal((num_embeddings, dim), 0.1, rng),
                             requires_grad=True)

    def forward(self, codes: np.ndarray) -> Tensor:
        return self.weight.gather_rows(np.asarray(codes, dtype=np.int64))

    def soft_lookup(self, weights: Tensor) -> Tensor:
        """Differentiable lookup with a soft one-hot ``weights`` matrix.

        ``weights``: ``[batch, num_embeddings]`` — e.g. a Gumbel-Softmax
        sample — returns ``weights @ table``.
        """
        return weights @ self.weight


class LayerNorm(Module):
    """Layer normalisation over the last axis."""

    def __init__(self, dim: int, eps: float = 1e-5):
        self.dim = dim
        self.eps = eps
        self.gamma = Tensor(np.ones(dim, dtype=np.float32), requires_grad=True)
        self.beta = Tensor(np.zeros(dim, dtype=np.float32), requires_grad=True)

    def forward(self, x: Tensor) -> Tensor:
        mu = x.mean(axis=-1, keepdims=True)
        centered = x - mu
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered / (var + self.eps).sqrt()
        return normed * self.gamma + self.beta


class Dropout(Module):
    """Inverted dropout; active only when ``training`` is True."""

    def __init__(self, p: float, rng: np.random.Generator):
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self.rng = rng
        self.training = True

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = (self.rng.random(x.shape) >= self.p).astype(np.float32)
        return x * Tensor(keep / (1.0 - self.p))
