"""From-scratch neural-network substrate (autodiff, layers, MADE, optim).

This package replaces PyTorch for the reproduction: reverse-mode autodiff
over numpy (:mod:`repro.nn.tensor`), a module system (:mod:`repro.nn.modules`),
masked autoregressive networks (:mod:`repro.nn.made`), per-column encoders
(:mod:`repro.nn.encoders`) and optimisers (:mod:`repro.nn.optim`).
"""

from .tensor import Tensor, add_constant, concatenate, ones, stack, tensor, where, zeros
from .functional import (cross_entropy, log_softmax, masked_fill, mse_loss,
                         msle_loss, qerror_loss, sample_gumbel, softmax)
from .modules import (Dropout, Embedding, LayerNorm, Linear, MaskedLinear,
                      Module, ReLU, Sequential)
from .made import ResMADE
from .optim import SGD, Adam

__all__ = [
    "Tensor", "tensor", "zeros", "ones", "concatenate", "stack", "where",
    "add_constant",
    "softmax", "log_softmax", "cross_entropy", "masked_fill", "qerror_loss",
    "mse_loss", "msle_loss", "sample_gumbel",
    "Module", "Linear", "MaskedLinear", "ReLU", "Sequential", "Embedding",
    "LayerNorm", "Dropout",
    "ResMADE",
    "SGD", "Adam",
]
