"""Weight initialisers for the nn substrate."""

from __future__ import annotations

import numpy as np


def kaiming_uniform(shape: tuple, fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform init, the PyTorch default for Linear layers."""
    bound = np.sqrt(1.0 / max(fan_in, 1)) * np.sqrt(3.0)
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_uniform(shape: tuple, fan_in: int, fan_out: int,
                   rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform init."""
    bound = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def zeros(shape: tuple) -> np.ndarray:
    """All-zero float32 parameter array (bias init)."""
    return np.zeros(shape, dtype=np.float32)


def normal(shape: tuple, std: float, rng: np.random.Generator) -> np.ndarray:
    """Gaussian init with the given standard deviation."""
    return (rng.standard_normal(shape) * std).astype(np.float32)
