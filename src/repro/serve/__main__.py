"""CLI: ``python -m repro.serve [--profile ci|small|bench|paper]
[--datasets NAME ...]``.

Default: the single-table online-serving loop — train a data-only UAE,
serve steady traffic through the micro-batching service, drift on a
shifted workload, refine from feedback in the background, hot-swap,
serve again — and print the per-phase report.  This is the same
scenario ``python -m repro.bench serving`` benchmarks; the bench
variant additionally writes the ``BENCH_serve.json`` artifact.

With ``--datasets`` naming one or more tables, the multi-table
front-door scenario runs instead: one namespace per dataset plus the
synthetic IMDB join schema behind a single ``RoutedEstimateService``,
checking mixed-stream routing parity and the namespace-isolation
invariant (a hot-swap in one namespace leaves every other namespace's
per-version seeded answers bit-identical).

With ``--workers N``, the scale-out cluster scenario runs instead:
the profile's scale datasets served by 1 and then N shared-nothing
worker processes behind a ``ClusterEstimateService``, checking
bit-parity with single-process serving, zero-copy swap propagation,
and typed load shedding under overload.

With ``--chaos FAULT``, the deterministic chaos-healing scenario runs
instead (see :func:`repro.bench.serve_bench.run_chaos`): a seeded fault
plan injects FAULT into the serving stack and the run exits non-zero
unless the stack *heals* — shadow validation rejects poisoned
refinements, the q-error tripwire auto-rolls-back a bad publish, the
worker supervisor restarts a SIGKILLed worker bit-identically.
``--workers N`` sizes the cluster for the worker faults;
``python -m repro.serve --workers 2 --chaos kill-worker --smoke`` is
the CI chaos smoke step.

With ``--http PORT``, the network front door runs instead: train the
profile's DMV model once, then serve the JSON-over-HTTP protocol
(``POST /estimate``, ``POST /estimate_batch``, ``POST /feedback``,
``GET /status``, ``GET /healthz``) until Ctrl-C.  ``PORT`` 0 binds an
ephemeral port (printed once bound).  ``--http 0 --smoke`` instead
starts the door on an ephemeral port, drives one request through every
endpoint and every typed error path (400/404/413/503/504) over a real
socket, and exits non-zero on any protocol violation — the CI HTTP
smoke step runs exactly this.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace

from ..bench.profiles import PROFILES
from ..bench.reporting import format_table
from ..bench.serve_bench import (run_chaos, run_multi_table, run_scale_out,
                                 run_serving)
from ..data.datasets import DATASETS

#: --chaos FAULT -> which half of the chaos scenario exercises it.
CHAOS_FAULTS = {
    "kill-worker": "cluster",
    "slow-worker": "cluster",
    "poison-refinement": "single",
    "drop-publish": "single",
    "corrupt-feedback": "single",
}


# ----------------------------------------------------------------------
# HTTP front door (--http / --smoke)
# ----------------------------------------------------------------------
def _sql_literal(value) -> str:
    if hasattr(value, "item"):              # numpy scalar -> python
        value = value.item()
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    return repr(value)


def _render_sql(query) -> str:
    """Render a Query back to the WHERE-fragment grammar the parser
    accepts, so the smoke test exercises real SQL over the wire."""
    parts = []
    for pred in query.predicates:
        if pred.op == "IN":
            vals = ", ".join(_sql_literal(v) for v in pred.value)
            parts.append(f"{pred.column} IN ({vals})")
        else:
            parts.append(f"{pred.column} {pred.op} "
                         f"{_sql_literal(pred.value)}")
    return " AND ".join(parts)


def _build_http_front(profile):
    """Train the profile's DMV model and wrap it in a UAEServer."""
    import numpy as np

    from ..core import UAE
    from ..data import load
    from ..workload import generate_inworkload
    from .server import UAEServer

    table = load("dmv", rows=profile.dataset_rows("dmv"), seed=0)
    uae = UAE(table, hidden=profile.hidden,
              num_blocks=profile.num_blocks,
              est_samples=profile.est_samples,
              dps_samples=max(4, profile.dps_samples),
              batch_size=profile.batch_size,
              query_batch_size=profile.query_batch_size, seed=0)
    uae.fit(epochs=max(1, profile.epochs // 3), mode="data")
    workload = generate_inworkload(table, 32, np.random.default_rng(5))
    server = UAEServer(uae, max_batch=32, max_wait_ms=2.0, seed=7)
    return server, [_render_sql(q) for q in workload.queries]


def _http_smoke(door, sqls: list[str]) -> list[str]:
    """Drive every endpoint and typed error path over real sockets;
    returns the list of failed checks (empty = pass)."""
    import asyncio

    from .net import AsyncHTTPClient

    failures: list[str] = []

    def check(name: str, ok: bool, detail="") -> None:
        print(f"  {'ok  ' if ok else 'FAIL'} {name}"
              + (f" ({detail})" if detail and not ok else ""))
        if not ok:
            failures.append(name)

    async def run() -> None:
        client = AsyncHTTPClient(door.host, door.port)
        try:
            status, body, _ = await client.get("/healthz")
            check("healthz 200", status == 200 and body.get("ok") is True,
                  f"status={status}")

            status, body, _ = await client.post("/estimate",
                                                {"sql": sqls[0]})
            check("estimate 200",
                  status == 200 and body.get("estimate", -1) >= 0
                  and "version" in body, f"status={status} body={body}")

            batch = {"sql": sqls[:3], "seed": 123, "use_cache": False}
            _, first, _ = await client.post("/estimate_batch", batch)
            _, second, _ = await client.post("/estimate_batch", batch)
            check("seeded batch bit-identical",
                  first.get("estimates") == second.get("estimates")
                  and len(first.get("estimates", [])) == 3)

            status, body, _ = await client.post(
                "/feedback", {"sql": sqls[0], "true_cardinality": 100.0})
            check("feedback 200",
                  status == 200 and body.get("qerror", 0) >= 1.0,
                  f"status={status} body={body}")

            status, body, _ = await client.get("/status")
            check("status 200",
                  status == 200 and "front_door" in body
                  and "service" in body, f"status={status}")

            status, body, _ = await client.get("/nope")
            check("unknown route 404", status == 404, f"status={status}")

            status, body, _ = await client.post(
                "/estimate", {"sql": sqls[0], "namespace": "ghost"})
            check("unknown namespace 404",
                  status == 404
                  and body.get("error") == "UnknownNamespaceError",
                  f"status={status} body={body}")

            status, body, _ = await client.post("/estimate", {})
            check("missing sql 400", status == 400, f"status={status}")

            # malformed JSON must map to a typed 400, not a hangup
            reader, writer = await asyncio.open_connection(
                door.host, door.port)
            raw = b"{not json"
            writer.write(b"POST /estimate HTTP/1.1\r\nHost: x\r\n"
                         b"Content-Length: %d\r\n\r\n" % len(raw) + raw)
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), timeout=10)
            check("malformed JSON 400", b" 400 " in line,
                  line.decode("latin1", "replace").strip())
            writer.close()

            # a microscopic budget on a fresh query must miss, typed
            status, body, _ = await client.post(
                "/estimate", {"sql": sqls[10], "deadline_ms": 0.001})
            check("deadline miss 504",
                  status == 504 and body.get("error") == "TimeoutError",
                  f"status={status} body={body}")

            # saturate the 1-slot admission window: concurrent deadlined
            # requests must shed typed (503 + Retry-After), never hang
            clients = [AsyncHTTPClient(door.host, door.port)
                       for _ in range(12)]
            try:
                outs = await asyncio.gather(*(
                    c.post("/estimate",
                           {"sql": sqls[11 + i], "deadline_ms": 2000.0})
                    for i, c in enumerate(clients)))
            finally:
                for c in clients:
                    await c.close()
            statuses = [s for s, _b, _h in outs]
            shed = [(s, h) for s, _b, h in outs if s == 503]
            check("overload shed 503",
                  any(s == 200 for s in statuses) and shed
                  and all("retry-after" in h for _s, h in shed),
                  f"statuses={statuses}")
            check("no untyped failures",
                  all(s in (200, 503, 504) for s in statuses),
                  f"statuses={statuses}")

            # /metrics: Prometheus text covering the stack, including
            # the requests this very smoke just issued
            status, text, headers = await client.get("/metrics")
            check("metrics 200 text",
                  status == 200 and isinstance(text, str)
                  and "text/plain" in headers.get("content-type", ""),
                  f"status={status}")
            families = ("repro_http_requests_total",
                        "repro_http_responses_total",
                        "repro_http_request_seconds_bucket",
                        "repro_serve_served_total",
                        "repro_serve_latency_seconds_bucket",
                        "repro_serve_stage_seconds_bucket",
                        "repro_http_inflight")
            missing = [f for f in families
                       if not isinstance(text, str) or f not in text]
            check("metrics families present", not missing,
                  f"missing={missing}")
            served_lines = [] if not isinstance(text, str) else [
                line for line in text.splitlines()
                if line.startswith("repro_serve_served_total")]
            check("metrics count just-served requests",
                  any(float(line.rsplit(" ", 1)[1]) >= 1
                      for line in served_lines),
                  f"lines={served_lines}")

            # /debug/traces: the estimates above must have left traces
            # with admission + compute-side spans
            status, dump, _ = await client.get("/debug/traces")
            recent = dump.get("recent", []) if isinstance(dump, dict) \
                else []
            spans = {s["name"] for t in recent for s in t.get("spans", ())}
            check("debug traces recorded",
                  status == 200 and dump.get("recorded", 0) >= 1
                  and "admission" in spans,
                  f"status={status} recorded={dump.get('recorded')} "
                  f"spans={sorted(spans)}")
        finally:
            await client.close()

    asyncio.run(run())
    return failures


def _run_http(profile, port: int, smoke: bool) -> int:
    import queue
    import threading

    from .net import serve_http

    print(f"training DMV model (profile={profile.name}) ...", flush=True)
    server, sqls = _build_http_front(profile)
    with server:
        if not smoke:
            serve_http(server, port=port, ready=lambda d: print(
                f"serving http://{d.host}:{d.port} "
                "(POST /estimate | /estimate_batch | /feedback, "
                "GET /status | /healthz; Ctrl-C stops)", flush=True))
            return 0
        ready: "queue.Queue" = queue.Queue()
        stop = threading.Event()
        thread = threading.Thread(
            target=serve_http, args=(server,),
            kwargs=dict(port=port, max_inflight=1, ready=ready.put,
                        stop_event=stop),
            daemon=True)
        thread.start()
        try:
            door = ready.get(timeout=60)
            print(f"smoke against http://{door.host}:{door.port}")
            failures = _http_smoke(door, sqls)
        finally:
            stop.set()
            thread.join(timeout=10)
    if failures:
        print(f"FAILED: {failures}", file=sys.stderr)
        return 1
    print("HTTP smoke: all checks passed")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Drive the online serving loop (registry, "
                    "micro-batching service, cache, feedback refinement) "
                    "over a shifting DMV workload — or, with --datasets, "
                    "the multi-table front door over several namespaces.")
    parser.add_argument("--profile", default="small",
                        choices=sorted(PROFILES),
                        help="scale profile (default: small)")
    parser.add_argument("--datasets", nargs="+", default=None,
                        choices=sorted(DATASETS), metavar="NAME",
                        help="serve these tables (plus the synthetic join "
                             "schema) as namespaces behind the multi-table "
                             "front door instead of the single-table loop")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="run the scale-out cluster scenario with 1 "
                             "and N shared-nothing worker processes "
                             "instead of the single-process loop")
    parser.add_argument("--http", type=int, default=None, metavar="PORT",
                        help="serve the JSON-over-HTTP front door on PORT "
                             "(0 = ephemeral) instead of running a "
                             "scenario; Ctrl-C stops")
    parser.add_argument("--chaos", choices=sorted(CHAOS_FAULTS),
                        metavar="FAULT", default=None,
                        help="run the deterministic chaos-healing "
                             "scenario exercising FAULT (one of "
                             f"{', '.join(sorted(CHAOS_FAULTS))}); "
                             "cluster faults use --workers processes "
                             "(default 2); exits non-zero unless every "
                             "healing invariant holds")
    parser.add_argument("--smoke", action="store_true",
                        help="with --http: bind an ephemeral port, drive "
                             "every endpoint and typed error path once, "
                             "exit non-zero on any protocol violation; "
                             "with --chaos: alias for the gated chaos "
                             "run (the CI chaos smoke step)")
    parser.add_argument("--no-artifact", action="store_true",
                        help="skip writing BENCH_serve.json "
                             "(--datasets runs never write it)")
    parser.add_argument("--json", action="store_true",
                        help="dump the full result payload as JSON")
    args = parser.parse_args(argv)

    if args.workers is not None and args.workers < 1:
        parser.error("--workers must be >= 1")
    if args.smoke and args.http is None and args.chaos is None:
        parser.error("--smoke requires --http or --chaos")
    if args.http is not None:
        if args.datasets or args.workers is not None or args.chaos:
            parser.error("--http is exclusive of "
                         "--datasets/--workers/--chaos")
        return _run_http(PROFILES[args.profile], args.http, args.smoke)
    if args.chaos is not None:
        if args.datasets:
            parser.error("--chaos is exclusive of --datasets")
        cluster_fault = CHAOS_FAULTS[args.chaos] == "cluster"
        try:
            result = run_chaos(
                PROFILES[args.profile],
                include_single=not cluster_fault,
                include_cluster=cluster_fault,
                workers=args.workers if args.workers is not None else 2)
        except RuntimeError as exc:
            print(f"FAILED: {exc}", file=sys.stderr)
            return 1
        if args.json:
            print(json.dumps({k: v for k, v in result.items()
                              if k not in ("rows", "columns", "title")},
                             indent=2, default=str))
        print(format_table(result["rows"], result["columns"],
                           title=result["title"]))
        print("checks: "
              + ("all passed" if all(result["checks"].values())
                 else str(result["checks"])))
        return 0
    try:
        if args.workers is not None:
            profile = PROFILES[args.profile]
            counts = (1,) if args.workers == 1 else (1, args.workers)
            result = run_scale_out(replace(profile,
                                           scale_workers=counts))
        elif args.datasets:
            # Dedupe (order-preserving): each dataset is one namespace,
            # and namespaces must be unique.
            datasets = tuple(dict.fromkeys(args.datasets))
            result = run_multi_table(PROFILES[args.profile],
                                     datasets=datasets)
        else:
            result = run_serving(PROFILES[args.profile],
                                 write_artifact=not args.no_artifact)
    except RuntimeError as exc:
        print(f"FAILED: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps({k: v for k, v in result.items()
                          if k not in ("rows", "columns", "title")},
                         indent=2, default=str))
    print(format_table(result["rows"], result["columns"],
                       title=result["title"]))
    if args.workers is not None:
        qps = result["qps_by_workers"]
        print(f"\ncluster q/s by worker count: "
              + ", ".join(f"{n}w {v:.0f}" for n, v in qps.items())
              + f" | max swap propagation "
                f"{result['max_propagation_ms']:.1f} ms | overload: "
                f"{result['overload']['shed']} shed (typed), "
                f"{result['overload']['failures']} failures"
              + (" | cpu-limited host" if result["cpu_limited"] else ""))
    elif args.datasets:
        print(f"\nfront door {result['front_door_qps']:.0f} q/s over "
              f"{result['mixed_stream_queries']} mixed queries across "
              f"{len(result['namespaces'])} namespaces | hot-swap in "
              f"{result['swap_namespace']!r} isolated from the rest")
    else:
        print(f"\nserving {result['serving_qps']:.0f} q/s vs plain engine "
              f"{result['engine_qps_baseline']:.0f} q/s | "
              f"p50 {result['p50_ms']:.2f} ms, "
              f"p99 {result['p99_ms']:.2f} ms | "
              f"shifted q-error "
              f"{result['qerr_shifted_before']['mean']:.3g} -> "
              f"{result['qerr_shifted_after']['mean']:.3g} after hot-swap "
              f"(x{result['qerr_improvement']:.2f})")
    print(f"checks: {'all passed' if all(result['checks'].values()) else result['checks']}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
