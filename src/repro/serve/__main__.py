"""CLI: ``python -m repro.serve [--profile ci|small|bench|paper]
[--datasets NAME ...]``.

Default: the single-table online-serving loop — train a data-only UAE,
serve steady traffic through the micro-batching service, drift on a
shifted workload, refine from feedback in the background, hot-swap,
serve again — and print the per-phase report.  This is the same
scenario ``python -m repro.bench serving`` benchmarks; the bench
variant additionally writes the ``BENCH_serve.json`` artifact.

With ``--datasets`` naming one or more tables, the multi-table
front-door scenario runs instead: one namespace per dataset plus the
synthetic IMDB join schema behind a single ``RoutedEstimateService``,
checking mixed-stream routing parity and the namespace-isolation
invariant (a hot-swap in one namespace leaves every other namespace's
per-version seeded answers bit-identical).

With ``--workers N``, the scale-out cluster scenario runs instead:
the profile's scale datasets served by 1 and then N shared-nothing
worker processes behind a ``ClusterEstimateService``, checking
bit-parity with single-process serving, zero-copy swap propagation,
and typed load shedding under overload.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace

from ..bench.profiles import PROFILES
from ..bench.reporting import format_table
from ..bench.serve_bench import run_multi_table, run_scale_out, run_serving
from ..data.datasets import DATASETS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Drive the online serving loop (registry, "
                    "micro-batching service, cache, feedback refinement) "
                    "over a shifting DMV workload — or, with --datasets, "
                    "the multi-table front door over several namespaces.")
    parser.add_argument("--profile", default="small",
                        choices=sorted(PROFILES),
                        help="scale profile (default: small)")
    parser.add_argument("--datasets", nargs="+", default=None,
                        choices=sorted(DATASETS), metavar="NAME",
                        help="serve these tables (plus the synthetic join "
                             "schema) as namespaces behind the multi-table "
                             "front door instead of the single-table loop")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="run the scale-out cluster scenario with 1 "
                             "and N shared-nothing worker processes "
                             "instead of the single-process loop")
    parser.add_argument("--no-artifact", action="store_true",
                        help="skip writing BENCH_serve.json "
                             "(--datasets runs never write it)")
    parser.add_argument("--json", action="store_true",
                        help="dump the full result payload as JSON")
    args = parser.parse_args(argv)

    if args.workers is not None and args.workers < 1:
        parser.error("--workers must be >= 1")
    try:
        if args.workers is not None:
            profile = PROFILES[args.profile]
            counts = (1,) if args.workers == 1 else (1, args.workers)
            result = run_scale_out(replace(profile,
                                           scale_workers=counts))
        elif args.datasets:
            # Dedupe (order-preserving): each dataset is one namespace,
            # and namespaces must be unique.
            datasets = tuple(dict.fromkeys(args.datasets))
            result = run_multi_table(PROFILES[args.profile],
                                     datasets=datasets)
        else:
            result = run_serving(PROFILES[args.profile],
                                 write_artifact=not args.no_artifact)
    except RuntimeError as exc:
        print(f"FAILED: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps({k: v for k, v in result.items()
                          if k not in ("rows", "columns", "title")},
                         indent=2, default=str))
    print(format_table(result["rows"], result["columns"],
                       title=result["title"]))
    if args.workers is not None:
        qps = result["qps_by_workers"]
        print(f"\ncluster q/s by worker count: "
              + ", ".join(f"{n}w {v:.0f}" for n, v in qps.items())
              + f" | max swap propagation "
                f"{result['max_propagation_ms']:.1f} ms | overload: "
                f"{result['overload']['shed']} shed (typed), "
                f"{result['overload']['failures']} failures"
              + (" | cpu-limited host" if result["cpu_limited"] else ""))
    elif args.datasets:
        print(f"\nfront door {result['front_door_qps']:.0f} q/s over "
              f"{result['mixed_stream_queries']} mixed queries across "
              f"{len(result['namespaces'])} namespaces | hot-swap in "
              f"{result['swap_namespace']!r} isolated from the rest")
    else:
        print(f"\nserving {result['serving_qps']:.0f} q/s vs plain engine "
              f"{result['engine_qps_baseline']:.0f} q/s | "
              f"p50 {result['p50_ms']:.2f} ms, "
              f"p99 {result['p99_ms']:.2f} ms | "
              f"shifted q-error "
              f"{result['qerr_shifted_before']['mean']:.3g} -> "
              f"{result['qerr_shifted_after']['mean']:.3g} after hot-swap "
              f"(x{result['qerr_improvement']:.2f})")
    print(f"checks: {'all passed' if all(result['checks'].values()) else result['checks']}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
