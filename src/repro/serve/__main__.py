"""CLI: ``python -m repro.serve [--profile ci|small|bench|paper]``.

Runs the full online-serving loop — train a data-only UAE, serve steady
traffic through the micro-batching service, drift on a shifted workload,
refine from feedback in the background, hot-swap, serve again — and
prints the per-phase report.  This is the same scenario
``python -m repro.bench serving`` benchmarks; the bench variant
additionally writes the ``BENCH_serve.json`` artifact.
"""

from __future__ import annotations

import argparse
import json
import sys

from ..bench.profiles import PROFILES
from ..bench.reporting import format_table
from ..bench.serve_bench import run_serving


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Drive the online serving loop (registry, "
                    "micro-batching service, cache, feedback refinement) "
                    "over a shifting DMV workload.")
    parser.add_argument("--profile", default="small",
                        choices=sorted(PROFILES),
                        help="scale profile (default: small)")
    parser.add_argument("--no-artifact", action="store_true",
                        help="skip writing BENCH_serve.json")
    parser.add_argument("--json", action="store_true",
                        help="dump the full result payload as JSON")
    args = parser.parse_args(argv)

    try:
        result = run_serving(PROFILES[args.profile],
                             write_artifact=not args.no_artifact)
    except RuntimeError as exc:
        print(f"FAILED: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps({k: v for k, v in result.items()
                          if k not in ("rows", "columns", "title")},
                         indent=2, default=str))
    print(format_table(result["rows"], result["columns"],
                       title=result["title"]))
    print(f"\nserving {result['serving_qps']:.0f} q/s vs plain engine "
          f"{result['engine_qps_baseline']:.0f} q/s | "
          f"p50 {result['p50_ms']:.2f} ms, p99 {result['p99_ms']:.2f} ms | "
          f"shifted q-error {result['qerr_shifted_before']['mean']:.3g} -> "
          f"{result['qerr_shifted_after']['mean']:.3g} after hot-swap "
          f"(x{result['qerr_improvement']:.2f})")
    print(f"checks: {'all passed' if all(result['checks'].values()) else result['checks']}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
