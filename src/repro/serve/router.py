"""Multi-table serving front door: namespaces, routing, shared capacity.

PR 3's loop served exactly one table.  Production traffic names many
targets — several base tables and join schemas — so this module puts one
front door in front of many per-namespace serving stacks:

* :class:`MultiTableRegistry` keys the per-namespace
  :class:`~repro.serve.registry.ModelRegistry` instances (each owned by a
  :class:`~repro.serve.server.UAEServer`) by *namespace* — one per table
  or join schema — and resolves each query to its namespace from the
  query's :func:`~repro.workload.predicate.routing_signature`: join
  queries route by the tables they touch (smallest covering join schema
  wins), single-table queries by the columns their predicates constrain.
  Misses raise a typed :class:`UnknownNamespaceError`; genuinely
  ambiguous targets raise :class:`AmbiguousNamespaceError` instead of
  guessing (pass ``namespace=`` to disambiguate).
* :class:`RoutedEstimateService` is the front door: ``submit`` /
  ``estimate`` / ``estimate_batch`` dispatch each query to the right
  namespace's micro-batcher.  Namespaces are fully isolated — their own
  registry, result cache, feedback monitor, and sampling streams — so a
  hot-swap in one namespace can never change another namespace's
  per-version seeded answers (the isolation invariant
  ``python -m repro.bench serving`` checks bit-exactly).
* :class:`RefinementPool` is the shared capacity manager: one bounded
  worker pool runs *all* namespaces' background refinements, draining
  per-namespace job queues round-robin so a chatty namespace cannot
  starve the others' drift-triggered refinements.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field

import numpy as np

from ..workload.predicate import routing_signature
from .registry import ModelRegistry
from .server import UAEServer
from .service import EstimateRequest


class RoutingError(KeyError):
    """Base class for front-door routing failures."""

    def __str__(self) -> str:  # KeyError quotes its message otherwise
        return self.args[0] if self.args else ""


class UnknownNamespaceError(RoutingError):
    """No registered namespace covers the query's target tables/columns."""


class AmbiguousNamespaceError(RoutingError):
    """More than one namespace covers the target; pass ``namespace=``."""


# ----------------------------------------------------------------------
# Shared refinement capacity
# ----------------------------------------------------------------------
class RefinementJob:
    """A queued background refinement; future-like, and thread-shaped
    (``is_alive``/``join``) so :class:`UAEServer` treats pool jobs and
    its private threads uniformly."""

    __slots__ = ("namespace", "fn", "args", "submitted_at", "started_at",
                 "finished_at", "_event", "_result", "_error")

    def __init__(self, namespace: str, fn, args: tuple):
        self.namespace = namespace
        self.fn = fn
        self.args = args
        self.submitted_at = time.perf_counter()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self._event = threading.Event()
        self._result = None
        self._error: BaseException | None = None

    def _run(self) -> None:
        self.started_at = time.perf_counter()
        try:
            self._result = self.fn(*self.args)
        except BaseException as exc:  # noqa: BLE001 - surfaced via result()
            self._error = exc
        finally:
            self.finished_at = time.perf_counter()
            self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self.finished_at = time.perf_counter()
        self._event.set()

    def done(self) -> bool:
        return self._event.is_set()

    def is_alive(self) -> bool:
        """Pending or running (thread-compatible liveness)."""
        return not self._event.is_set()

    def join(self, timeout: float | None = None) -> None:
        self._event.wait(timeout)

    def result(self, timeout: float | None = None):
        if not self._event.wait(timeout):
            raise TimeoutError("refinement not finished")
        if self._error is not None:
            raise self._error
        return self._result


class RefinementPool:
    """Bounded trainer pool shared across namespaces, drained fairly.

    Each namespace gets its own FIFO queue; workers pop queues
    round-robin, so with ``max_workers=1`` a namespace that submits ten
    refinements still yields to every other namespace between its own
    jobs — no namespace starves behind a hot one.  Workers start lazily
    on the first ``submit``.
    """

    def __init__(self, max_workers: int = 1, name: str = "refinement-pool",
                 metrics=None):
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = int(max_workers)
        self.name = name
        self._cond = threading.Condition()
        self._queues: "OrderedDict[str, deque[RefinementJob]]" = OrderedDict()
        self._rotation: deque[str] = deque()   # namespaces with pending jobs
        self._workers: list[threading.Thread] = []
        self._stop = False
        self._closing = False
        self._active = 0
        self.completed = 0
        self.failed = 0
        self.per_namespace: dict[str, int] = {}
        self.metrics = metrics
        self._c_jobs = self._h_job = self._h_queue_wait = None
        if metrics is not None:
            self._c_jobs = metrics.counter(
                "repro_pool_jobs_total", "Refinement-pool jobs finished",
                ("namespace", "outcome"))
            self._h_job = metrics.histogram(
                "repro_pool_job_seconds", "Refinement job run time",
                ("namespace",))
            self._h_queue_wait = metrics.histogram(
                "repro_pool_queue_wait_seconds",
                "Time a refinement job waited for a pool worker",
                ("namespace",))
            metrics.gauge("repro_pool_active",
                          "Refinement jobs currently running") \
                .set_function(lambda: float(self._active))
            metrics.gauge("repro_pool_pending",
                          "Refinement jobs queued behind the workers") \
                .set_function(lambda: float(self.pending()))

    # ------------------------------------------------------------------
    def _spawn_workers_locked(self) -> None:
        self._workers = [t for t in self._workers if t.is_alive()]
        while len(self._workers) < self.max_workers:
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"{self.name}-{len(self._workers)}", daemon=True)
            self._workers.append(thread)
            thread.start()

    def start(self) -> "RefinementPool":
        with self._cond:
            self._stop = False
            self._closing = False
            self._spawn_workers_locked()
        return self

    def submit(self, namespace: str, fn, *args) -> RefinementJob:
        """Queue ``fn(*args)`` on ``namespace``'s lane; returns the job.

        Workers spawn lazily under the same lock as the enqueue: a
        ``stop()`` racing this call either sees the job (and fails it)
        or beats the stop-check (and ``submit`` raises) — it can never
        be silently resurrected afterwards.
        """
        job = RefinementJob(str(namespace), fn, args)
        with self._cond:
            if self._stop or self._closing:
                raise RuntimeError("refinement pool is stopped")
            queue = self._queues.setdefault(job.namespace, deque())
            queue.append(job)
            if job.namespace not in self._rotation:
                self._rotation.append(job.namespace)
            self._spawn_workers_locked()
            self._cond.notify()
        return job

    def _next_locked(self) -> RefinementJob | None:
        """Round-robin pop: take the head namespace's oldest job, then
        move that namespace to the rotation's tail (if it still has
        work) so every namespace advances once per cycle."""
        while self._rotation:
            namespace = self._rotation.popleft()
            queue = self._queues.get(namespace)
            if not queue:
                continue
            job = queue.popleft()
            if queue:
                self._rotation.append(namespace)
            return job
        return None

    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                job = None
                while not self._stop:
                    job = self._next_locked()
                    if job is not None:
                        break
                    self._cond.wait(timeout=0.1)
                if job is None:
                    return
                self._active += 1
            try:
                job._run()
            finally:
                with self._cond:
                    self._active -= 1
                    self.completed += 1
                    if job._error is not None:
                        self.failed += 1
                    self.per_namespace[job.namespace] = \
                        self.per_namespace.get(job.namespace, 0) + 1
                    self._cond.notify_all()
                if self._c_jobs is not None:
                    outcome = "error" if job._error is not None else "ok"
                    self._c_jobs.labels(namespace=job.namespace,
                                        outcome=outcome).inc()
                    self._h_job.labels(namespace=job.namespace).observe(
                        job.finished_at - job.started_at)
                    self._h_queue_wait.labels(namespace=job.namespace) \
                        .observe(job.started_at - job.submitted_at)

    def stop(self) -> None:
        """Stop workers; queued-but-unstarted jobs fail with RuntimeError."""
        with self._cond:
            self._stop = True
            pending = [job for queue in self._queues.values()
                       for job in queue]
            self._queues.clear()
            self._rotation.clear()
            self._cond.notify_all()
        for job in pending:
            job._fail(RuntimeError("refinement pool stopped"))
        for thread in self._workers:
            thread.join(timeout=5.0)
        self._workers = []

    def close(self, timeout: float | None = 5.0) -> bool:
        """Graceful shutdown: stop accepting work, drain what's queued,
        then stop the workers.

        New ``submit`` calls fail immediately; already-queued and
        running refinements get up to ``timeout`` seconds to finish
        (``None`` waits indefinitely).  Whatever is still pending when
        the budget lapses is cancelled with the usual typed
        RuntimeError, exactly as :meth:`stop` would.  Returns True when
        the pool drained fully, False when the timeout cut it short —
        callers that must not lose refinements can check and retry.
        """
        with self._cond:
            self._closing = True
        drained = self.join(timeout=timeout)
        self.stop()
        return drained

    def join(self, timeout: float | None = None) -> bool:
        """Block until the pool is idle; returns False on timeout."""
        deadline = None if timeout is None else time.perf_counter() + timeout
        with self._cond:
            while self._rotation or self._active:
                remaining = None if deadline is None \
                    else deadline - time.perf_counter()
                if remaining is not None and remaining <= 0:
                    return False
                self._cond.wait(timeout=0.05 if remaining is None
                                else min(0.05, remaining))
        return True

    def pending(self) -> int:
        with self._cond:
            return sum(len(q) for q in self._queues.values())

    def stats(self) -> dict:
        with self._cond:
            return {"workers": self.max_workers,
                    "active": self._active,
                    "pending": sum(len(q) for q in self._queues.values()),
                    "completed": self.completed,
                    "failed": self.failed,
                    "per_namespace": dict(self.per_namespace)}


# ----------------------------------------------------------------------
# Namespaces + routing
# ----------------------------------------------------------------------
@dataclass
class Namespace:
    """One serving namespace: a per-table (or per-join-schema) stack."""

    name: str
    server: UAEServer
    kind: str                               # "table" | "join"
    tables: frozenset = field(default_factory=frozenset)
    columns: frozenset = field(default_factory=frozenset)

    @property
    def registry(self) -> ModelRegistry:
        return self.server.registry

    @property
    def service(self):
        return self.server.service

    @property
    def version(self) -> int:
        return self.server.registry.version


class MultiTableRegistry:
    """Keys per-namespace model registries; resolves queries to them.

    Routing rules (see :func:`~repro.workload.routing_signature`):

    * a join query (has ``tables``) routes to the join namespace whose
      schema covers all its tables; when several cover it, the smallest
      schema wins (exact match beats superset), and a tie raises
      :class:`AmbiguousNamespaceError`;
    * a single-table query routes to the unique table namespace whose
      column set covers every predicated column; zero matches raise
      :class:`UnknownNamespaceError`, several raise
      :class:`AmbiguousNamespaceError`.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._spaces: "OrderedDict[str, Namespace]" = OrderedDict()

    # ------------------------------------------------------------------
    def register(self, space: Namespace) -> Namespace:
        with self._lock:
            if space.name in self._spaces:
                raise ValueError(f"namespace {space.name!r} already "
                                 "registered")
            self._spaces[space.name] = space
        return space

    def get(self, name: str) -> Namespace:
        with self._lock:
            space = self._spaces.get(name)
        if space is None:
            raise UnknownNamespaceError(
                f"unknown namespace {name!r} (have {self.names()})")
        return space

    def registry(self, name: str) -> ModelRegistry:
        """The namespace's versioned model registry."""
        return self.get(name).registry

    def names(self) -> list[str]:
        with self._lock:
            return list(self._spaces)

    def spaces(self) -> list[Namespace]:
        with self._lock:
            return list(self._spaces.values())

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._spaces

    def __len__(self) -> int:
        with self._lock:
            return len(self._spaces)

    def __iter__(self):
        return iter(self.spaces())

    # ------------------------------------------------------------------
    def resolve(self, query, namespace: str | None = None) -> Namespace:
        """The namespace serving ``query`` (explicit ``namespace`` wins)."""
        if namespace is not None:
            return self.get(namespace)
        kind, targets = routing_signature(query)
        if kind == "join":
            spaces = [s for s in self.spaces()
                      if s.kind == "join" and s.tables >= targets]
            if not spaces:
                raise UnknownNamespaceError(
                    f"no join namespace covers tables {sorted(targets)} "
                    f"(have {self.names()})")
            smallest = min(len(s.tables) for s in spaces)
            spaces = [s for s in spaces if len(s.tables) == smallest]
        else:
            spaces = [s for s in self.spaces()
                      if s.kind == "table" and s.columns >= targets]
            if not spaces:
                raise UnknownNamespaceError(
                    f"no table namespace covers columns {sorted(targets)} "
                    f"(have {self.names()})")
        if len(spaces) > 1:
            raise AmbiguousNamespaceError(
                f"{kind} targets {sorted(targets)} match namespaces "
                f"{[s.name for s in spaces]}; pass namespace= to pick one")
        return spaces[0]


# ----------------------------------------------------------------------
# The front door
# ----------------------------------------------------------------------
class RoutedEstimateService:
    """One estimate API over many per-namespace serving stacks.

    Each ``add_table``/``add_join`` builds a full
    :class:`~repro.serve.server.UAEServer` (registry + micro-batching
    service + result cache + feedback monitor) for that namespace, wired
    to the shared :class:`RefinementPool`.  The front door then routes
    every query to its namespace's micro-batcher; nothing is shared
    between namespaces except the bounded trainer pool, which is exactly
    what makes the isolation invariant (a hot-swap in namespace A never
    perturbs namespace B's per-version seeded answers) hold by
    construction.
    """

    def __init__(self, *, pool_workers: int = 1, cache_capacity: int = 8192,
                 keep_versions: int = 3, max_batch: int = 32,
                 max_wait_ms: float = 2.0, seed: int = 0,
                 refine_epochs: int = 8, data_epochs: int = 3,
                 auto_refine: bool = False,
                 train_backend: str | None = None,
                 metrics=None, events=None):
        from ..obs import EVENTS, MetricsRegistry
        self.registry = MultiTableRegistry()
        # One shared metrics registry + event log across namespaces: the
        # routed front door (and /metrics) sees every namespace's series
        # side by side, distinguished by the ``namespace`` label.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.events = events if events is not None else EVENTS
        self.pool = RefinementPool(max_workers=pool_workers,
                                   metrics=self.metrics)
        self._seed = int(seed)
        self._defaults = dict(cache_capacity=cache_capacity,
                              keep_versions=keep_versions,
                              max_batch=max_batch, max_wait_ms=max_wait_ms,
                              refine_epochs=refine_epochs,
                              data_epochs=data_epochs,
                              auto_refine=auto_refine,
                              train_backend=train_backend,
                              metrics=self.metrics, events=self.events)
        self._running = False

    # ------------------------------------------------------------------
    # Namespace management
    # ------------------------------------------------------------------
    def add_table(self, estimator, *, namespace: str | None = None,
                  feedback=None, **overrides) -> Namespace:
        """Register a single-table namespace (defaults to the table name)."""
        name = namespace or estimator.table.name
        server = UAEServer(estimator, feedback=feedback, namespace=name,
                           pool=self.pool, seed=self._seed,
                           **{**self._defaults, **overrides})
        space = Namespace(name=name, server=server, kind="table",
                          tables=frozenset({estimator.table.name}),
                          columns=frozenset(estimator.table.column_names))
        self.registry.register(space)
        if self._running:
            server.start()
        return space

    def add_join(self, join, *, namespace: str | None = None,
                 feedback=None, **overrides) -> Namespace:
        """Register a join-schema namespace for a
        :class:`~repro.joins.UAEJoin` (or NeuroCard) estimator.

        The namespace serves snapshots of the estimator's inner UAE; the
        join's constraint expander translates each
        :class:`~repro.joins.JoinQuery` into fanout-scaled constraints,
        and estimates scale by the full outer join's size.
        """
        name = namespace or "+".join(sorted(join.schema.tables))
        server = UAEServer(join.uae, feedback=feedback, namespace=name,
                           pool=self.pool, seed=self._seed,
                           expander=join.constraint_expander(),
                           scale=float(join.join_size),
                           **{**self._defaults, **overrides})
        space = Namespace(name=name, server=server, kind="join",
                          tables=frozenset(join.schema.tables),
                          columns=frozenset())
        self.registry.register(space)
        if self._running:
            server.start()
        return space

    def namespace(self, name: str) -> Namespace:
        return self.registry.get(name)

    def resolve(self, query, namespace: str | None = None) -> Namespace:
        return self.registry.resolve(query, namespace=namespace)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "RoutedEstimateService":
        self.pool.start()
        for space in self.registry:
            space.server.start()
        self._running = True
        return self

    def stop(self, timeout: float | None = 5.0) -> None:
        """Graceful front-door shutdown: in-flight refinements get up to
        ``timeout`` seconds to drain before the pool is stopped."""
        self._running = False
        for space in self.registry:
            space.server.stop(timeout=timeout)
        self.pool.close(timeout=timeout)

    def __enter__(self) -> "RoutedEstimateService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def submit(self, query, *, namespace: str | None = None,
               deadline_ms: float | None = None,
               trace=None) -> EstimateRequest:
        space = self.resolve(query, namespace=namespace)
        return space.server.submit(query, deadline_ms=deadline_ms,
                                   trace=trace)

    def estimate(self, query, *, namespace: str | None = None,
                 deadline_ms: float | None = None) -> float:
        space = self.resolve(query, namespace=namespace)
        return space.server.estimate(query, deadline_ms=deadline_ms)

    def estimate_batch(self, queries: list, *,
                       namespace: str | None = None, seed: int | None = None,
                       use_cache: bool = True) -> np.ndarray:
        """Bulk path over a (possibly mixed-namespace) query list.

        Queries are grouped by resolved namespace and each group runs
        through its own service in stream order, so a seeded call is
        bit-reproducible *per namespace* — the answers a namespace gives
        do not depend on which other namespaces appear in the batch.
        """
        if not queries:
            return np.zeros(0, dtype=np.float64)
        groups: "OrderedDict[str, list[int]]" = OrderedDict()
        spaces: dict[str, Namespace] = {}
        for i, query in enumerate(queries):
            space = self.resolve(query, namespace=namespace)
            groups.setdefault(space.name, []).append(i)
            spaces[space.name] = space
        out = np.empty(len(queries), dtype=np.float64)
        for name, indices in groups.items():
            values = spaces[name].server.estimate_batch(
                [queries[i] for i in indices], seed=seed,
                use_cache=use_cache)
            out[indices] = values
        return out

    def estimate_on(self, namespace: str, queries: list, *,
                    version: int | None = None,
                    seed: int | None = None) -> np.ndarray:
        """Direct compute on one namespace's snapshot (reference path for
        the per-version reproducibility and isolation checks)."""
        space = self.registry.get(namespace)
        registry = space.server.registry
        snap = registry.active() if version is None \
            else registry.get(version)
        if snap is None:
            raise KeyError(f"namespace {namespace!r} does not retain "
                           f"version {version}")
        return space.server.service.estimate_on(snap, queries, seed=seed)

    # ------------------------------------------------------------------
    # Feedback + shared-capacity maintenance
    # ------------------------------------------------------------------
    def observe(self, query, true_cardinality: float,
                estimate: float | None = None, *,
                namespace: str | None = None) -> float:
        """Route an executed query's truth to its namespace's monitor."""
        space = self.resolve(query, namespace=namespace)
        return space.server.observe(query, true_cardinality,
                                    estimate=estimate)

    def maintain(self, background: bool = True) -> dict:
        """One maintenance sweep: refine every namespace whose feedback
        monitor reports drift.  Background refinements queue on the
        shared pool (fair across namespaces); inline ones run here.
        Returns {namespace: job-or-record} for namespaces that kicked
        off a refinement."""
        started = {}
        for space in self.registry:
            if not space.server.feedback.should_refine():
                continue
            result = space.server.refine(background=background)
            if result is not None:
                started[space.name] = result
        return started

    def stats(self) -> dict:
        return {"namespaces": {space.name: space.server.stats()
                               for space in self.registry},
                "pool": self.pool.stats()}
