"""Sharded scale-out serving tier: shared-nothing workers + balancer.

One Python process is the serving ceiling no matter how fast the hot
paths get — the GIL serialises every micro-batch.  This module goes from
one process to N:

* **Shared-nothing workers** — each :func:`_worker_main` process hosts a
  subset of namespaces (its own UAE models, compiled engines, sampling
  streams; nothing shared but the snapshot segments), assigned by
  consistent-hash placement (:mod:`repro.serve.placement`), so the
  per-namespace isolation contract from the single-process front door
  carries over verbatim: namespaces on different workers cannot perturb
  each other by construction.
* **Zero-copy snapshot publication** — a hot-swap serialises the fused
  weight-source state once into the namespace's
  ``multiprocessing.shared_memory`` segment
  (:class:`~repro.serve.snapshot.SharedSnapshot`); owning workers get a
  tiny ``publish`` control message, attach the buffer, and rebuild their
  :class:`~repro.infer.compiled.CompiledModel` from it.  The PR 1
  version-counter contract crosses the process boundary intact:
  ``load_state_dict`` bumps every parameter version in the worker, which
  invalidates and recompiles its engine exactly as in-process training
  would.
* **Load-shedding balancer** — :class:`ClusterEstimateService` routes by
  :func:`~repro.workload.predicate.routing_signature`, applies
  backpressure through bounded per-worker in-flight windows, and when a
  worker saturates sheds *deadline-first*: a request whose remaining
  budget cannot cover the queue wait plus the worker's observed batch
  latency fails immediately with a typed :class:`LoadShedError` (never a
  silent late answer, never an untyped crash), while deadline-free
  requests simply wait for a slot.

Crash containment: a dead worker surfaces as a typed
:class:`~repro.serve.placement.WorkerUnavailableError` on every request
routed to it; :meth:`ClusterEstimateService.recover` removes it from the
ring (moving only ~1/N namespaces), re-adopts the displaced namespaces
on the survivors from the retained snapshot segments, and serving
resumes bit-identically — the model state lives in shared memory, not in
the dead process.

Determinism: a seeded ``estimate_batch`` groups queries by namespace in
stream order and sends each namespace group as one batch, so answers are
bit-identical to the single-process
:class:`~repro.serve.router.RoutedEstimateService` on the same stream —
the parity invariant the scale-out bench checks.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import queue as queue_mod
import signal
import threading
import time
from collections import OrderedDict

import numpy as np

from ..workload.predicate import routing_signature
from .placement import HashRing, WorkerUnavailableError
from .router import AmbiguousNamespaceError, UnknownNamespaceError
from .service import RequestCancelledError
from .snapshot import HAVE_SHARED_MEMORY, SharedSnapshot


class LoadShedError(RuntimeError):
    """Typed rejection: the cluster is saturated and the request's
    deadline cannot be met — retry later or relax the deadline.  Shed
    requests are accounted separately from failures."""


def _limit_blas_threads(n: int = 1) -> None:
    """Pin the worker's BLAS pool: shared-nothing scaling wants one core
    per worker, not every worker fighting over one threaded GEMM pool."""
    for var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS",
                "MKL_NUM_THREADS"):
        os.environ.setdefault(var, str(n))
    try:                                   # already-loaded OpenBLAS
        import ctypes
        lib = ctypes.CDLL(None)
        for sym in ("openblas_set_num_threads64_",
                    "openblas_set_num_threads"):
            fn = getattr(lib, sym, None)
            if fn is not None:
                fn(int(n))
                break
    except Exception:                      # noqa: BLE001 - best effort
        pass


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _worker_main(worker_id: str, request_q, response_q,
                 chaos=None, incarnation: int = 0) -> None:
    """One shared-nothing worker: adopt namespaces, serve batches,
    re-read snapshot segments on publish.  Runs until a ``stop`` message
    (or the process is killed — the balancer contains the crash).

    ``chaos`` is an optional :class:`~repro.chaos.ChaosPlan` copy; this
    worker evaluates the ``worker.batch`` hook on every batch message
    with ``worker``/``namespace``/``incarnation`` context (``kill``
    SIGKILLs the process, ``sleep`` injects latency).  ``incarnation``
    counts restarts of this worker id — 0 for the original fork — so a
    fault with ``where={"incarnation": 0}`` crashes once and lets the
    restarted worker run healthy."""
    _limit_blas_threads(1)
    from ..core.uae import UAE             # deferred: cheap worker spawn
    from ..obs import MetricsRegistry

    models: dict[str, UAE] = {}
    buffers: dict[str, SharedSnapshot] = {}
    versions: dict[str, int] = {}
    rngs: dict[str, np.random.Generator] = {}
    served = 0
    # Worker-local registry: fixed bucket layouts make these histograms
    # mergeable parent-side (ClusterEstimateService.merged_metrics).
    wm = MetricsRegistry()
    wm_served = wm.counter("repro_worker_served_total",
                           "Queries answered by this worker",
                           ("namespace",))
    wm_batch = wm.histogram("repro_worker_batch_seconds",
                            "Engine compute time per worker batch",
                            ("namespace",))
    wm_qwait = wm.histogram("repro_worker_queue_wait_seconds",
                            "Time a batch sat in the worker's inbox",
                            ("namespace",))

    def respond(req_id, status, payload=None) -> None:
        try:
            response_q.put((worker_id, req_id, status, payload))
        except (ValueError, OSError):      # parent gone: nothing to do
            pass

    while True:
        msg = request_q.get()
        req_id, kind = msg[0], msg[1]
        if kind == "stop":
            break
        try:
            if kind == "adopt":
                namespace, table, config, order, shm_name, seed = msg[2:]
                t0 = time.perf_counter()
                estimator = UAE(table, config)
                if order is not None:
                    # The parent's *realized* column order (keeps
                    # "random"-order models bit-identical).
                    estimator._init_model_stack(list(order))
                buf = SharedSnapshot.attach(shm_name)
                version, state = buf.read(timeout=5.0)
                estimator.model.load_state_dict(state)
                estimator.sampler.engine.compiled.ensure_current()
                estimator.sampler.engine.metrics = wm
                stale = buffers.pop(namespace, None)
                if stale is not None:
                    stale.close()
                models[namespace] = estimator
                buffers[namespace] = buf
                versions[namespace] = version
                rngs[namespace] = np.random.default_rng(
                    [int(seed), len(namespace)])
                respond(req_id, "ok",
                        (version, time.perf_counter() - t0))
            elif kind == "publish":
                namespace = msg[2]
                t0 = time.perf_counter()
                version, state = buffers[namespace].read(timeout=5.0)
                # load_state_dict bumps parameter versions ->
                # ensure_current() rebuilds the fused CompiledModel from
                # the new weights: the in-process invalidation contract,
                # driven across the process boundary by one flat buffer.
                models[namespace].model.load_state_dict(state)
                models[namespace].sampler.engine.compiled.ensure_current()
                versions[namespace] = version
                respond(req_id, "ok",
                        (version, time.perf_counter() - t0))
            elif kind == "batch":
                namespace, queries, seed, deadline, sent_at = msg[2:]
                if chaos is not None:
                    fault = chaos.fires("worker.batch",
                                        worker=worker_id,
                                        namespace=namespace,
                                        incarnation=incarnation)
                    if fault is not None and fault.action == "kill":
                        # Die before any respond(): a SIGKILL mid-put
                        # could wedge the shared response queue for
                        # the surviving workers.
                        os.kill(os.getpid(), signal.SIGKILL)
                    if fault is not None and fault.action == "sleep":
                        time.sleep(float(
                            fault.params.get("seconds", 0.05)))
                recv_at = time.perf_counter()
                if sent_at is not None:
                    # perf_counter is CLOCK_MONOTONIC on Linux — shared
                    # across same-host processes, so the parent's send
                    # stamp and this read sit on one time axis.
                    wm_qwait.labels(namespace=namespace).observe(
                        max(0.0, recv_at - sent_at))
                if deadline is not None and recv_at > deadline:
                    respond(req_id, "shed",
                            "deadline expired while queued")
                    continue
                estimator = models.get(namespace)
                if estimator is None:
                    # A batch can race a restart's adoption messages
                    # into the inbox of a freshly forked worker: that
                    # is transient unavailability (the adopt is right
                    # behind it), so answer typed-retryable rather
                    # than with a hard error.
                    respond(req_id, "err", WorkerUnavailableError(
                        f"namespace {namespace!r} not yet adopted by "
                        f"worker {worker_id}; retry"))
                    continue
                t0 = time.perf_counter()
                constraints = [
                    estimator.fact.expand_masks(q.masks(estimator.table))
                    for q in queries]
                rng = np.random.default_rng(seed) if seed is not None \
                    else rngs[namespace]
                sels = estimator.sampler.scheduler.estimate_many(
                    constraints, estimator.sampler.num_samples, rng)
                cards = np.clip(sels, 0.0, 1.0) \
                    * estimator.table.num_rows
                served += len(queries)
                compute_s = time.perf_counter() - t0
                wm_served.labels(namespace=namespace).inc(len(queries))
                wm_batch.labels(namespace=namespace).observe(compute_s)
                respond(req_id, "ok", (cards, versions[namespace],
                                       compute_s, t0))
            elif kind == "metrics":
                respond(req_id, "ok", wm.snapshot())
            elif kind == "ping":
                respond(req_id, "ok", {
                    "worker": worker_id, "pid": os.getpid(),
                    "served": served, "versions": dict(versions)})
            else:
                respond(req_id, "err",
                        ValueError(f"unknown message kind {kind!r}"))
        except BaseException as exc:       # noqa: BLE001 - typed to parent
            try:
                respond(req_id, "err", exc)
            except Exception:              # unpicklable exception
                respond(req_id, "err", RuntimeError(repr(exc)))
    for buf in buffers.values():
        buf.close()


# ----------------------------------------------------------------------
# Futures + handles
# ----------------------------------------------------------------------
class ClusterRequest:
    """A single in-flight cluster call; future-like, mirrors
    :class:`~repro.serve.service.EstimateRequest` (first-wins
    settlement, done callbacks, best-effort cancellation)."""

    __slots__ = ("namespace", "count", "deadline", "single", "trace",
                 "dispatched_at", "submitted_at", "completed_at",
                 "version", "worker", "shed", "cancelled", "_lock",
                 "_callbacks", "_event", "_value", "_error")

    def __init__(self, namespace: str, count: int,
                 deadline: float | None, single: bool = False,
                 trace=None):
        self.namespace = namespace
        self.count = count
        self.deadline = deadline           # absolute perf_counter time
        self.single = single
        self.trace = trace                 # optional obs.Trace
        self.dispatched_at: float | None = None
        self.submitted_at = time.perf_counter()
        self.completed_at: float | None = None
        self.version: int | None = None
        self.worker: str | None = None
        self.shed = False
        self.cancelled = False
        self._lock = threading.Lock()
        self._callbacks: list = []
        self._event = threading.Event()
        self._value = None
        self._error: BaseException | None = None

    def _settle(self, value, error, version, worker, shed) -> bool:
        with self._lock:
            if self._event.is_set():
                return False
            self._value = value
            self._error = error
            self.version = version
            self.worker = worker
            self.shed = shed
            self.completed_at = time.perf_counter()
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)
        return True

    def _complete(self, value, version: int | None,
                  worker: str | None) -> bool:
        return self._settle(value, None, version, worker, False)

    def _fail(self, error: BaseException, shed: bool = False) -> bool:
        return self._settle(None, error, self.version, self.worker, shed)

    def cancel(self) -> bool:
        """Abandon the call parent-side.  The batch may already sit in
        the worker's queue — cancellation cannot cross the process
        boundary, but the worker's own deadline check (and the parent
        dropping the answer here) keeps a dead client from being waited
        on.  Returns True when the cancellation won."""
        self.cancelled = True
        return self._fail(RequestCancelledError("cluster request "
                                                "cancelled"))

    def add_done_callback(self, callback) -> None:
        """Call ``callback(request)`` once settled (immediately if
        already done), from the settling thread."""
        with self._lock:
            if not self._event.is_set():
                self._callbacks.append(callback)
                return
        callback(self)

    def done(self) -> bool:
        return self._event.is_set()

    def exception(self) -> BaseException | None:
        """The request's error, or None (valid once ``done()``)."""
        return self._error

    def result(self, timeout: float | None = None):
        """The estimate (float for ``submit``, array for batch
        dispatch); raises the request's typed error — ``LoadShedError``
        when shed, ``WorkerUnavailableError`` when the owner died."""
        if not self._event.wait(timeout):
            raise TimeoutError("cluster request not ready")
        if self._error is not None:
            raise self._error
        if self.single:
            return float(np.asarray(self._value).reshape(-1)[0])
        return self._value

    def latency(self) -> float | None:
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at


class _WorkerHandle:
    """Parent-side view of one worker: process, queue, in-flight window."""

    def __init__(self, worker_id: str, process, request_q,
                 queue_depth: int):
        self.worker_id = worker_id
        self.process = process
        self.request_q = request_q
        self.queue_depth = int(queue_depth)
        self.slots = threading.BoundedSemaphore(self.queue_depth)
        self.in_flight = 0
        self.ewma_seconds: float | None = None   # observed batch latency
        self.dispatched = 0

    def alive(self) -> bool:
        return self.process.is_alive()

    def observe_latency(self, seconds: float) -> None:
        if self.ewma_seconds is None:
            self.ewma_seconds = seconds
        else:
            self.ewma_seconds = 0.75 * self.ewma_seconds + 0.25 * seconds


# ----------------------------------------------------------------------
# The balancer
# ----------------------------------------------------------------------
class ClusterEstimateService:
    """Front-door balancer over N shared-nothing worker processes.

    Lifecycle: ``add_table`` every namespace, then ``start()`` (spawns
    workers, assigns namespaces via bounded-load consistent hashing,
    ships each worker its namespaces' tables + configs and the shared
    snapshot segments), serve, ``stop()``.  ``publish`` hot-swaps a
    namespace by republishing its segment in place and pinging the
    owning worker; ``recover`` heals after a worker crash.

    ``queue_depth`` bounds the number of un-acked batches per worker —
    the backpressure window.  When the window is full, deadline-free
    calls block for a slot while deadlined calls are shed as soon as
    their remaining budget drops under the worker's observed batch
    latency (deadline-first shedding: the requests that cannot make it
    are dropped immediately, typed, before any compute is wasted on
    them).
    """

    def __init__(self, *, workers: int = 2, queue_depth: int = 4,
                 vnodes: int = 64, balance: float | None = 1.0,
                 seed: int = 0, start_method: str | None = None,
                 request_timeout: float = 120.0, name: str = "cluster",
                 metrics=None, events=None, chaos=None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.num_workers = int(workers)
        self.queue_depth = int(queue_depth)
        self.balance = balance
        self.request_timeout = float(request_timeout)
        self.name = str(name)
        self._seed = int(seed)
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._ctx = multiprocessing.get_context(start_method)
        self._ring = HashRing(vnodes=vnodes)
        self._specs: "OrderedDict[str, dict]" = OrderedDict()
        self._snapshots: dict[str, SharedSnapshot] = {}
        self._versions: dict[str, int] = {}
        self._assignment: dict[str, str] = {}
        self._handles: dict[str, _WorkerHandle] = {}
        self._response_q = None
        self._collector: threading.Thread | None = None
        self._collector_stop = threading.Event()
        self._pending: dict[int, tuple[ClusterRequest, _WorkerHandle,
                                       bool]] = {}
        self._req_ids = itertools.count(1)
        self._lock = threading.Lock()
        self._dead: list[str] = []
        self._running = False
        self.chaos = chaos                 # optional ChaosPlan, forked
        self._incarnations: dict[str, int] = {}
        self._supervisor = None
        from ..obs import EVENTS, MetricsRegistry
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.events = events if events is not None else EVENTS
        m = self.metrics
        self._c_served = m.counter(
            "repro_cluster_served_total",
            "Queries answered across all workers")
        self._c_sheds = m.counter(
            "repro_cluster_sheds_total",
            "Queries shed by saturation/deadline backpressure")
        self._f_failures = m.counter(
            "repro_cluster_failures_total",
            "Queries failed by a worker-side error", ("error",))
        self._c_cancel = m.counter(
            "repro_cluster_cancellations_total",
            "Queries abandoned by their caller")
        self._c_unavail = m.counter(
            "repro_cluster_unavailable_total",
            "Queries refused because the owning worker was dead")
        self._c_sat = m.counter(
            "repro_cluster_saturations_total",
            "Dispatches that found the owner's window full")
        self._c_pub = m.counter(
            "repro_cluster_publishes_total",
            "Snapshot hot-swaps propagated to workers")
        self._h_latency = m.histogram(
            "repro_cluster_latency_seconds",
            "Submit-to-settle latency of cluster requests",
            ("namespace",))
        self._h_stage = m.histogram(
            "repro_cluster_stage_seconds",
            "Per-request time in each cluster stage",
            ("namespace", "stage"))

    # ------------------------------------------------------------------
    # Registry-backed counters (read-only compatibility attributes)
    # ------------------------------------------------------------------
    @property
    def served(self) -> int:
        return int(self._c_served.value)

    @property
    def sheds(self) -> int:
        return int(self._c_sheds.value)

    @property
    def failures(self) -> int:
        return int(self._f_failures.total())

    @property
    def cancellations(self) -> int:
        return int(self._c_cancel.value)

    @property
    def unavailable(self) -> int:
        return int(self._c_unavail.value)

    @property
    def saturations(self) -> int:
        return int(self._c_sat.value)

    @property
    def publishes(self) -> int:
        return int(self._c_pub.value)

    # ------------------------------------------------------------------
    # Namespace registration
    # ------------------------------------------------------------------
    def add_table(self, estimator, *, namespace: str | None = None) -> str:
        """Register a single-table namespace served from ``estimator``'s
        current weights (snapshotted into a shared segment).  Must be
        called before :meth:`start`."""
        if self._running:
            raise RuntimeError("add_table() before start(): live "
                               "namespace migration is not supported")
        name = namespace or estimator.table.name
        if name in self._specs:
            raise ValueError(f"namespace {name!r} already registered")
        snap = SharedSnapshot.create(estimator.model.state_dict(),
                                     version=1)
        self._specs[name] = {
            "table": estimator.table,
            "config": estimator.config,
            "order": list(estimator.model.order),
            "columns": frozenset(estimator.table.column_names),
        }
        self._snapshots[name] = snap
        self._versions[name] = 1
        return name

    def namespaces(self) -> list[str]:
        return list(self._specs)

    def version(self, namespace: str) -> int:
        return self._versions[namespace]

    def assignment(self) -> dict[str, str]:
        return dict(self._assignment)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ClusterEstimateService":
        if self._running:
            return self
        if not HAVE_SHARED_MEMORY:
            raise RuntimeError("scale-out serving needs "
                               "multiprocessing.shared_memory")
        if not self._specs:
            raise RuntimeError("no namespaces registered")
        self._response_q = self._ctx.Queue()
        for i in range(self.num_workers):
            worker_id = f"w{i}"
            request_q = self._ctx.Queue()
            process = self._ctx.Process(
                target=_worker_main,
                args=(worker_id, request_q, self._response_q,
                      self.chaos, 0),
                name=f"{self.name}-{worker_id}", daemon=True)
            process.start()
            self._handles[worker_id] = _WorkerHandle(
                worker_id, process, request_q, self.queue_depth)
            self._ring.add(worker_id)
        # Collector starts strictly after every fork: forking a process
        # while parent threads hold queue locks can deadlock the child.
        self._collector_stop.clear()
        self._collector = threading.Thread(
            target=self._collect_loop, name=f"{self.name}-collector",
            daemon=True)
        self._collector.start()
        self._running = True
        self._assignment = self._ring.assign(self._specs,
                                             balance=self.balance)
        acks = [(ns, self._adopt_async(ns)) for ns in self._specs]
        for ns, request in acks:
            request.result(timeout=self.request_timeout)
            self.events.emit("swap_adopt", namespace=ns,
                             worker=self._assignment.get(ns),
                             version=self._versions.get(ns))
        return self

    def stop(self) -> None:
        if not self._running and not self._handles:
            return
        self._running = False
        if self._supervisor is not None:
            # Stop supervision first: a restart racing teardown would
            # re-fork a worker we are about to kill.
            self._supervisor.stop()
            self._supervisor = None
        for handle in self._handles.values():
            try:
                handle.request_q.put((0, "stop"))
            except (ValueError, OSError):
                pass
        for handle in self._handles.values():
            handle.process.join(timeout=5.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=5.0)
        self._collector_stop.set()
        if self._collector is not None:
            self._collector.join(timeout=5.0)
            self._collector = None
        with self._lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for request, _handle, _is_batch in pending:
            request._fail(RuntimeError("cluster stopped"))
        for handle in self._handles.values():
            handle.request_q.close()
            handle.request_q.cancel_join_thread()
            self._ring.remove(handle.worker_id)
        self._handles.clear()
        if self._response_q is not None:
            self._response_q.close()
            self._response_q.cancel_join_thread()
            self._response_q = None
        for snap in self._snapshots.values():
            snap.close()
            snap.unlink()
        self._snapshots.clear()

    def __enter__(self) -> "ClusterEstimateService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._running

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def resolve(self, query, namespace: str | None = None) -> str:
        """The namespace serving ``query`` (explicit ``namespace``
        wins); same rules and typed misses as the single-process
        router, restricted to table namespaces."""
        if namespace is not None:
            if namespace not in self._specs:
                raise UnknownNamespaceError(
                    f"unknown namespace {namespace!r} "
                    f"(have {self.namespaces()})")
            return namespace
        kind, targets = routing_signature(query)
        if kind != "table":
            raise UnknownNamespaceError(
                "cluster workers serve table namespaces; route join "
                "queries through the single-process front door")
        matches = [ns for ns, spec in self._specs.items()
                   if spec["columns"] >= targets]
        if not matches:
            raise UnknownNamespaceError(
                f"no namespace covers columns {sorted(targets)} "
                f"(have {self.namespaces()})")
        if len(matches) > 1:
            raise AmbiguousNamespaceError(
                f"columns {sorted(targets)} match namespaces "
                f"{matches}; pass namespace= to pick one")
        return matches[0]

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def submit(self, query, *, namespace: str | None = None,
               deadline_ms: float | None = None,
               trace=None) -> ClusterRequest:
        """Enqueue one query on its namespace's worker; future-like
        handle.  Saturation sheds deadline-first (typed
        :class:`LoadShedError`); a dead owner raises
        :class:`~repro.serve.placement.WorkerUnavailableError`."""
        ns = self.resolve(query, namespace=namespace)
        deadline = None if deadline_ms is None \
            else time.perf_counter() + deadline_ms / 1e3
        return self._dispatch(ns, [query], None, deadline, single=True,
                              trace=trace)

    def estimate(self, query, *, namespace: str | None = None,
                 deadline_ms: float | None = None) -> float:
        request = self.submit(query, namespace=namespace,
                              deadline_ms=deadline_ms)
        budget = self.request_timeout if deadline_ms is None \
            else deadline_ms / 1e3 + 5.0
        return request.result(timeout=budget)

    def estimate_batch(self, queries: list, *,
                       namespace: str | None = None,
                       seed: int | None = None) -> np.ndarray:
        """Bulk path over a (possibly mixed-namespace) query list.

        Grouping and per-namespace stream order match
        ``RoutedEstimateService.estimate_batch`` exactly, and each
        namespace group runs as one seeded engine batch on its worker —
        so a seeded call is bit-identical to the single-process front
        door on the same queries.  Namespace groups run concurrently
        across workers; the call returns when all have answered.
        """
        if not queries:
            return np.zeros(0, dtype=np.float64)
        groups: "OrderedDict[str, list[int]]" = OrderedDict()
        for i, query in enumerate(queries):
            groups.setdefault(self.resolve(query, namespace=namespace),
                              []).append(i)
        requests: dict[str, ClusterRequest] = {}
        for ns, indices in groups.items():
            requests[ns] = self._dispatch(
                ns, [queries[i] for i in indices], seed, None)
        out = np.empty(len(queries), dtype=np.float64)
        for ns, indices in groups.items():
            out[indices] = requests[ns].result(
                timeout=self.request_timeout)
        return out

    # ------------------------------------------------------------------
    # Publication + healing
    # ------------------------------------------------------------------
    def publish(self, namespace: str, estimator,
                source: str = "refine") -> dict:
        """Hot-swap ``namespace`` to ``estimator``'s current weights.

        The state is serialized **once** into the namespace's shared
        segment (seqlock-protected, so a concurrently attaching worker
        never sees a torn version); the owning worker then gets a
        ``publish`` control message and rebuilds its compiled engine
        from the buffer.  Returns propagation timing for the bench.
        """
        if namespace not in self._specs:
            raise UnknownNamespaceError(
                f"unknown namespace {namespace!r}")
        if not self._running:
            raise RuntimeError("publish() needs a started cluster")
        version = self._versions[namespace] + 1
        t0 = time.perf_counter()
        self._snapshots[namespace].publish(
            estimator.model.state_dict(), version)
        encode_s = time.perf_counter() - t0
        handle = self._owner_handle(namespace)
        request = self._control(handle, "publish", namespace)
        ack_version, load_s = request.result(
            timeout=self.request_timeout)
        propagation_ms = (time.perf_counter() - t0) * 1e3
        if ack_version != version:
            raise RuntimeError(
                f"worker {handle.worker_id} acked version "
                f"{ack_version}, expected {version}")
        self._versions[namespace] = version
        self._c_pub.inc()
        self.events.emit("swap_publish", namespace=namespace,
                         version=version, source=source,
                         worker=handle.worker_id,
                         propagation_ms=propagation_ms)
        return {"namespace": namespace, "version": version,
                "source": source, "worker": handle.worker_id,
                "encode_ms": encode_s * 1e3,
                "load_ms": load_s * 1e3,
                "propagation_ms": propagation_ms}

    def recover(self, timeout: float | None = None) -> dict:
        """Heal after worker crashes: drop dead workers from the ring,
        re-place their namespaces on survivors (bounded-load walk: only
        ~1/N move), and re-adopt each moved namespace from its retained
        snapshot segment at its current version."""
        for wid in [wid for wid, handle in self._handles.items()
                    if not handle.alive()]:
            self._mark_dead(wid)
        dead, self._dead = self._dead, []
        if not self._handles:
            raise WorkerUnavailableError(
                "all cluster workers are down")
        new_assignment = self._ring.assign(self._specs,
                                           balance=self.balance)
        moved = [ns for ns, wid in new_assignment.items()
                 if self._assignment.get(ns) != wid]
        self._assignment = new_assignment
        acks = [(ns, self._adopt_async(ns)) for ns in moved]
        for ns, request in acks:
            request.result(timeout=timeout or self.request_timeout)
            self.events.emit("swap_adopt", namespace=ns,
                             worker=self._assignment.get(ns),
                             version=self._versions.get(ns))
        self.events.emit("worker_recover", removed=sorted(dead),
                         moved=sorted(moved))
        return {"removed": sorted(dead), "moved": sorted(moved)}

    def dead_workers(self) -> list[str]:
        """Quarantine and return the currently-dead workers.

        Any handle whose process has exited is marked dead (removed
        from the ring, its in-flight requests failed typed) and the
        accumulated dead list is returned *without clearing it* —
        :meth:`restart_worker` and :meth:`recover` consume entries.
        This is the supervisor's detection probe."""
        for wid in [wid for wid, handle in list(self._handles.items())
                    if not handle.alive()]:
            self._mark_dead(wid)
        return list(self._dead)

    def fail_worker(self, worker_id: str) -> None:
        """Administratively take a worker down (supervisor eviction):
        terminate the process if still alive, then quarantine it
        exactly like a crash.  Follow with :meth:`recover` to re-place
        its namespaces on the survivors."""
        handle = self._handles.get(worker_id)
        if handle is not None:
            if handle.alive():
                handle.process.terminate()
                handle.process.join(timeout=5.0)
            self._mark_dead(worker_id)

    def restart_worker(self, worker_id: str) -> dict:
        """Re-fork a dead worker under its original id.

        Consistent hashing is deterministic, so re-adding the id
        restores the pre-crash placement; the namespaces that move back
        re-adopt from their retained shared-memory snapshot segments at
        their current versions — the restarted worker serves
        bit-identical estimates to its previous incarnation.  The
        worker's ``incarnation`` counter is bumped and passed into the
        new process (chaos faults key on it to express crash-once
        versus crash-loop).

        The restart is all-or-nothing: if any re-adoption fails the
        fresh process is killed and quarantined back onto the dead
        list (a half-adopted worker must never serve), so the
        supervisor's next pass retries with backoff or evicts."""
        if not self._running:
            raise RuntimeError("restart_worker() needs a running "
                               "cluster")
        handle = self._handles.get(worker_id)
        if handle is not None:
            if handle.alive():
                return {"restarted": False, "worker": worker_id,
                        "reason": "alive"}
            self._mark_dead(worker_id)
        if worker_id not in self._dead:
            raise KeyError(f"unknown dead worker {worker_id!r} "
                           f"(dead: {self._dead})")
        self._dead.remove(worker_id)
        incarnation = self._incarnations.get(worker_id, 0) + 1
        self._incarnations[worker_id] = incarnation
        request_q = self._ctx.Queue()
        # Fork with the collector parked: forking while a parent
        # thread sits inside the response queue's internal locks can
        # deadlock the child (same discipline as start(), where the
        # collector starts strictly after every fork).
        self._pause_collector()
        try:
            process = self._ctx.Process(
                target=_worker_main,
                args=(worker_id, request_q, self._response_q,
                      self.chaos, incarnation),
                name=f"{self.name}-{worker_id}", daemon=True)
            process.start()
        finally:
            self._resume_collector()
        self._handles[worker_id] = _WorkerHandle(
            worker_id, process, request_q, self.queue_depth)
        self._ring.add(worker_id)
        new_assignment = self._ring.assign(self._specs,
                                           balance=self.balance)
        # The fresh process has no state: every namespace it now owns
        # must be (re-)adopted, even when the deterministic ring hands
        # it exactly its pre-crash placement (assignment unchanged).
        moved = [ns for ns, wid in new_assignment.items()
                 if wid == worker_id or self._assignment.get(ns) != wid]
        self._assignment = new_assignment
        try:
            acks = [(ns, self._adopt_async(ns)) for ns in moved]
            for ns, request in acks:
                request.result(timeout=self.request_timeout)
                self.events.emit("swap_adopt", namespace=ns,
                                 worker=self._assignment.get(ns),
                                 version=self._versions.get(ns))
        except BaseException:
            # Adoption failed (snapshot read error, wedged fork,
            # timeout): a half-adopted worker must not stay published
            # as healthy — quarantine it so the next supervision pass
            # retries the restart with backoff or evicts.  _mark_dead
            # fails any request that raced into its inbox typed and
            # puts the id back on the dead list.
            fresh = self._handles.get(worker_id)
            if fresh is not None and fresh.alive():
                fresh.process.kill()
                fresh.process.join(timeout=5.0)
            self._mark_dead(worker_id)
            raise
        self.events.emit("worker_restart", worker=worker_id,
                         incarnation=incarnation, moved=sorted(moved))
        return {"restarted": True, "worker": worker_id,
                "incarnation": incarnation, "moved": sorted(moved)}

    def supervise(self, **kwargs):
        """Attach and start a
        :class:`~repro.serve.supervisor.WorkerSupervisor` on this
        cluster (kwargs forwarded to its constructor); idempotent while
        one is running.  ``stop()`` stops it first."""
        from .supervisor import WorkerSupervisor
        if self._supervisor is not None and self._supervisor.running:
            return self._supervisor
        self._supervisor = WorkerSupervisor(self, **kwargs).start()
        return self._supervisor

    def _pause_collector(self) -> None:
        self._collector_stop.set()
        if self._collector is not None:
            self._collector.join(timeout=5.0)
            self._collector = None

    def _resume_collector(self) -> None:
        self._collector_stop.clear()
        self._collector = threading.Thread(
            target=self._collect_loop, name=f"{self.name}-collector",
            daemon=True)
        self._collector.start()

    def ping(self) -> dict:
        """Round-trip worker stats (liveness probe)."""
        out = {}
        for wid, handle in list(self._handles.items()):
            if not handle.alive():
                out[wid] = {"alive": False}
                continue
            request = self._control(handle, "ping")
            out[wid] = {"alive": True,
                        **request.result(timeout=self.request_timeout)}
        return out

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _owner_handle(self, namespace: str) -> _WorkerHandle:
        worker_id = self._assignment.get(namespace)
        handle = self._handles.get(worker_id)
        if handle is None or not handle.alive():
            if handle is not None:
                self._mark_dead(worker_id)
            raise WorkerUnavailableError(
                f"worker {worker_id!r} owning namespace {namespace!r} "
                "is unavailable; call recover() to re-place it")
        return handle

    def _adopt_async(self, namespace: str) -> ClusterRequest:
        spec = self._specs[namespace]
        handle = self._owner_handle(namespace)
        return self._control(
            handle, "adopt", namespace, spec["table"], spec["config"],
            spec["order"], self._snapshots[namespace].name, self._seed)

    def _control(self, handle: _WorkerHandle, kind: str,
                 *payload) -> ClusterRequest:
        """Send a control message (no backpressure window: control is
        rare and must not deadlock behind a full data window)."""
        request = ClusterRequest(payload[0] if payload else "", 0, None)
        req_id = next(self._req_ids)
        with self._lock:
            self._pending[req_id] = (request, handle, False)
        if self._handles.get(handle.worker_id) is not handle:
            # Same lost race as in _dispatch: the owner died and its
            # orphan sweep already ran; fail typed rather than hang.
            with self._lock:
                self._pending.pop(req_id, None)
            request._fail(WorkerUnavailableError(
                f"worker {handle.worker_id} died before the control "
                "message was dispatched"))
            return request
        try:
            handle.request_q.put((req_id, kind, *payload))
        except (ValueError, OSError) as exc:
            with self._lock:
                self._pending.pop(req_id, None)
            request._fail(WorkerUnavailableError(
                f"worker {handle.worker_id} queue is closed: {exc}"))
        return request

    def _dispatch(self, namespace: str, queries: list,
                  seed: int | None, deadline: float | None,
                  single: bool = False, trace=None) -> ClusterRequest:
        try:
            handle = self._owner_handle(namespace)
        except WorkerUnavailableError:
            self._c_unavail.inc(len(queries))
            raise
        request = ClusterRequest(namespace, len(queries), deadline,
                                 single=single, trace=trace)
        if not handle.slots.acquire(blocking=False):
            # Saturated: deadline-first shedding.  A deadlined request
            # only waits as long as its budget minus the worker's
            # observed batch latency allows; a deadline-free request
            # blocks for a slot (pure backpressure).
            self._c_sat.inc()
            if deadline is not None:
                headroom = handle.ewma_seconds or 0.0
                budget = deadline - time.perf_counter() - headroom
                if budget <= 0 or not handle.slots.acquire(
                        timeout=budget):
                    self._c_sheds.inc(len(queries))
                    self.events.emit("shed", namespace=namespace,
                                     reason="saturated",
                                     worker=handle.worker_id,
                                     headroom_s=headroom)
                    request._fail(LoadShedError(
                        f"worker {handle.worker_id} saturated "
                        f"({handle.queue_depth} batches in flight) and "
                        "the remaining deadline budget cannot cover its "
                        f"batch latency (~{headroom * 1e3:.1f} ms)"),
                        shed=True)
                    return request
            else:
                handle.slots.acquire()
        if not handle.alive():
            handle.slots.release()
            self._mark_dead(handle.worker_id)
            self._c_unavail.inc(len(queries))
            raise WorkerUnavailableError(
                f"worker {handle.worker_id!r} died while dispatching "
                f"to namespace {namespace!r}; call recover()")
        req_id = next(self._req_ids)
        with self._lock:
            self._pending[req_id] = (request, handle, True)
            handle.in_flight += 1
            handle.dispatched += 1
        if self._handles.get(handle.worker_id) is not handle:
            # Lost race with _mark_dead: its orphan sweep ran between
            # the alive() check above and this registration, so nothing
            # will ever settle the entry — fail it here, typed, instead
            # of letting the caller wait out the full request timeout.
            with self._lock:
                entry = self._pending.pop(req_id, None)
                if entry is not None:
                    handle.in_flight -= 1
            if entry is not None:
                handle.slots.release()
                self._c_unavail.inc(request.count)
                request._fail(WorkerUnavailableError(
                    f"worker {handle.worker_id!r} died while "
                    f"dispatching to namespace {namespace!r}; call "
                    "recover()"))
            return request
        request.dispatched_at = time.perf_counter()
        self._h_stage.labels(namespace=namespace, stage="slot_wait") \
            .observe(request.dispatched_at - request.submitted_at)
        if trace is not None:
            trace.add_span("slot_wait", request.submitted_at,
                           request.dispatched_at,
                           worker=handle.worker_id)
        try:
            handle.request_q.put(
                (req_id, "batch", namespace, list(queries), seed,
                 deadline, request.dispatched_at))
        except (ValueError, OSError) as exc:
            with self._lock:
                self._pending.pop(req_id, None)
                handle.in_flight -= 1
            handle.slots.release()
            request._fail(WorkerUnavailableError(
                f"worker {handle.worker_id} queue is closed: {exc}"))
        return request

    def _mark_dead(self, worker_id: str) -> None:
        handle = self._handles.pop(worker_id, None)
        if handle is None:
            return
        self._dead.append(worker_id)
        self._ring.remove(worker_id)
        with self._lock:
            orphaned = [req_id for req_id, (_r, h, _b)
                        in self._pending.items() if h is handle]
            entries = [self._pending.pop(req_id) for req_id in orphaned]
        self.events.emit("worker_crash", worker=worker_id,
                         orphaned=len(entries))
        for request, _handle, is_batch in entries:
            if is_batch:
                self._c_unavail.inc(request.count)
            request._fail(WorkerUnavailableError(
                f"worker {worker_id!r} died with the request in "
                "flight"))
        handle.request_q.close()
        handle.request_q.cancel_join_thread()

    def _collect_loop(self) -> None:
        while not self._collector_stop.is_set():
            try:
                item = self._response_q.get(timeout=0.2)
            except (queue_mod.Empty, OSError, ValueError):
                continue
            worker_id, req_id, status, payload = item
            with self._lock:
                entry = self._pending.pop(req_id, None)
                if entry is not None and entry[2]:
                    entry[1].in_flight -= 1
            if entry is None:
                continue
            request, handle, is_batch = entry
            now = time.perf_counter()
            if is_batch:
                handle.slots.release()
                handle.observe_latency(now - request.submitted_at)
            if status == "ok":
                if is_batch:
                    values, version, compute_s, worker_t0 = payload
                    self._observe_stages(request, worker_id, compute_s,
                                         worker_t0, now)
                    if request._complete(values, version, worker_id):
                        self._c_served.inc(request.count)
                        self._h_latency.labels(
                            namespace=request.namespace).observe(
                            request.completed_at - request.submitted_at)
                    else:
                        self._c_cancel.inc(request.count)
                        self.events.emit("cancel",
                                         namespace=request.namespace,
                                         worker=worker_id,
                                         stage="post_compute")
                else:
                    request._complete(payload, None, worker_id)
            elif status == "shed":
                if request._fail(LoadShedError(str(payload)), shed=True):
                    self._c_sheds.inc(request.count)
                    self.events.emit("shed", namespace=request.namespace,
                                     reason="worker_deadline",
                                     worker=worker_id)
            else:
                error = payload if isinstance(payload, BaseException) \
                    else RuntimeError(str(payload))
                if request._fail(error) and is_batch:
                    if isinstance(error, WorkerUnavailableError):
                        # Worker-reported transient unavailability
                        # (e.g. not-yet-adopted namespace during a
                        # restart) is retryable, not a failure.
                        self._c_unavail.inc(request.count)
                    else:
                        self._f_failures.labels(
                            error=type(error).__name__).inc(request.count)

    def _observe_stages(self, request: ClusterRequest, worker_id: str,
                        compute_s: float, worker_t0: float,
                        now: float) -> None:
        """Per-stage accounting from the response envelope's worker-side
        timestamps (perf_counter is host-wide on Linux, so they share
        the parent's clock)."""
        ns = request.namespace
        sent = request.dispatched_at
        if sent is None:
            return
        queue_wait = max(0.0, worker_t0 - sent)
        collect = max(0.0, now - (worker_t0 + compute_s))
        self._h_stage.labels(namespace=ns, stage="worker_queue_wait") \
            .observe(queue_wait)
        self._h_stage.labels(namespace=ns, stage="worker_compute") \
            .observe(compute_s)
        self._h_stage.labels(namespace=ns, stage="collect") \
            .observe(collect)
        if request.trace is not None:
            request.trace.add_span("worker_queue_wait", sent, worker_t0,
                                   worker=worker_id)
            request.trace.add_span("worker_compute", worker_t0,
                                   worker_t0 + compute_s,
                                   worker=worker_id, batch=request.count)
            request.trace.add_span("collect", worker_t0 + compute_s, now)

    # ------------------------------------------------------------------
    # Metrics exposition
    # ------------------------------------------------------------------
    def worker_metrics(self, timeout: float | None = None) -> dict:
        """Poll every live worker for its registry snapshot."""
        out: dict[str, dict] = {}
        requests = []
        for wid, handle in list(self._handles.items()):
            if not handle.alive():
                continue
            requests.append((wid, self._control(handle, "metrics")))
        for wid, request in requests:
            try:
                out[wid] = request.result(
                    timeout=timeout or self.request_timeout)
            except BaseException:  # noqa: BLE001 - dead worker mid-poll
                continue
        return out

    def metrics_snapshots(self) -> list:
        """``(snapshot, extra_labels)`` pairs for the parent registry and
        every worker's, ready for :meth:`MetricsRegistry.merged` — the
        hook :class:`~repro.serve.net.HTTPFrontDoor` uses to render
        cluster-wide ``/metrics``."""
        snaps = [(self.metrics.snapshot(), None)]
        for wid, snap in self.worker_metrics().items():
            snaps.append((snap, {"worker": wid}))
        return snaps

    def merged_metrics(self):
        """Fresh registry merging the parent and all workers (fixed
        bucket layouts make the histogram merge exact)."""
        from ..obs import MetricsRegistry
        return MetricsRegistry.merged(self.metrics_snapshots())

    def stats(self) -> dict:
        workers = {}
        for wid, handle in self._handles.items():
            workers[wid] = {
                "alive": handle.alive(),
                "in_flight": handle.in_flight,
                "dispatched": handle.dispatched,
                "ewma_batch_seconds": handle.ewma_seconds,
                "incarnation": self._incarnations.get(wid, 0),
            }
        return {"workers": workers,
                "supervisor": None if self._supervisor is None
                else self._supervisor.stats(),
                "assignment": dict(self._assignment),
                "versions": dict(self._versions),
                "served": self.served, "sheds": self.sheds,
                "failures": self.failures,
                "cancellations": self.cancellations,
                "unavailable": self.unavailable,
                "saturations": self.saturations,
                "publishes": self.publishes}
