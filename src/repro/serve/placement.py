"""Consistent-hash namespace placement for the scale-out serving tier.

Namespaces map to worker processes through a classic consistent-hash
ring (:class:`HashRing`): every worker contributes ``vnodes`` virtual
points hashed onto a 64-bit circle, and a namespace is owned by the
first worker point at or after its own hash.  Adding or removing one of
``N`` workers therefore moves only ~1/N of the namespaces — the property
that makes worker crashes and elastic resizes cheap (only the migrated
namespaces pay a model re-adoption).

Plain ring walks can be lopsided for small key sets (a handful of
namespaces over a handful of workers), so :meth:`HashRing.assign` also
offers *bounded-load* placement (Mirrokni et al.'s consistent hashing
with bounded loads): each key walks the ring but skips workers already
at the load cap ``ceil(len(keys) * balance / len(workers))``.  With
``balance=1.0`` the assignment is perfectly even while still inheriting
the ring's stability for unaffected keys.

Hashes come from ``blake2b`` — stable across processes and Python runs
(never ``hash()``, which is salted per process).
"""

from __future__ import annotations

import bisect
import hashlib
import math
from collections.abc import Iterable, Iterator


class WorkerUnavailableError(RuntimeError):
    """The worker owning a namespace is down (crashed or stopped) and
    its namespaces have not been re-adopted elsewhere yet."""


def stable_hash(key: str) -> int:
    """64-bit process-stable hash of ``key``."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Consistent-hash ring over worker ids with virtual nodes."""

    def __init__(self, workers: Iterable[str] = (), vnodes: int = 64):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = int(vnodes)
        self._points: list[int] = []          # sorted vnode hashes
        self._owners: dict[int, str] = {}     # vnode hash -> worker id
        self._workers: set[str] = set()
        for worker in workers:
            self.add(worker)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def add(self, worker: str) -> None:
        worker = str(worker)
        if worker in self._workers:
            return
        self._workers.add(worker)
        for i in range(self.vnodes):
            point = stable_hash(f"{worker}#{i}")
            # Collisions across 64-bit blake2b are vanishingly rare; the
            # deterministic tiebreak keeps the ring identical everywhere.
            while point in self._owners and self._owners[point] != worker:
                point = (point + 1) & (2**64 - 1)
            self._owners[point] = worker
            bisect.insort(self._points, point)

    def remove(self, worker: str) -> None:
        worker = str(worker)
        if worker not in self._workers:
            return
        self._workers.discard(worker)
        dead = [p for p, w in self._owners.items() if w == worker]
        for point in dead:
            del self._owners[point]
        self._points = sorted(self._owners)

    @property
    def workers(self) -> list[str]:
        return sorted(self._workers)

    def __len__(self) -> int:
        return len(self._workers)

    def __contains__(self, worker: str) -> bool:
        return worker in self._workers

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def walk(self, key: str) -> Iterator[str]:
        """Distinct workers in ring order starting at ``key``'s hash."""
        if not self._points:
            return
        start = bisect.bisect_left(self._points, stable_hash(key))
        seen: set[str] = set()
        n = len(self._points)
        for step in range(n):
            worker = self._owners[self._points[(start + step) % n]]
            if worker not in seen:
                seen.add(worker)
                yield worker

    def owner(self, key: str) -> str:
        """The worker owning ``key`` (first ring point at/after its
        hash)."""
        for worker in self.walk(key):
            return worker
        raise WorkerUnavailableError("hash ring has no workers")

    def owners(self, key: str, n: int) -> list[str]:
        """Up to ``n`` distinct workers for ``key`` (replica sets)."""
        out: list[str] = []
        for worker in self.walk(key):
            out.append(worker)
            if len(out) >= n:
                break
        return out

    # ------------------------------------------------------------------
    def assign(self, keys: Iterable[str],
               balance: float | None = None) -> dict[str, str]:
        """Place every key on a worker.

        ``balance=None`` is the plain ring walk (maximal stability).
        With a float, bounded-load placement caps each worker at
        ``ceil(len(keys) * balance / len(workers))`` keys: a key whose
        natural owner is full walks on to the next under-cap worker.
        Keys are placed in ring-hash order so the result is deterministic
        and membership changes move only keys near the changed worker
        (plus any overflow they displace).
        """
        keys = list(dict.fromkeys(str(k) for k in keys))
        if not self._workers:
            raise WorkerUnavailableError("hash ring has no workers")
        if balance is None:
            return {key: self.owner(key) for key in keys}
        if balance < 1.0:
            raise ValueError("balance must be >= 1.0")
        cap = max(1, math.ceil(len(keys) * balance / len(self._workers)))
        loads: dict[str, int] = {w: 0 for w in self._workers}
        out: dict[str, str] = {}
        for key in sorted(keys, key=stable_hash):
            placed = None
            for worker in self.walk(key):
                if loads[worker] < cap:
                    placed = worker
                    break
            if placed is None:             # every worker at cap: spill to
                placed = self.owner(key)   # the natural owner
            loads[placed] += 1
            out[key] = placed
        return out
