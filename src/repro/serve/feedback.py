"""Feedback collection and drift-triggered refinement decisions.

The executor that runs queries to completion knows their true
cardinalities; feeding those observations back is the "learning from
queries" half of the paper run continuously (Section 4.5).  The collector
keeps a rolling :class:`~repro.workload.metrics.RollingQErrorMonitor` of
serving accuracy and a bounded buffer of the most recent labeled queries.
When the monitored q-error quantile degrades past a threshold — workload
drift, data drift, or both — ``should_refine`` turns true and ``drain``
hands the buffered observations to the trainer as a
:class:`~repro.workload.predicate.LabeledWorkload`.
"""

from __future__ import annotations

import threading
from collections import deque

import numpy as np

from ..workload.metrics import RollingQErrorMonitor
from ..workload.predicate import LabeledWorkload, Query


class FeedbackCollector:
    """Rolling labeled-workload buffer + q-error drift monitor.

    ``quantile``/``threshold`` define the degradation trigger: refinement
    is suggested once the rolling ``quantile`` q-error exceeds
    ``threshold`` and at least ``min_observations`` have arrived since the
    last drain (so one outlier straggler cannot thrash the trainer).
    """

    def __init__(self, window: int = 256, capacity: int = 512,
                 min_observations: int = 64, quantile: float = 0.9,
                 threshold: float = 4.0):
        self.monitor = RollingQErrorMonitor(window=window)
        self.quantile = float(quantile)
        self.threshold = float(threshold)
        self.min_observations = int(min_observations)
        self._lock = threading.Lock()
        self._buffer: deque[tuple[Query, float]] = deque(maxlen=int(capacity))
        self._since_drain = 0
        self.total_observed = 0

    # ------------------------------------------------------------------
    def record(self, query: Query, estimate: float,
               true_cardinality: float) -> float:
        """Observe one executed query; returns its serving q-error."""
        with self._lock:
            err = self.monitor.add(estimate, true_cardinality)
            self._buffer.append((query, float(true_cardinality)))
            self._since_drain += 1
            self.total_observed += 1
            return err

    def drift(self) -> float:
        """Current rolling q-error at the configured quantile."""
        with self._lock:
            return self.monitor.quantile(self.quantile)

    def should_refine(self) -> bool:
        with self._lock:
            if self._since_drain < self.min_observations:
                return False
            if len(self.monitor) < self.min_observations:
                return False
            return self.monitor.quantile(self.quantile) > self.threshold

    def clear_buffer(self) -> None:
        """Drop buffered labels without touching the drift monitor."""
        with self._lock:
            self._buffer.clear()

    def reset_window(self) -> None:
        """Atomically drop buffered labels *and* the drift window.

        Called when inserts arrive: cardinalities observed against the
        pre-insert table no longer label the current data distribution,
        and drift should be measured fresh against the new regime.  One
        lock acquisition — concurrent ``should_refine``/``stats`` never
        see the monitor mutate mid-read.
        """
        with self._lock:
            self._buffer.clear()
            self.monitor.reset()

    # ------------------------------------------------------------------
    def drain(self) -> LabeledWorkload | None:
        """Labeled workload of the buffered feedback; resets the trigger.

        The monitor window is cleared too: after the trainer ingests this
        feedback and publishes, the old model's errors no longer describe
        the active model, and a stale window would re-trigger immediately.
        """
        with self._lock:
            if not self._buffer:
                return None
            queries = [q for q, _ in self._buffer]
            cards = np.array([c for _, c in self._buffer], dtype=np.float64)
            self._buffer.clear()
            self._since_drain = 0
            self.monitor.reset()
            return LabeledWorkload(queries, cards)

    def __len__(self) -> int:
        with self._lock:
            return len(self._buffer)

    def stats(self) -> dict:
        with self._lock:
            summary = self.monitor.summary()
            return {"buffered": len(self._buffer),
                    "observed": self.total_observed,
                    "since_drain": self._since_drain,
                    "rolling_qerror": None if summary is None
                    else summary.row(),
                    "drift_quantile": self.quantile,
                    "drift_threshold": self.threshold,
                    "drift": self.monitor.quantile(self.quantile)
                    if len(self.monitor) else None}
