"""The continuously-learning serving loop.

``UAEServer`` owns one *trainer* UAE (the live weights that keep
learning) and serves estimates exclusively from immutable registry
snapshots of it.  The loop:

1. ``estimate``/``submit``/``estimate_batch`` answer traffic from the
   active snapshot (micro-batched, cached);
2. ``observe`` feeds executed queries' true cardinalities into the
   :class:`~repro.serve.feedback.FeedbackCollector`;
3. when the rolling q-error drifts past the collector's threshold,
   ``maintain`` (or ``refine``) drains the feedback into
   ``UAE.ingest_queries`` on the trainer — Section 4.5's query-driven
   refinement — and publishes a new snapshot;
4. ``ingest_data`` does the data half: new tuples refine the trainer via
   the data loss, then publish.

Refinement can run inline (deterministic, used by tests) or in a
background thread (``refine(background=True)``): serving continues on the
old snapshot until the publish atomically swaps the new one in.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from ..chaos import ChaosPlan, corrupt_truth, poison_state
from ..core.uae import UAE
from ..obs import EVENTS, MetricsRegistry
from ..workload.predicate import LabeledWorkload, Query
from .cache import ResultCache
from .feedback import FeedbackCollector
from .registry import ModelRegistry
from .service import EstimateRequest, EstimateService


class UAEServer:
    """Registry + service + cache + feedback, wired into one loop."""

    def __init__(self, estimator: UAE, *, feedback: FeedbackCollector | None = None,
                 cache_capacity: int = 8192, keep_versions: int = 3,
                 max_batch: int = 32, max_wait_ms: float = 2.0,
                 refine_epochs: int = 8, data_epochs: int = 3,
                 auto_refine: bool = False, seed: int = 0,
                 train_backend: str | None = None,
                 namespace: str = "default", pool=None,
                 expander=None, scale: float | None = None,
                 metrics: MetricsRegistry | None = None, events=None,
                 chaos: ChaosPlan | None = None, modelops=None):
        # Refinement runs on the trainer's configured training backend —
        # the fused engine by default (see ``UAEConfig.train_backend``),
        # which is what keeps drift-triggered hot-swaps fresh under live
        # traffic.  Pass ``train_backend="legacy"`` to pin the reference
        # autograd path.
        if train_backend is not None:
            estimator.train_backend = train_backend
        self.trainer = estimator
        # Multi-table wiring (see repro.serve.router): the namespace this
        # server answers for, an optional shared RefinementPool that
        # bounds trainer concurrency across namespaces, and the join
        # translation hooks (constraint expander + cardinality scale)
        # forwarded to the EstimateService and used again when feedback
        # is ingested.
        self.namespace = str(namespace)
        self.pool = pool
        self.expander = expander
        self.scale = None if scale is None else float(scale)
        if expander is not None and self.scale is None:
            raise ValueError("an expander needs an explicit cardinality "
                             "scale (feedback selectivities depend on it)")
        self.registry = ModelRegistry(estimator, keep_versions=keep_versions,
                                      name=namespace)
        self.cache = ResultCache(capacity=cache_capacity)
        # One metrics registry + event log threaded through the whole
        # stack (service, trainer, engine); routed deployments pass a
        # shared registry so every namespace lands in one /metrics.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.events = events if events is not None else EVENTS
        estimator.metrics = self.metrics
        self.service = EstimateService(self.registry, self.cache,
                                       max_batch=max_batch,
                                       max_wait_ms=max_wait_ms, seed=seed,
                                       expander=expander, scale=scale,
                                       metrics=self.metrics,
                                       events=self.events)
        # Not `feedback or ...`: an empty collector is falsy (__len__).
        self.feedback = feedback if feedback is not None \
            else FeedbackCollector()
        self.refine_epochs = int(refine_epochs)
        self.data_epochs = int(data_epochs)
        self.auto_refine = bool(auto_refine)
        # Reentrant: refine() drains, spawns/calls _refine_now, and
        # checks liveness as one atomic step, and _refine_now re-acquires
        # on the inline path.
        self._refine_lock = threading.RLock()
        self._refine_thread: threading.Thread | None = None
        self._staged_data: list[np.ndarray] = []
        self.refinements: list[dict] = []
        ns = self.namespace
        m = self.metrics
        self._c_swaps = m.counter(
            "repro_swaps_total", "Model versions hot-swapped live",
            ("namespace", "source"))
        self._c_rollbacks = m.counter(
            "repro_rollbacks_total", "Registry rollbacks to a prior version",
            ("namespace",)).labels(namespace=ns)
        self._c_refine = m.counter(
            "repro_refinements_total", "Refinement runs completed",
            ("namespace",)).labels(namespace=ns)
        self._h_refine = m.histogram(
            "repro_refinement_seconds", "Wall time per refinement run",
            ("namespace",)).labels(namespace=ns)
        self._c_drift = m.counter(
            "repro_drift_triggers_total",
            "Times the rolling q-error crossed the refinement threshold",
            ("namespace",)).labels(namespace=ns)
        # Rolling serving-accuracy gauges (satellite of the continuous-
        # learning loop): sampled lazily at scrape time, so an idle
        # collector costs nothing.
        fb = self.feedback
        m.gauge("repro_qerror", "Rolling serving q-error quantile",
                ("namespace", "quantile")) \
            .labels(namespace=ns, quantile="p50") \
            .set_function(lambda: fb.monitor.quantile(0.5))
        m.gauge("repro_qerror", "Rolling serving q-error quantile",
                ("namespace", "quantile")) \
            .labels(namespace=ns, quantile="p95") \
            .set_function(lambda: fb.monitor.quantile(0.95))
        m.gauge("repro_feedback_observations",
                "Labeled feedback samples in the rolling window",
                ("namespace",)) \
            .labels(namespace=ns).set_function(lambda: float(len(fb.monitor)))
        # Self-healing model-ops (repro.serve.modelops): shadow-validated
        # publishes + tripwire auto-rollback + post-swap cache warming.
        # Pass a ModelOpsConfig (or True for defaults); the controller
        # attaches itself as ``self.modelops``.  ``chaos`` is the seeded
        # fault-injection plan the healing paths are tested against.
        self.chaos = chaos
        self.modelops = None
        if modelops is not None and modelops is not False:
            from .modelops import ModelOps, ModelOpsConfig
            if isinstance(modelops, ModelOps):
                modelops.server = self
                self.modelops = modelops
            else:
                config = modelops if isinstance(modelops, ModelOpsConfig) \
                    else None
                ModelOps(self, config)      # attaches as self.modelops

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def start(self) -> "UAEServer":
        self.service.start()
        return self

    def stop(self, timeout: float | None = 5.0) -> None:
        """Wait (bounded) for an in-flight refinement, then stop serving.

        A standalone server owns its refinement thread, so it joins it
        here; pool-backed servers leave drain/cancel to the shared
        pool's :meth:`~repro.serve.router.RefinementPool.close` — the
        pool outlives any single namespace.
        """
        self.join_refinement(timeout=timeout)
        self.service.stop()

    def __enter__(self) -> "UAEServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def estimate(self, query: Query,
                 deadline_ms: float | None = None) -> float:
        return self.service.estimate(query, deadline_ms=deadline_ms)

    def submit(self, query: Query, deadline_ms: float | None = None,
               trace=None) -> EstimateRequest:
        return self.service.submit(query, deadline_ms=deadline_ms,
                                   trace=trace)

    def estimate_batch(self, queries: list[Query], seed: int | None = None,
                       use_cache: bool = True) -> np.ndarray:
        return self.service.estimate_batch(queries, seed=seed,
                                           use_cache=use_cache)

    # ------------------------------------------------------------------
    # Feedback + continuous learning
    # ------------------------------------------------------------------
    def observe(self, query: Query, true_cardinality: float,
                estimate: float | None = None) -> float:
        """Record an executed query's truth; returns its serving q-error.

        With ``auto_refine`` set, a drift past the feedback threshold
        kicks off background refinement (at most one at a time).
        """
        if estimate is None:
            estimate = self.estimate(query)
        if self.chaos is not None:
            fault = self.chaos.fires("feedback.record",
                                     namespace=self.namespace)
            if fault is not None and fault.action == "corrupt":
                true_cardinality = corrupt_truth(true_cardinality, fault)
                self.events.emit("chaos_fault", hook="feedback.record",
                                 namespace=self.namespace,
                                 action=fault.action)
        err = self.feedback.record(query, estimate, true_cardinality)
        if self.modelops is not None:
            self.modelops.on_observation(query, estimate,
                                         true_cardinality, err)
        if self.auto_refine and self.feedback.should_refine() \
                and not self.refining:
            self._drift_triggered()
            self.refine(background=True)
        return err

    @property
    def refining(self) -> bool:
        thread = self._refine_thread
        return thread is not None and thread.is_alive()

    def _drift_triggered(self) -> None:
        self._c_drift.inc()
        self.events.emit("drift_trigger", namespace=self.namespace,
                         drift=self.feedback.drift(),
                         threshold=self.feedback.threshold)

    def maintain(self) -> dict | None:
        """One inline maintenance step: refine iff drift says so."""
        if not self.feedback.should_refine():
            return None
        self._drift_triggered()
        return self.refine()

    def stage_data(self, new_codes: np.ndarray) -> None:
        """Buffer inserted tuples for the next refinement.

        Cheaper than an immediate ``ingest_data`` publish when inserts
        trickle in: the next (drift-triggered or explicit) refinement
        catches the model up on data and queries in one hot-swap.
        Buffered feedback labels are dropped — cardinalities observed
        against the pre-insert table no longer describe the data — and
        the drift window restarts, so degradation is measured purely on
        post-insert traffic.
        """
        with self._refine_lock:
            self._staged_data.append(np.asarray(new_codes))
        self.feedback.reset_window()

    def refine(self, epochs: int | None = None,
               background: bool = False) -> dict | threading.Thread | None:
        """Drain feedback (and staged inserts) into Section 4.5 ingestion
        and hot-swap.

        Returns the refinement record (inline) or the running thread /
        pool job (background); ``None`` when a refinement is already in
        flight or there is nothing to learn from.  The liveness check,
        drain, and thread hand-off happen atomically under the refine
        lock, so concurrent callers cannot double-spend the same
        feedback, spawn duplicate refinements, or publish an empty
        version.

        With a shared :class:`~repro.serve.router.RefinementPool`
        attached, background refinement queues on the pool instead of
        spawning a thread per server — the pool's bounded workers are
        the cross-namespace trainer-capacity cap.
        """
        with self._refine_lock:
            if self.refining:
                return None
            workload = self.feedback.drain()
            staged, self._staged_data = self._staged_data, []
            if (workload is None or len(workload) == 0) and not staged:
                return None
            if background:
                if self.pool is not None:
                    try:
                        job = self.pool.submit(self.namespace,
                                               self._refine_now,
                                               workload, staged, epochs)
                    except RuntimeError:
                        # Pool stopped between the caller's check and the
                        # submit.  The feedback is already drained, so
                        # dropping it here would lose those observations
                        # for good (and crash auto_refine observers) —
                        # refine inline instead.
                        return self._refine_now(workload, staged, epochs)
                    self._refine_thread = job
                    return job
                thread = threading.Thread(
                    target=self._refine_now,
                    args=(workload, staged, epochs),
                    name="uae-refine", daemon=True)
                self._refine_thread = thread
                thread.start()
                return thread
            return self._refine_now(workload, staged, epochs)

    def _refine_now(self, workload: LabeledWorkload | None,
                    staged: list[np.ndarray],
                    epochs: int | None) -> dict:
        with self._refine_lock:
            start = time.perf_counter()
            self.events.emit("refinement_start", namespace=self.namespace,
                             queries=0 if workload is None else len(workload),
                             rows=int(sum(len(c) for c in staged)))
            rows = 0
            for codes in staged:
                self.trainer.ingest_data(codes, epochs=self.data_epochs)
                rows += len(codes)
            sources = ["data"] if staged else []
            if workload is not None and len(workload) > 0:
                if self.expander is None:
                    self.trainer.ingest_queries(
                        workload, epochs=epochs or self.refine_epochs)
                else:
                    # Join namespaces: feedback queries are JoinQuery-shaped,
                    # so expand them with the namespace's translator and
                    # normalize truths by the join size, not the sample
                    # table's row count.
                    constraints = [self.expander(self.trainer, q)
                                   for q in workload.queries]
                    sels = workload.cardinalities / self.scale
                    self.trainer.ingest_constraints(
                        constraints, sels, epochs=epochs or self.refine_epochs)
                sources.append("query")
            if self.chaos is not None:
                fault = self.chaos.fires("refine.weights",
                                         namespace=self.namespace)
                if fault is not None and fault.action == "poison":
                    # A corrupted refinement candidate: large seeded
                    # noise on the trainer's weights.  swap_weights bumps
                    # parameter versions, so the poisoned candidate is
                    # exactly what shadow validation scores.
                    self.trainer.swap_weights(poison_state(
                        self.trainer.model.state_dict(),
                        self.chaos.rng("refine.weights"),
                        magnitude=float(fault.params.get("magnitude",
                                                         25.0))))
                    self.events.emit("chaos_fault", hook="refine.weights",
                                     namespace=self.namespace,
                                     action=fault.action)
            verdict = None
            if self.modelops is not None:
                verdict = self.modelops.gate()
                if not verdict["accepted"]:
                    # Rejected candidate: the gate already rewound the
                    # trainer to the live snapshot's weights; nothing is
                    # published and serving never sees the bad version.
                    record = {"version": self.registry.version,
                              "source": "shadow-reject",
                              "queries": 0 if workload is None
                              else len(workload),
                              "rows": rows, "rejected": True,
                              "seconds": time.perf_counter() - start}
                    self.refinements.append(record)
                    self._c_refine.inc()
                    self._h_refine.observe(record["seconds"])
                    self.events.emit("refinement_finish",
                                     namespace=self.namespace, **record)
                    return record
            prev_version = self.registry.version
            mv = self._publish_with_retry("+".join(sources) + "-refine")
            record = {"version": mv.version, "source": mv.source,
                      "queries": 0 if workload is None else len(workload),
                      "rows": rows,
                      "seconds": time.perf_counter() - start}
            self.refinements.append(record)
            self._c_refine.inc()
            self._h_refine.observe(record["seconds"])
            self._c_swaps.labels(namespace=self.namespace,
                                 source=mv.source).inc()
            self.events.emit("refinement_finish", namespace=self.namespace,
                             **record)
            self.events.emit("swap_publish", namespace=self.namespace,
                             version=mv.version, source=mv.source)
            if self.modelops is not None:
                self.modelops.on_publish(prev_version, mv, verdict)
            return record

    def _publish_with_retry(self, source: str):
        """Publish the trainer, healing a chaos-dropped attempt: a
        ``publish.snapshot`` ``drop`` fault makes one attempt vanish
        (recorded as ``publish_drop``); the retry lands the swap."""
        for _attempt in range(3):
            if self.chaos is not None:
                fault = self.chaos.fires("publish.snapshot",
                                         namespace=self.namespace)
                if fault is not None and fault.action == "drop":
                    self.events.emit("publish_drop",
                                     namespace=self.namespace,
                                     source=source)
                    continue
            return self.registry.publish(self.trainer, source=source)
        return self.registry.publish(self.trainer, source=source)

    def join_refinement(self, timeout: float | None = None) -> None:
        thread = self._refine_thread
        if thread is not None and thread.is_alive():
            thread.join(timeout=timeout)

    def rollback(self, version: int) -> dict:
        """Revert a bad refinement: re-activate a retained snapshot *and*
        rewind the trainer's weights to it (``UAE.swap_weights`` bumps
        parameter versions, so the trainer's own engine recompiles), so
        the next refinement learns from the restored state rather than
        the rejected one.
        """
        with self._refine_lock:
            mv = self.registry.rollback(version)
            self.trainer.swap_weights(mv.model.model.state_dict())
            record = {"version": mv.version, "source": mv.source,
                      "queries": 0, "rows": 0, "seconds": 0.0}
            self.refinements.append(record)
            self._c_rollbacks.inc()
            self.events.emit("rollback", namespace=self.namespace,
                             version=mv.version, source=mv.source)
            return record

    def ingest_data(self, new_codes: np.ndarray,
                    epochs: int | None = None) -> dict:
        """Data half of Section 4.5: refine on inserted tuples, publish."""
        with self._refine_lock:
            start = time.perf_counter()
            self.trainer.ingest_data(new_codes,
                                     epochs=epochs or self.data_epochs)
            mv = self.registry.publish(self.trainer, source="data-refine")
            record = {"version": mv.version, "source": mv.source,
                      "rows": int(len(new_codes)),
                      "seconds": time.perf_counter() - start}
            self.refinements.append(record)
            self._c_refine.inc()
            self._h_refine.observe(record["seconds"])
            self._c_swaps.labels(namespace=self.namespace,
                                 source=mv.source).inc()
            self.events.emit("swap_publish", namespace=self.namespace,
                             version=mv.version, source=mv.source)
            return record

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        return {"namespace": self.namespace,
                "service": self.service.stats(),
                "feedback": self.feedback.stats(),
                "registry": self.registry.history(),
                "refinements": list(self.refinements),
                "modelops": None if self.modelops is None
                else self.modelops.stats()}
