"""Zero-copy snapshot publication over ``multiprocessing.shared_memory``.

The single-process registry publishes a hot-swap by assigning one Python
reference.  Across processes that reference is a **shared flat buffer**:
:class:`SharedSnapshot` owns one ``shared_memory`` segment per namespace,
sized once from the model's :func:`~repro.infer.compiled.state_layout`
(the layout is a pure function of the architecture, so every subsequent
version republishes *in place*).  A publish serializes the fused-weight
source state exactly once — workers attach the segment and rebuild their
:class:`~repro.infer.compiled.CompiledModel` from it, instead of each
receiving its own pickle over a pipe.

Torn-read protection is a classic seqlock.  The header keeps a sequence
counter that the writer bumps to *odd* before touching the payload and
back to *even* (the new version's parity point) after; readers snapshot
the counter, copy the payload, and re-check — a mismatch or an odd value
means a concurrent publish, so the reader retries.  An attaching worker
therefore never observes a half-written version: it either gets the old
snapshot bit-exactly or the new one bit-exactly.

Header layout (little-endian uint64 slots):

====  ==============================================================
slot  meaning
====  ==============================================================
0     magic (``0x55AE5AA9``) — segment sanity check
1     seqlock counter (odd while a publish is in flight)
2     published model version (the registry's version counter)
3     byte length of the JSON entry table
4     payload offset (start of the flat array area)
====  ==============================================================

Platforms without POSIX shared memory get ``HAVE_SHARED_MEMORY = False``
and a clean ``RuntimeError`` from :meth:`SharedSnapshot.create`; the
cluster tests skip in that case.
"""

from __future__ import annotations

import json
import time

import numpy as np

from ..infer.compiled import pack_state, state_layout, unpack_state

try:
    from multiprocessing import shared_memory as _shm
    HAVE_SHARED_MEMORY = True
except ImportError:              # pragma: no cover - platform-dependent
    _shm = None
    HAVE_SHARED_MEMORY = False

_MAGIC = 0x55AE5AA9
_HEADER_SLOTS = 8                # room to grow without a layout break
_HEADER_BYTES = _HEADER_SLOTS * 8


class SnapshotTornError(RuntimeError):
    """A consistent snapshot could not be read (publisher died or a
    publish storm outlasted the retry budget)."""


class SnapshotCodec:
    """Encode/decode one state dict at a fixed flat-buffer layout.

    The codec is the layout contract: ``entries`` (name/dtype/shape/
    offset, from :func:`~repro.infer.compiled.state_layout`) plus the
    seqlock header protocol.  It is transport-agnostic — the buffer may
    be a shared-memory mapping, an mmap, or plain bytes — and is
    deliberately free of any model imports so worker processes can
    decode before building their serving stack.
    """

    def __init__(self, entries: list[dict], payload_bytes: int):
        self.entries = entries
        self.payload_bytes = int(payload_bytes)
        meta = json.dumps(entries, separators=(",", ":")).encode()
        self._meta = meta
        self.payload_offset = _HEADER_BYTES + len(meta)
        self.total_bytes = self.payload_offset + self.payload_bytes

    # ------------------------------------------------------------------
    @classmethod
    def for_state(cls, state: dict[str, np.ndarray]) -> "SnapshotCodec":
        entries, payload = state_layout(state)
        return cls(entries, payload)

    @classmethod
    def from_buffer(cls, buf) -> "SnapshotCodec":
        buf = memoryview(buf)
        header = np.frombuffer(buf, dtype=np.uint64, count=_HEADER_SLOTS)
        if int(header[0]) != _MAGIC:
            raise ValueError("buffer does not hold a snapshot segment "
                             f"(magic {int(header[0]):#x})")
        meta_len = int(header[3])
        meta = bytes(buf[_HEADER_BYTES:_HEADER_BYTES + meta_len])
        entries = json.loads(meta.decode())
        payload = max((e["offset"] + e["nbytes"] for e in entries),
                      default=0)
        return cls(entries, payload)

    # ------------------------------------------------------------------
    def _header(self, buf) -> np.ndarray:
        return np.frombuffer(buf, dtype=np.uint64, count=_HEADER_SLOTS)

    def init_buffer(self, buf) -> None:
        """Stamp magic + entry table into a fresh buffer (no payload yet:
        the seqlock starts *odd* so readers wait for the first publish)."""
        buf = memoryview(buf)       # bytearray slices would copy
        header = np.ndarray((_HEADER_SLOTS,), dtype=np.uint64, buffer=buf)
        header[:] = 0
        header[0] = _MAGIC
        header[1] = 1                      # odd: nothing published yet
        header[3] = len(self._meta)
        header[4] = self.payload_offset
        buf[_HEADER_BYTES:_HEADER_BYTES + len(self._meta)] = self._meta

    def encode(self, buf, state: dict[str, np.ndarray],
               version: int) -> None:
        """Seqlock publish: odd counter -> payload + version -> even."""
        buf = memoryview(buf)       # bytearray slices would copy
        header = np.ndarray((_HEADER_SLOTS,), dtype=np.uint64, buffer=buf)
        if int(header[0]) != _MAGIC:
            raise ValueError("encode() on an uninitialised buffer")
        seq = int(header[1])
        if seq % 2 == 0:
            seq += 1
        header[1] = seq                    # odd: write in flight
        pack_state(state, buf[self.payload_offset:self.total_bytes],
                   self.entries)
        header[2] = int(version)
        header[1] = seq + 1                # even again: publish complete

    def decode(self, buf, timeout: float = 1.0
               ) -> tuple[int, dict[str, np.ndarray]]:
        """Read ``(version, state)`` with seqlock retries.

        The state is always a private copy — the seqlock re-check can
        only validate bytes copied *inside* the stable window, so
        zero-copy views are never handed out of a live segment.

        Raises :class:`SnapshotTornError` when no stable read lands
        within ``timeout`` (e.g. a publisher crashed mid-write and left
        the counter odd).
        """
        buf = memoryview(buf)       # bytearray slices would copy
        header = self._header(buf)
        deadline = time.perf_counter() + timeout
        while True:
            before = int(header[1])
            if before % 2 == 0:
                version = int(header[2])
                state = unpack_state(
                    buf[self.payload_offset:self.total_bytes],
                    self.entries, copy=True)
                if int(header[1]) == before:
                    return version, state
            if time.perf_counter() >= deadline:
                raise SnapshotTornError(
                    "no consistent snapshot within "
                    f"{timeout:.2f}s (seq={int(header[1])}; publisher "
                    "crashed mid-publish?)")
            time.sleep(0.0005)


class SharedSnapshot:
    """One namespace's snapshot segment: create once, republish in place.

    The parent (balancer) calls :meth:`create` with the initial state and
    :meth:`publish` on every hot-swap; workers :meth:`attach` by name and
    :meth:`read`.  ``close`` unmaps; only the creating side ``unlink``\\ s.
    """

    def __init__(self, shm, codec: SnapshotCodec, owner: bool):
        self._shm = shm
        self.codec = codec
        self.owner = owner

    @property
    def name(self) -> str:
        return self._shm.name

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, state: dict[str, np.ndarray], version: int = 1,
               name: str | None = None) -> "SharedSnapshot":
        if not HAVE_SHARED_MEMORY:
            raise RuntimeError("multiprocessing.shared_memory is not "
                               "available on this platform")
        codec = SnapshotCodec.for_state(state)
        shm = _shm.SharedMemory(name=name, create=True,
                                size=codec.total_bytes)
        snap = cls(shm, codec, owner=True)
        codec.init_buffer(shm.buf)
        codec.encode(shm.buf, state, version)
        return snap

    @classmethod
    def attach(cls, name: str) -> "SharedSnapshot":
        if not HAVE_SHARED_MEMORY:
            raise RuntimeError("multiprocessing.shared_memory is not "
                               "available on this platform")
        shm = _shm.SharedMemory(name=name)
        codec = SnapshotCodec.from_buffer(shm.buf)
        return cls(shm, codec, owner=False)

    # ------------------------------------------------------------------
    def publish(self, state: dict[str, np.ndarray], version: int) -> None:
        self.codec.encode(self._shm.buf, state, version)

    def read(self, timeout: float = 1.0
             ) -> tuple[int, dict[str, np.ndarray]]:
        return self.codec.decode(self._shm.buf, timeout=timeout)

    def version(self) -> int:
        """The currently-published version (may be mid-publish; use
        :meth:`read` for a tear-safe state)."""
        return int(self.codec._header(self._shm.buf)[2])

    def close(self) -> None:
        try:
            self._shm.close()
        except (OSError, BufferError):     # pragma: no cover - teardown
            pass

    def unlink(self) -> None:
        if self.owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:      # pragma: no cover - teardown
                pass
