"""Asyncio network front door for the serving stack.

Three layers, each usable on its own:

``AsyncEstimateService``
    Awaitable adapter over any serving front —
    :class:`~repro.serve.service.EstimateService`,
    :class:`~repro.serve.server.UAEServer`,
    :class:`~repro.serve.router.RoutedEstimateService`, or
    :class:`~repro.serve.cluster.ClusterEstimateService`.  ``await
    submit(query, deadline_ms=...)`` propagates the caller's budget down
    into the micro-batcher (which sheds typed: ``TimeoutError`` /
    ``LoadShedError``), and cancelling the awaitable **abandons** the
    query via ``EstimateRequest.cancel()`` — the worker drops it at
    flush time, so a dead client never occupies a batch slot or engine
    time.  Enqueues run on the default executor because a cluster front
    may block for an in-flight slot; the awaitable itself never blocks
    the event loop.

``HTTPFrontDoor``
    A hand-rolled HTTP/1.1 JSON wire protocol over
    ``asyncio.start_server`` (stdlib only): ``POST /estimate``,
    ``POST /estimate_batch``, ``POST /feedback``, ``GET /status``
    (hot-swap version visibility), ``GET /healthz``.  Typed errors map
    to typed statuses via :data:`ERROR_STATUS` — LoadShedError →
    503 + Retry-After, WorkerUnavailableError → 503,
    UnknownNamespaceError → 404, AmbiguousNamespaceError /
    SQLParseError / malformed JSON → 400, oversized body → 413,
    deadline exceeded → 504 — and a client that disconnects mid-request
    cancels the in-flight awaitable (see above).  A bounded
    ``max_inflight`` admission window sheds deadlined requests
    immediately when full (503) and backpressures deadline-free ones.

``AsyncHTTPClient``
    A minimal keep-alive JSON client over ``asyncio.open_connection``
    used by the tests, the CLI smoke mode, and the open-loop load
    generator in :mod:`repro.bench.load_bench`.

Observability: the door exposes ``GET /metrics`` (Prometheus text
0.0.4; merges the front's worker snapshots when the front is a
cluster) and ``GET /debug/traces`` (JSON dump of the recent/slow trace
rings).  Every ``/estimate`` request opens a :class:`~repro.obs.Trace`
at accept time and threads it through ``submit`` so admission wait,
micro-batch queue wait, engine compute, and settle all land on one
timeline.
"""

from __future__ import annotations

import asyncio
import inspect
import json
import time
from functools import partial

import numpy as np

from ..obs import MetricsRegistry, Trace, TraceRecorder
from ..workload.sqlparse import SQLParseError, parse_query
from .cluster import LoadShedError
from .placement import WorkerUnavailableError
from .router import AmbiguousNamespaceError, UnknownNamespaceError
from .service import RequestCancelledError

__all__ = [
    "AsyncEstimateService", "HTTPFrontDoor", "AsyncHTTPClient",
    "ERROR_STATUS", "status_for", "serve_http",
]


# ----------------------------------------------------------------------
# Typed error -> HTTP status.  Ordered: first isinstance match wins, so
# subclasses must precede their bases (SQLParseError before the
# ValueError catch-all, both Unknown/Ambiguous before any KeyError
# handling a future entry might add).
# ----------------------------------------------------------------------
ERROR_STATUS: tuple[tuple[type[BaseException], int], ...] = (
    (RequestCancelledError, 499),       # client closed request
    (LoadShedError, 503),
    (WorkerUnavailableError, 503),
    (UnknownNamespaceError, 404),
    (AmbiguousNamespaceError, 400),
    (SQLParseError, 400),
    (json.JSONDecodeError, 400),
    (ValueError, 400),
    (TypeError, 400),
    (TimeoutError, 504),
)

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            499: "Client Closed Request", 500: "Internal Server Error",
            503: "Service Unavailable", 504: "Gateway Timeout"}


def status_for(error: BaseException) -> int:
    """HTTP status for a serving-stack exception (500 when untyped)."""
    for cls, code in ERROR_STATUS:
        if isinstance(error, cls):
            return code
    return 500


def _jsonable(value):
    """Recursively coerce numpy scalars/arrays into JSON-safe types."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        return value.item()
    if isinstance(value, float) and not np.isfinite(value):
        return repr(value)
    return value


# ----------------------------------------------------------------------
# Awaitable adapter
# ----------------------------------------------------------------------
class AsyncEstimateService:
    """Awaitable facade over a (running) serving front.

    The front's own threads keep doing the batching/compute; this class
    only bridges their future-like request handles onto the event loop
    (``add_done_callback`` -> ``call_soon_threadsafe``) and translates
    asyncio cancellation into :meth:`EstimateRequest.cancel`.
    """

    #: grace added to a deadline before the awaitable gives up locally
    #: (mirrors the sync ``estimate()`` budget) — the service normally
    #: sheds first; this only guards against a wedged worker.
    DEADLINE_GRACE_S = 5.0

    def __init__(self, front):
        self.front = front
        submit_params = inspect.signature(front.submit).parameters
        batch_params = inspect.signature(front.estimate_batch).parameters
        self._submit_ns = "namespace" in submit_params
        self._submit_trace = "trace" in submit_params
        self._batch_ns = "namespace" in batch_params
        self._batch_cache = "use_cache" in batch_params
        self.cancelled = 0

    # -- internals -----------------------------------------------------
    def _submit_kwargs(self, namespace, deadline_ms, trace=None) -> dict:
        kwargs = {"deadline_ms": deadline_ms}
        if self._submit_ns:
            kwargs["namespace"] = namespace
        elif namespace is not None:
            raise UnknownNamespaceError(
                f"front {type(self.front).__name__} is single-namespace; "
                f"got namespace={namespace!r}")
        if trace is not None and self._submit_trace:
            kwargs["trace"] = trace
        return kwargs

    async def _enqueue(self, fn):
        """Run a (possibly blocking) enqueue on the default executor.

        Executor futures cannot be interrupted once running, so a caller
        cancellation mid-enqueue attaches a callback that abandons the
        request handle the moment it materializes — it never lingers in
        a batch queue with nobody waiting.
        """
        loop = asyncio.get_running_loop()
        pending = loop.run_in_executor(None, fn)
        try:
            return await asyncio.shield(pending)
        except asyncio.CancelledError:
            def _abandon(done):
                if done.cancelled() or done.exception() is not None:
                    return
                done.result().cancel()
                self.cancelled += 1
            pending.add_done_callback(_abandon)
            raise

    async def submit_request(self, query, *, namespace: str | None = None,
                             deadline_ms: float | None = None,
                             trace: Trace | None = None):
        """Awaitable submit returning the **settled** request handle
        (value, version, latency all inspectable).  Raises the handle's
        typed error.  Cancelling the await abandons the query."""
        request = await self._enqueue(partial(
            self.front.submit, query,
            **self._submit_kwargs(namespace, deadline_ms, trace)))
        loop = asyncio.get_running_loop()
        settled: asyncio.Future = loop.create_future()

        def _resolve(req):
            if settled.done():
                return
            error = req.exception()
            if error is not None:
                settled.set_exception(error)
            else:
                settled.set_result(req)

        request.add_done_callback(
            lambda req: loop.call_soon_threadsafe(_resolve, req))
        budget = None if deadline_ms is None \
            else deadline_ms / 1e3 + self.DEADLINE_GRACE_S
        try:
            await asyncio.wait_for(settled, timeout=budget)
        except asyncio.CancelledError:
            if request.cancel():
                self.cancelled += 1
            raise
        except (asyncio.TimeoutError, TimeoutError):
            if not settled.cancelled():
                raise       # the service's own typed deadline shed
            request.cancel()
            raise TimeoutError(
                f"deadline ({deadline_ms} ms) expired with the request "
                "still unsettled") from None
        return request

    # -- awaitable API -------------------------------------------------
    async def submit(self, query, *, namespace: str | None = None,
                     deadline_ms: float | None = None) -> float:
        """Awaitable single-query estimate with caller-budget deadline
        propagation down into the micro-batcher."""
        request = await self.submit_request(
            query, namespace=namespace, deadline_ms=deadline_ms)
        return float(request.result(timeout=0))

    # the natural spelling for callers that think in estimates
    estimate = submit

    async def estimate_batch(self, queries: list, *,
                             namespace: str | None = None,
                             seed: int | None = None,
                             use_cache: bool = True) -> np.ndarray:
        """Awaitable bulk path, bit-identical to the sync
        ``front.estimate_batch`` — same code runs, on the executor, so
        seeded calls keep the reproducibility contract."""
        kwargs: dict = {"seed": seed}
        if self._batch_ns:
            kwargs["namespace"] = namespace
        elif namespace is not None:
            raise UnknownNamespaceError(
                f"front {type(self.front).__name__} is single-namespace; "
                f"got namespace={namespace!r}")
        if self._batch_cache:
            kwargs["use_cache"] = use_cache
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, partial(
            self.front.estimate_batch, list(queries), **kwargs))

    async def observe(self, query, true_cardinality: float,
                      estimate: float | None = None, *,
                      namespace: str | None = None) -> float:
        """Awaitable feedback: route an executed query's truth to the
        front's monitor; returns the serving q-error."""
        observe = getattr(self.front, "observe", None)
        if observe is None:
            raise TypeError(f"front {type(self.front).__name__} does not "
                            "accept feedback")
        kwargs = {"estimate": estimate}
        if "namespace" in inspect.signature(observe).parameters:
            kwargs["namespace"] = namespace
        elif namespace is not None:
            raise UnknownNamespaceError(
                f"front {type(self.front).__name__} is single-namespace; "
                f"got namespace={namespace!r}")
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, partial(
            observe, query, true_cardinality, **kwargs))

    def stats(self) -> dict:
        out = dict(self.front.stats())
        out["async_cancelled"] = self.cancelled
        return out


# ----------------------------------------------------------------------
# HTTP/1.1 plumbing
# ----------------------------------------------------------------------
class _Conn:
    """Buffered reads over a StreamReader with one-read lookahead.

    While a request is being served the front door keeps a read pending
    on the socket as a disconnect watch; whatever that read returns
    (pipelined bytes, or b"" on EOF) has to feed back into subsequent
    ``readline``/``readexactly`` calls — hence the explicit buffer.
    """

    def __init__(self, reader: asyncio.StreamReader):
        self.reader = reader
        self.buf = b""
        self._pending: asyncio.Task | None = None

    async def _fill(self) -> bool:
        if self._pending is not None:
            task, self._pending = self._pending, None
            chunk = await task
        else:
            chunk = await self.reader.read(65536)
        if not chunk:
            return False
        self.buf += chunk
        return True

    async def readline(self, limit: int = 65536) -> bytes:
        while b"\n" not in self.buf:
            if len(self.buf) > limit:
                raise ValueError("header line too long")
            if not await self._fill():
                line, self.buf = self.buf, b""
                return line
        i = self.buf.index(b"\n") + 1
        line, self.buf = self.buf[:i], self.buf[i:]
        return line

    async def readexactly(self, n: int) -> bytes:
        while len(self.buf) < n:
            if not await self._fill():
                raise asyncio.IncompleteReadError(self.buf, n)
        out, self.buf = self.buf[:n], self.buf[n:]
        return out

    def watch_disconnect(self) -> asyncio.Task | None:
        """Start (or return the already-pending) lookahead read used as
        a disconnect watch; None when buffered bytes already satisfy the
        next request."""
        if self.buf:
            return None
        if self._pending is None:
            self._pending = asyncio.ensure_future(self.reader.read(65536))
        return self._pending

    def absorb(self, task: asyncio.Task) -> bool:
        """Fold a finished watch task back into the buffer; returns
        False when it signalled EOF (client went away)."""
        if self._pending is task:
            self._pending = None
        try:
            chunk = task.result()
        except (ConnectionError, OSError):
            return False
        if not chunk:
            return False
        self.buf += chunk
        return True


class HTTPFrontDoor:
    """JSON-over-HTTP wire protocol for an :class:`AsyncEstimateService`.

    See the module docstring for endpoints and the error table.
    ``max_inflight`` bounds concurrently admitted estimate requests:
    when the window is full, requests carrying a deadline shed
    immediately (503 + Retry-After) and deadline-free requests wait
    (pure backpressure).  ``GET /status`` and ``GET /healthz`` bypass
    admission so the door stays observable under overload.
    """

    def __init__(self, service: AsyncEstimateService, *,
                 host: str = "127.0.0.1", port: int = 0,
                 max_inflight: int = 64, max_body: int = 1 << 20,
                 default_deadline_ms: float | None = None,
                 retry_after_s: float = 0.05, parser=parse_query,
                 metrics: MetricsRegistry | None = None,
                 trace_capacity: int = 128,
                 slow_trace_threshold_s: float = 0.25):
        self.service = service
        self.host = host
        self.port = port                    # 0 -> ephemeral; set on start
        self.max_inflight = max_inflight
        self.max_body = max_body
        self.default_deadline_ms = default_deadline_ms
        self.retry_after_s = retry_after_s
        self.parser = parser
        self._server: asyncio.AbstractServer | None = None
        self._inflight = 0
        self._space = asyncio.Condition()
        # Share the serving front's registry when it has one, so a
        # single /metrics scrape covers the whole process; a cluster
        # front additionally contributes its workers' snapshots via
        # metrics_snapshots() at scrape time.
        front_metrics = getattr(service.front, "metrics", None)
        if metrics is not None:
            self.metrics = metrics
        elif isinstance(front_metrics, MetricsRegistry):
            self.metrics = front_metrics
        else:
            self.metrics = MetricsRegistry()
        self.traces = TraceRecorder(
            capacity=trace_capacity,
            slow_threshold_s=slow_trace_threshold_s)
        self._c_requests = self.metrics.counter(
            "repro_http_requests_total", "HTTP requests accepted")
        self._f_responses = self.metrics.counter(
            "repro_http_responses_total", "HTTP responses by status",
            labels=("status",))
        self._c_served = self.metrics.counter(
            "repro_http_served_total", "HTTP 200 responses")
        self._c_sheds = self.metrics.counter(
            "repro_http_sheds_total", "requests shed at the admission "
            "window")
        self._c_disconnects = self.metrics.counter(
            "repro_http_disconnects_total", "clients gone mid-request")
        self._h_request = self.metrics.histogram(
            "repro_http_request_seconds", "request handling latency",
            labels=("route",))
        self.metrics.gauge(
            "repro_http_inflight", "requests inside the admission "
            "window").set_function(lambda: self._inflight)

    # -- registry-backed wire stats (kept as read-only properties so the
    # pre-obs `door.requests` / `door.status_counts` callers still work)
    @property
    def requests(self) -> int:
        return int(self._c_requests.value)

    @property
    def served(self) -> int:
        return int(self._c_served.value)

    @property
    def sheds(self) -> int:
        return int(self._c_sheds.value)

    @property
    def disconnects(self) -> int:
        return int(self._c_disconnects.value)

    @property
    def status_counts(self) -> dict[int, int]:
        return {int(labels["status"]): int(child.value)
                for labels, child in self._f_responses.series()
                if child.value}

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> "HTTPFrontDoor":
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    # -- admission window ----------------------------------------------
    async def _admit(self, deadline_ms: float | None) -> None:
        async with self._space:
            if self._inflight >= self.max_inflight \
                    and deadline_ms is not None:
                self._c_sheds.inc()
                raise LoadShedError(
                    f"front door saturated ({self.max_inflight} requests "
                    "in flight) and the request carries a deadline")
            await self._space.wait_for(
                lambda: self._inflight < self.max_inflight)
            self._inflight += 1

    async def _release(self) -> None:
        async with self._space:
            self._inflight -= 1
            self._space.notify(1)

    # -- connection loop -----------------------------------------------
    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        conn = _Conn(reader)
        try:
            while True:
                request_line = await conn.readline()
                if not request_line.strip():
                    if not request_line:
                        break               # clean EOF between requests
                    continue                # stray blank line
                try:
                    method, path, keep_alive, body = \
                        await self._read_request(conn, request_line,
                                                 writer)
                except _EarlyResponse as early:
                    await self._respond(writer, early.status,
                                        early.payload, keep_alive=False)
                    break
                result = await self._serve_one(conn, method, path, body)
                if result is None:          # client disconnected
                    self._c_disconnects.inc()
                    break
                status, payload, extra = result
                await self._respond(writer, status, payload,
                                    extra_headers=extra,
                                    keep_alive=keep_alive)
                if not keep_alive:
                    break
        except (asyncio.IncompleteReadError, ConnectionError, OSError,
                ValueError):
            pass
        except asyncio.CancelledError:
            # Loop/server shutdown with the connection open: exit
            # cleanly (asyncio.streams logs handler tasks that die
            # cancelled); in-flight work was already cancelled by
            # _serve_one's cancellation path.
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # CancelledError: the task is being torn down at loop
                # shutdown; the transport is closed either way.
                pass

    async def _read_request(self, conn: _Conn, request_line: bytes,
                            writer: asyncio.StreamWriter):
        parts = request_line.decode("latin1").split()
        if len(parts) < 2:
            raise _EarlyResponse(400, {"error": "BadRequestLine",
                                       "detail": "malformed request line"})
        method, path = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            line = await conn.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _EarlyResponse(400, {"error": "BadHeader",
                                       "detail": "bad Content-Length"})
        if length > self.max_body:
            raise _EarlyResponse(
                413, {"error": "PayloadTooLarge",
                      "detail": f"body of {length} bytes exceeds the "
                                f"{self.max_body}-byte limit"})
        body = await conn.readexactly(length) if length else b""
        keep_alive = headers.get("connection",
                                 "keep-alive").lower() != "close"
        return method, path, keep_alive, body

    async def _serve_one(self, conn: _Conn, method: str, path: str,
                         body: bytes):
        """Dispatch one request with a disconnect watch: if the client
        goes away first, the handler task is cancelled — which cancels
        the awaitable submit, which abandons the micro-batch slot."""
        work = asyncio.ensure_future(self._dispatch(method, path, body))
        watch = conn.watch_disconnect()
        try:
            if watch is None:
                return await work
            await asyncio.wait({work, watch},
                               return_when=asyncio.FIRST_COMPLETED)
        except asyncio.CancelledError:
            work.cancel()
            raise
        if work.done():
            return await work               # watch stays pending in conn
        if conn.absorb(watch):              # early pipelined bytes
            return await work
        work.cancel()
        try:
            await work
        except asyncio.CancelledError:
            pass
        return None

    # -- routing -------------------------------------------------------
    def _count_status(self, status: int) -> None:
        self._f_responses.labels(status=str(status)).inc()

    async def _dispatch(self, method: str, path: str, body: bytes):
        self._c_requests.inc()
        t0 = time.perf_counter()
        path = path.split("?", 1)[0]
        routes = {"/estimate": ("POST", self._h_estimate),
                  "/estimate_batch": ("POST", self._h_estimate_batch),
                  "/feedback": ("POST", self._h_feedback),
                  "/status": ("GET", self._h_status),
                  "/healthz": ("GET", self._h_healthz),
                  "/metrics": ("GET", self._h_metrics),
                  "/debug/traces": ("GET", self._h_debug_traces)}
        route = path if path in routes else "other"
        try:
            if path not in routes:
                raise _EarlyResponse(404, {"error": "NotFound",
                                           "detail": f"no route {path}"})
            want, handler = routes[path]
            if method != want:
                raise _EarlyResponse(
                    405, {"error": "MethodNotAllowed",
                          "detail": f"{path} accepts {want}"},
                    extra=(("Allow", want),))
            if want == "POST":
                payload = json.loads(body.decode("utf-8") or "null")
                if not isinstance(payload, dict):
                    raise ValueError("request body must be a JSON object")
            else:
                payload = {}
            status, out = await handler(payload)
        except asyncio.CancelledError:
            raise
        except _EarlyResponse as early:
            status, out, extra = early.status, early.payload, early.extra
            self._count_status(status)
            return status, out, extra
        except Exception as exc:            # noqa: BLE001 - typed mapping
            status = status_for(exc)
            out = {"error": type(exc).__name__, "detail": str(exc)}
            extra = (("Retry-After", f"{self.retry_after_s:.3f}"),) \
                if status == 503 else ()
            self._count_status(status)
            return status, out, extra
        finally:
            self._h_request.labels(route=route).observe(
                time.perf_counter() - t0)
        self._count_status(status)
        if status == 200:
            self._c_served.inc()
        return status, out, ()

    # -- handlers ------------------------------------------------------
    def _query_from(self, payload: dict, field: str = "sql"):
        sql = payload.get(field)
        if sql is None:
            raise ValueError(f"missing required field {field!r}")
        if not isinstance(sql, str):
            raise ValueError(f"field {field!r} must be a SQL string")
        return self.parser(sql)

    @staticmethod
    def _deadline_from(payload: dict, default: float | None):
        deadline_ms = payload.get("deadline_ms", default)
        if deadline_ms is not None:
            deadline_ms = float(deadline_ms)
            if deadline_ms <= 0:
                raise ValueError("deadline_ms must be positive")
        return deadline_ms

    async def _h_estimate(self, payload: dict):
        trace = Trace("http_estimate")
        try:
            query = self._query_from(payload)
            namespace = payload.get("namespace")
            deadline_ms = self._deadline_from(payload,
                                              self.default_deadline_ms)
            trace.set(namespace=namespace, deadline_ms=deadline_ms)
            with trace.span("admission"):
                await self._admit(deadline_ms)
            try:
                request = await self.service.submit_request(
                    query, namespace=namespace, deadline_ms=deadline_ms,
                    trace=trace)
            finally:
                await self._release()
        except BaseException as exc:
            self.traces.record(trace.finish(error=type(exc).__name__))
            raise
        out = {"estimate": float(request.result(timeout=0)),
               "trace_id": trace.trace_id}
        if getattr(request, "version", None) is not None:
            out["version"] = int(request.version)
        if getattr(request, "from_cache", False):
            out["from_cache"] = True
        latency = request.latency()
        if latency is not None:
            out["service_ms"] = latency * 1e3
        self.traces.record(trace.finish(status=200))
        return 200, out

    async def _h_estimate_batch(self, payload: dict):
        sqls = payload.get("sql")
        if not isinstance(sqls, list) or not sqls:
            raise ValueError("field 'sql' must be a non-empty list of "
                             "SQL strings")
        queries = [self.parser(s) if isinstance(s, str)
                   else self._bad_item() for s in sqls]
        seed = payload.get("seed")
        if seed is not None:
            seed = int(seed)
        use_cache = bool(payload.get("use_cache", True))
        deadline_ms = self._deadline_from(payload,
                                          self.default_deadline_ms)
        await self._admit(deadline_ms)
        try:
            values = await self.service.estimate_batch(
                queries, namespace=payload.get("namespace"), seed=seed,
                use_cache=use_cache)
        finally:
            await self._release()
        return 200, {"estimates": [float(v) for v in values],
                     "count": len(values)}

    @staticmethod
    def _bad_item():
        raise ValueError("every 'sql' list item must be a SQL string")

    async def _h_feedback(self, payload: dict):
        query = self._query_from(payload)
        truth = payload.get("true_cardinality")
        if truth is None:
            raise ValueError("missing required field 'true_cardinality'")
        estimate = payload.get("estimate")
        qerror = await self.service.observe(
            query, float(truth),
            estimate=None if estimate is None else float(estimate),
            namespace=payload.get("namespace"))
        return 200, {"ok": True, "qerror": float(qerror)}

    async def _h_status(self, payload: dict):
        return 200, {"ok": True,
                     "front_door": {
                         "inflight": self._inflight,
                         "max_inflight": self.max_inflight,
                         "requests": self.requests,
                         "served": self.served,
                         "sheds": self.sheds,
                         "disconnects": self.disconnects,
                         "status_counts": {str(k): v for k, v in
                                           sorted(self.status_counts
                                                  .items())}},
                     "service": _jsonable(self.service.stats())}

    async def _h_healthz(self, payload: dict):
        return 200, {"ok": True}

    async def _h_metrics(self, payload: dict):
        """Prometheus text exposition.  A cluster front contributes its
        workers' registry snapshots (labelled ``worker=...``); other
        fronts share one registry with the door, so a single render
        covers the whole process."""
        front = self.service.front
        snaps = getattr(front, "metrics_snapshots", None)
        if callable(snaps):
            loop = asyncio.get_running_loop()
            pairs = list(await loop.run_in_executor(None, snaps))
            if getattr(front, "metrics", None) is not self.metrics:
                pairs.append((self.metrics.snapshot(), None))
            return 200, MetricsRegistry.merged(pairs).render()
        front_metrics = getattr(front, "metrics", None)
        if isinstance(front_metrics, MetricsRegistry) \
                and front_metrics is not self.metrics:
            pairs = [(self.metrics.snapshot(), None),
                     (front_metrics.snapshot(), None)]
            return 200, MetricsRegistry.merged(pairs).render()
        return 200, self.metrics.render()

    async def _h_debug_traces(self, payload: dict):
        return 200, self.traces.to_dict()

    # -- response ------------------------------------------------------
    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload, extra_headers=(),
                       keep_alive: bool = True) -> None:
        if isinstance(payload, str):        # /metrics exposition text
            body = payload.encode("utf-8")
            ctype = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = json.dumps(_jsonable(payload)).encode("utf-8")
            ctype = "application/json"
        lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Status')}",
                 f"Content-Type: {ctype}",
                 f"Content-Length: {len(body)}",
                 f"Connection: {'keep-alive' if keep_alive else 'close'}"]
        lines += [f"{name}: {value}" for name, value in extra_headers]
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin1")
                     + body)
        await writer.drain()


class _EarlyResponse(Exception):
    """Internal: short-circuit a request with a fixed status/payload."""

    def __init__(self, status: int, payload: dict, extra=()):
        super().__init__(payload.get("detail", ""))
        self.status = status
        self.payload = payload
        self.extra = tuple(extra)


# ----------------------------------------------------------------------
# Minimal keep-alive client (tests, smoke, load generator)
# ----------------------------------------------------------------------
class AsyncHTTPClient:
    """One keep-alive HTTP/1.1 connection speaking the front door's JSON
    protocol.  Not concurrency-safe across tasks — each concurrent
    client task owns its own instance (the open-loop generator does
    exactly that); a lock still serializes accidental overlap."""

    def __init__(self, host: str, port: int,
                 connect_timeout: float = 5.0):
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._lock = asyncio.Lock()

    async def _ensure(self):
        if self._writer is None or self._writer.is_closing():
            self._reader, self._writer = await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port),
                timeout=self.connect_timeout)
        return self._reader, self._writer

    async def close(self) -> None:
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = self._writer = None

    async def request(self, method: str, path: str,
                      payload: dict | None = None,
                      headers: dict | None = None):
        """Issue one request; returns ``(status, body_dict, headers)``.
        Reconnects once if the kept-alive socket died in between."""
        async with self._lock:
            for attempt in (0, 1):
                try:
                    return await self._roundtrip(method, path, payload,
                                                 headers or {})
                except (ConnectionError, asyncio.IncompleteReadError,
                        OSError):
                    await self.close()
                    if attempt:
                        raise
        raise RuntimeError("unreachable")

    async def _roundtrip(self, method, path, payload, headers):
        reader, writer = await self._ensure()
        body = b"" if payload is None \
            else json.dumps(payload).encode("utf-8")
        lines = [f"{method} {path} HTTP/1.1",
                 f"Host: {self.host}:{self.port}",
                 f"Content-Length: {len(body)}",
                 "Content-Type: application/json"]
        lines += [f"{k}: {v}" for k, v in headers.items()]
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin1")
                     + body)
        await writer.drain()
        status_line = await reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        parts = status_line.decode("latin1").split(None, 2)
        status = int(parts[1])
        resp_headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin1").partition(":")
            resp_headers[name.strip().lower()] = value.strip()
        length = int(resp_headers.get("content-length", "0"))
        raw = await reader.readexactly(length) if length else b""
        if resp_headers.get("connection", "").lower() == "close":
            await self.close()
        if not raw:
            out: dict | str = {}
        elif "json" in resp_headers.get("content-type", "json"):
            out = json.loads(raw.decode("utf-8"))
        else:                               # /metrics text exposition
            out = raw.decode("utf-8")
        return status, out, resp_headers

    async def get(self, path: str):
        return await self.request("GET", path)

    async def post(self, path: str, payload: dict):
        return await self.request("POST", path, payload)


# ----------------------------------------------------------------------
# Blocking runner (CLI)
# ----------------------------------------------------------------------
def serve_http(front, *, host: str = "127.0.0.1", port: int = 8080,
               max_inflight: int = 64,
               default_deadline_ms: float | None = None,
               ready=None, stop_event=None) -> None:
    """Run an HTTP front door over ``front`` until interrupted.

    ``ready(door)`` (optional) fires once the socket is bound — the CLI
    smoke mode and tests use it to learn the ephemeral port.
    ``stop_event`` (a ``threading.Event``) requests shutdown from
    another thread; otherwise Ctrl-C stops the loop.
    """

    async def _main():
        door = HTTPFrontDoor(
            AsyncEstimateService(front), host=host, port=port,
            max_inflight=max_inflight,
            default_deadline_ms=default_deadline_ms)
        await door.start()
        if ready is not None:
            ready(door)
        try:
            while stop_event is None or not stop_event.is_set():
                await asyncio.sleep(0.1)
        finally:
            await door.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
