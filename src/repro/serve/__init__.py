"""Online serving subsystem: the paper's incremental-ingestion loop
(Section 4.5) run under live traffic.

Five cooperating pieces (see the README's "Serving" section):

* :class:`ModelRegistry` — versioned, immutable UAE snapshots with atomic
  hot-swap; background refinement never blocks or corrupts in-flight
  estimates (:mod:`repro.serve.registry`);
* :class:`EstimateService` — micro-batching front-end over the inference
  engine's :class:`~repro.infer.BatchScheduler`, with sync and
  deadline-aware async APIs (:mod:`repro.serve.service`);
* :class:`ResultCache` — constraint-signature result cache invalidated on
  model-version bumps (:mod:`repro.serve.cache`);
* :class:`FeedbackCollector` — rolling (query, true cardinality) feedback
  plus a q-error drift monitor that decides when to refine
  (:mod:`repro.serve.feedback`);
* :class:`UAEServer` — the loop tying them together: serve, observe,
  refine, publish (:mod:`repro.serve.server`);
* the multi-table front door (:mod:`repro.serve.router`):
  :class:`MultiTableRegistry` keys one registry per table / join-schema
  *namespace*, :class:`RoutedEstimateService` routes each query to its
  namespace's micro-batcher, and :class:`RefinementPool` bounds
  background-refinement capacity fairly across namespaces;
* the scale-out tier (:mod:`repro.serve.cluster`):
  :class:`ClusterEstimateService` fronts N shared-nothing worker
  processes, placing namespaces by consistent hashing
  (:mod:`repro.serve.placement`) and publishing hot-swaps zero-copy
  through per-namespace ``shared_memory`` segments
  (:mod:`repro.serve.snapshot`);
* the self-healing model-ops layer (:mod:`repro.serve.modelops` +
  :mod:`repro.serve.supervisor`): :class:`ModelOps` shadow-validates
  every refinement candidate on a held-out probe set before publish,
  arms a rolling q-error tripwire that auto-rolls-back a regressing
  swap, and re-warms the result cache after each publish;
  :class:`WorkerSupervisor` restarts dead cluster workers with
  exponential backoff (evicting crash-loopers); both are exercised by
  the deterministic chaos harness (:mod:`repro.chaos`);
* the asyncio network front door (:mod:`repro.serve.net`):
  :class:`AsyncEstimateService` makes any front awaitable (deadline
  propagation, cancellation-as-abandonment) and :class:`HTTPFrontDoor`
  puts an HTTP/JSON wire protocol on it with typed error mapping
  (LoadShedError → 503 + Retry-After, UnknownNamespaceError → 404,
  deadline exceeded → 504); ``python -m repro.serve --http PORT``
  serves it, and :mod:`repro.bench.load_bench` drives it open-loop.

Every layer shares the :mod:`repro.obs` observability plane: one
:class:`~repro.obs.MetricsRegistry` per process (workers merged at
scrape time), per-request traces threaded edge-to-engine, and the
``GET /metrics`` / ``GET /debug/traces`` endpoints on the front door.

``python -m repro.serve`` drives a shifting workload through the full
loop (pass several ``--datasets`` for the multi-table front door, or
``--workers N`` for the scale-out cluster);
``python -m repro.bench serving`` is the benchmarked version that
writes ``BENCH_serve.json``.
"""

from ..chaos import ChaosPlan, Fault
from .cache import ResultCache
from .cluster import ClusterEstimateService, ClusterRequest, LoadShedError
from .feedback import FeedbackCollector
from .modelops import (ModelOps, ModelOpsConfig, QErrorTripwire,
                       ShadowValidator)
from .net import (ERROR_STATUS, AsyncEstimateService, AsyncHTTPClient,
                  HTTPFrontDoor, serve_http, status_for)
from .placement import HashRing, WorkerUnavailableError
from .registry import ModelRegistry, ModelVersion
from .router import (AmbiguousNamespaceError, MultiTableRegistry, Namespace,
                     RefinementJob, RefinementPool, RoutedEstimateService,
                     RoutingError, UnknownNamespaceError)
from .server import UAEServer
from .service import EstimateRequest, EstimateService, RequestCancelledError
from .snapshot import (HAVE_SHARED_MEMORY, SharedSnapshot, SnapshotCodec,
                       SnapshotTornError)
from .supervisor import WorkerSupervisor

__all__ = ["ModelRegistry", "ModelVersion", "EstimateService",
           "EstimateRequest", "ResultCache", "FeedbackCollector",
           "UAEServer", "MultiTableRegistry", "Namespace",
           "RoutedEstimateService", "RefinementPool", "RefinementJob",
           "RoutingError", "UnknownNamespaceError",
           "AmbiguousNamespaceError", "ClusterEstimateService",
           "ClusterRequest", "LoadShedError", "HashRing",
           "WorkerUnavailableError", "SharedSnapshot", "SnapshotCodec",
           "SnapshotTornError", "HAVE_SHARED_MEMORY",
           "RequestCancelledError", "AsyncEstimateService",
           "HTTPFrontDoor", "AsyncHTTPClient", "ERROR_STATUS",
           "status_for", "serve_http", "ModelOps", "ModelOpsConfig",
           "ShadowValidator", "QErrorTripwire", "WorkerSupervisor",
           "ChaosPlan", "Fault"]
