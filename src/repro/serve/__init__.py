"""Online serving subsystem: the paper's incremental-ingestion loop
(Section 4.5) run under live traffic.

Five cooperating pieces (see the README's "Serving" section):

* :class:`ModelRegistry` — versioned, immutable UAE snapshots with atomic
  hot-swap; background refinement never blocks or corrupts in-flight
  estimates (:mod:`repro.serve.registry`);
* :class:`EstimateService` — micro-batching front-end over the inference
  engine's :class:`~repro.infer.BatchScheduler`, with sync and
  deadline-aware async APIs (:mod:`repro.serve.service`);
* :class:`ResultCache` — constraint-signature result cache invalidated on
  model-version bumps (:mod:`repro.serve.cache`);
* :class:`FeedbackCollector` — rolling (query, true cardinality) feedback
  plus a q-error drift monitor that decides when to refine
  (:mod:`repro.serve.feedback`);
* :class:`UAEServer` — the loop tying them together: serve, observe,
  refine, publish (:mod:`repro.serve.server`).

``python -m repro.serve`` drives a shifting workload through the full
loop; ``python -m repro.bench serving`` is the benchmarked version that
writes ``BENCH_serve.json``.
"""

from .cache import ResultCache
from .feedback import FeedbackCollector
from .registry import ModelRegistry, ModelVersion
from .server import UAEServer
from .service import EstimateRequest, EstimateService

__all__ = ["ModelRegistry", "ModelVersion", "EstimateService",
           "EstimateRequest", "ResultCache", "FeedbackCollector",
           "UAEServer"]
