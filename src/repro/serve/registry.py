"""Versioned model registry with atomic hot-swap.

The serving layer never estimates on the *training* UAE directly: a
background ``ingest_data``/``ingest_queries`` step bumps parameter
versions mid-stream, which would force the compiled engine to recompile
(and change results) between micro-batches of one request wave.  Instead
the registry keeps immutable **snapshots** — detached UAE copies produced
by :meth:`repro.core.UAE.snapshot`.  Snapshot weights are adopted through
``load_state_dict``, which deep-copies the arrays and bumps the copy's
parameter versions, so a snapshot's compiled engine can never serve stale
fused weights (the invalidation contract in :mod:`repro.infer.compiled`).

``publish`` installs a new snapshot with a single reference assignment
under a lock.  Estimation paths capture ``registry.active()`` once per
batch and use that object throughout: requests in flight during a swap
finish on the version they started on; the next batch sees the new one.
Nothing blocks, nothing tears.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from ..core.uae import UAE


@dataclass(frozen=True)
class ModelVersion:
    """One immutable published snapshot."""

    version: int
    model: UAE
    source: str                   # "initial" | "query-refine" | "data-refine" | ...
    published_at: float = field(default_factory=time.time)

    def size_bytes(self) -> int:
        return self.model.size_bytes()


class ModelRegistry:
    """Holds versioned UAE snapshots; reads are lock-free, swaps atomic."""

    def __init__(self, estimator: UAE, keep_versions: int = 3,
                 name: str = "default"):
        if keep_versions < 1:
            raise ValueError("keep_versions must be >= 1")
        # The namespace this registry serves under a MultiTableRegistry
        # front door (one registry per table / join schema); purely a
        # label for single-registry deployments.
        self.name = str(name)
        self.keep_versions = int(keep_versions)
        self._lock = threading.Lock()
        self._versions: dict[int, ModelVersion] = {}
        self._next_version = 1
        self._active: ModelVersion | None = None
        self.publish(estimator, source="initial")

    # ------------------------------------------------------------------
    def publish(self, estimator: UAE, source: str = "refine") -> ModelVersion:
        """Snapshot ``estimator`` and atomically make it the active model.

        The snapshot (clone + ``load_state_dict`` + eager engine compile)
        happens *outside* the lock — publishing a large model never stalls
        concurrent ``active()`` readers.
        """
        snap = estimator.snapshot()
        with self._lock:
            mv = ModelVersion(version=self._next_version, model=snap,
                              source=source)
            self._next_version += 1
            self._versions[mv.version] = mv
            self._active = mv
            self._trim_locked()
        return mv

    def _trim_locked(self) -> None:
        while len(self._versions) > self.keep_versions:
            oldest = min(self._versions)
            if oldest == self._active.version:
                break
            del self._versions[oldest]

    # ------------------------------------------------------------------
    def active(self) -> ModelVersion:
        """The current serving snapshot (a plain attribute read — callers
        hold the returned object for a whole batch, so a concurrent
        publish never mixes versions within one estimate)."""
        return self._active

    @property
    def version(self) -> int:
        return self._active.version

    def get(self, version: int) -> ModelVersion | None:
        with self._lock:
            return self._versions.get(version)

    def rollback(self, version: int) -> ModelVersion:
        """Re-publish a retained version's snapshot as the new active one
        (bad-refinement guard).

        Version numbers stay monotonic — consumers keyed on the active
        version (the result cache, drift windows) treat a rollback like
        any other swap instead of time-travelling backwards.
        """
        with self._lock:
            mv = self._versions.get(version)
            if mv is None:
                raise KeyError(f"version {version} not retained "
                               f"(have {sorted(self._versions)})")
            redo = ModelVersion(version=self._next_version, model=mv.model,
                                source=f"rollback(v{version})")
            self._next_version += 1
            self._versions[redo.version] = redo
            self._active = redo
            self._trim_locked()
            return redo

    def history(self) -> list[dict]:
        with self._lock:
            return [{"version": mv.version, "source": mv.source,
                     "published_at": mv.published_at,
                     "active": mv.version == self._active.version}
                    for mv in sorted(self._versions.values(),
                                     key=lambda m: m.version)]

    def __len__(self) -> int:
        with self._lock:
            return len(self._versions)
