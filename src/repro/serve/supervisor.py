"""Worker supervision for the scale-out cluster.

PR 6's cluster *contains* a worker crash (typed errors, ``recover()``)
but never heals it — a dead worker stays dead until an operator calls
``recover()`` by hand.  :class:`WorkerSupervisor` closes the loop: a
background thread polls :meth:`ClusterEstimateService.dead_workers`
(which also quarantines newly dead processes, failing their in-flight
requests typed) and drives a small state machine per worker:

``healthy -> crashed -> backoff -> restarting -> healthy``
                     \\-> (crash loop) -> evicted

* **Restart with backoff + jitter** — each crash inside the rolling
  ``crash_window_s`` doubles the delay (``backoff_base_s`` up to
  ``backoff_max_s``), scaled by a seeded jitter so a fleet of
  supervisors never stampedes.  The restart re-forks the worker under
  its original id — consistent hashing then restores its original
  namespace placement — and re-adopts those namespaces from the retained
  shared-memory snapshot segments, so a restarted worker serves
  bit-identical estimates (``repro_worker_restarts_total``).
* **Crash-loop circuit breaker** — more than ``max_restarts`` crashes
  inside the window means restarting is not healing (poisoned state,
  bad host); the worker is evicted for good and
  :meth:`ClusterEstimateService.recover` rebalances its namespaces onto
  the survivors (``repro_worker_evictions_total``).

Every transition lands in the event log (``worker_backoff``,
``worker_restart``, ``worker_evict``); the deterministic chaos harness
(:mod:`repro.chaos`) is what this machine is tested against.
"""

from __future__ import annotations

import random
import threading
import time
from collections import defaultdict, deque


class WorkerSupervisor:
    """Detect dead cluster workers; restart with backoff or evict."""

    def __init__(self, cluster, *, poll_interval: float = 0.05,
                 backoff_base_s: float = 0.05, backoff_max_s: float = 2.0,
                 jitter: float = 0.25, max_restarts: int = 3,
                 crash_window_s: float = 30.0, seed: int = 0,
                 metrics=None, events=None):
        if poll_interval <= 0:
            raise ValueError("poll_interval must be > 0")
        if max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        self.cluster = cluster
        self.poll_interval = float(poll_interval)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_max_s = float(backoff_max_s)
        self.jitter = float(jitter)
        self.max_restarts = int(max_restarts)
        self.crash_window_s = float(crash_window_s)
        self._rng = random.Random(seed)
        self.metrics = metrics if metrics is not None else cluster.metrics
        self.events = events if events is not None else cluster.events
        self._c_restarts = self.metrics.counter(
            "repro_worker_restarts_total",
            "Dead workers restarted by the supervisor", ("worker",))
        self._c_evictions = self.metrics.counter(
            "repro_worker_evictions_total",
            "Crash-looping workers evicted by the circuit breaker",
            ("worker",))
        self._crashes: dict[str, deque] = defaultdict(deque)
        self._evicted: set[str] = set()
        self.restarts: list[dict] = []
        self.evictions: list[dict] = []
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    def start(self) -> "WorkerSupervisor":
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, name="worker-supervisor", daemon=True)
            self._thread.start()
        return self

    def stop(self, timeout: float | None = 5.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def __enter__(self) -> "WorkerSupervisor":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while not self._stop.wait(self.poll_interval):
            if not self.cluster.running:
                continue
            try:
                self.check()
            except Exception as exc:  # noqa: BLE001 - keep supervising
                self.events.emit("supervisor_error", error=repr(exc))

    def check(self) -> None:
        """One supervision pass (also callable inline from tests)."""
        for worker_id in self.cluster.dead_workers():
            if worker_id in self._evicted:
                continue
            self._handle_crash(worker_id)

    def _handle_crash(self, worker_id: str) -> None:
        now = time.monotonic()
        window = self._crashes[worker_id]
        while window and now - window[0] > self.crash_window_s:
            window.popleft()
        window.append(now)
        attempt = len(window)
        if attempt > self.max_restarts:
            self._evict(worker_id, crashes=attempt)
            return
        delay = min(self.backoff_max_s,
                    self.backoff_base_s * (2 ** (attempt - 1)))
        delay *= 1.0 + self.jitter * self._rng.random()
        self.events.emit("worker_backoff", worker=worker_id,
                         attempt=attempt, delay_s=delay)
        if self._stop.wait(delay) or not self.cluster.running:
            return
        try:
            result = self.cluster.restart_worker(worker_id)
        except Exception as exc:  # noqa: BLE001 - counts as another crash
            self.events.emit("worker_restart_failed", worker=worker_id,
                             attempt=attempt, error=repr(exc))
            return
        if not result.get("restarted"):
            return
        self._c_restarts.labels(worker=worker_id).inc()
        self.restarts.append({"worker": worker_id, "attempt": attempt,
                              "delay_s": delay, **result})

    def _evict(self, worker_id: str, crashes: int) -> None:
        self._evicted.add(worker_id)
        try:
            self.cluster.fail_worker(worker_id)
            healed = self.cluster.recover()
        except Exception as exc:  # noqa: BLE001 - e.g. all workers down
            self.events.emit("worker_evict_failed", worker=worker_id,
                             error=repr(exc))
            return
        self._c_evictions.labels(worker=worker_id).inc()
        record = {"worker": worker_id, "crashes": crashes,
                  "moved": healed.get("moved", [])}
        self.evictions.append(record)
        self.events.emit("worker_evict", **record)

    def stats(self) -> dict:
        return {"running": self.running,
                "restarts": list(self.restarts),
                "evictions": list(self.evictions),
                "evicted": sorted(self._evicted)}
