"""Micro-batching estimate front-end.

Requests arrive one at a time (``submit`` / ``estimate``) or in bulk
(``estimate_batch``).  Single requests are queued and flushed by a
background worker in micro-batches — up to ``max_batch`` queries or
``max_wait_ms`` of queueing, whichever comes first — through the
inference engine's signature-grouping
:class:`~repro.infer.BatchScheduler`, so a stream of independent queries
gets the same amortised matmuls as an offline batch.  Each flush captures
one :class:`~repro.serve.registry.ModelVersion` from the registry and
uses it end to end: a hot-swap between flushes changes which snapshot the
*next* flush sees, never the one in progress.

Deadlines are per-request serving budgets: the worker flushes early when
the tightest deadline in the queue is about to expire, and a request
whose budget lapses before compute completes fails with ``TimeoutError``
instead of silently returning late.  The flush also projects the batch's
compute cost from an EWMA of observed per-query latency and sheds, up
front, any request whose *remaining* budget (deadline minus the queue
wait already spent) cannot cover it — near-deadline queries fail fast
instead of wasting engine time on answers that would arrive late
(``budget_sheds`` in :meth:`EstimateService.stats`).

Cancellation is abandonment: :meth:`EstimateRequest.cancel` (driven by
the asyncio front door in :mod:`repro.serve.net` when a network caller
disconnects or times out) settles the request immediately with
:class:`RequestCancelledError`, and the worker drops cancelled requests
at flush time — a dead client never occupies a batch slot or engine
time (``cancellations`` in :meth:`EstimateService.stats`).

All estimates are answered from the
:class:`~repro.serve.cache.ResultCache` when the active model version has
an entry for the query's constraint signature.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque

import numpy as np

from ..obs import EVENTS, MetricsRegistry, log_buckets
from ..workload.predicate import Query
from .cache import ResultCache
from .registry import ModelRegistry, ModelVersion

#: Bucket layout for micro-batch sizes (1 .. max_batch, geometric).
BATCH_SIZE_BUCKETS = log_buckets(1.0, 512.0, per_decade=4)


class RequestCancelledError(RuntimeError):
    """The caller abandoned the request before it completed."""


class EstimateRequest:
    """A single in-flight estimate; a minimal future.

    Settlement is first-wins: exactly one of ``_complete`` / ``_fail``
    takes effect, so a caller cancelling concurrently with the worker
    completing never observes a half-settled request.  Done callbacks
    (the asyncio front door's bridge back to its event loop) fire once,
    from whichever thread settles the request.
    """

    __slots__ = ("query", "constraints", "key", "deadline", "submitted_at",
                 "completed_at", "version", "from_cache", "cancelled",
                 "trace", "_lock", "_callbacks", "_event", "_value", "_error")

    def __init__(self, query: Query, constraints: list, key: bytes | None,
                 deadline: float | None, trace=None):
        self.query = query
        self.constraints = constraints
        self.key = key
        self.deadline = deadline          # absolute perf_counter time
        self.trace = trace                # optional obs.Trace
        self.submitted_at = time.perf_counter()
        self.completed_at: float | None = None
        self.version: int | None = None
        self.from_cache = False
        self.cancelled = False
        self._lock = threading.Lock()
        self._callbacks: list = []
        self._event = threading.Event()
        self._value: float | None = None
        self._error: BaseException | None = None

    # ------------------------------------------------------------------
    def _settle(self, value, error, version, from_cache) -> bool:
        with self._lock:
            if self._event.is_set():
                return False
            self._value = value
            self._error = error
            self.version = version
            self.from_cache = from_cache
            self.completed_at = time.perf_counter()
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)
        return True

    def _complete(self, value: float, version: int,
                  from_cache: bool = False) -> bool:
        """Settle with a value; False when the request was already
        settled (e.g. cancelled while the engine computed it)."""
        return self._settle(value, None, version, from_cache)

    def _fail(self, error: BaseException) -> bool:
        return self._settle(None, error, self.version, self.from_cache)

    def cancel(self) -> bool:
        """Abandon the request: the micro-batcher drops cancelled
        requests before compute, so a cancelled request never occupies a
        batch slot in a later flush.  Returns True when the cancellation
        won (the request had not already completed or failed)."""
        self.cancelled = True       # worker reads this before computing
        return self._fail(RequestCancelledError("request cancelled"))

    def add_done_callback(self, callback) -> None:
        """Call ``callback(request)`` once settled (immediately if the
        request is already done), from the settling thread."""
        with self._lock:
            if not self._event.is_set():
                self._callbacks.append(callback)
                return
        callback(self)

    def done(self) -> bool:
        return self._event.is_set()

    def exception(self) -> BaseException | None:
        """The request's error, or None (valid once ``done()``)."""
        return self._error

    def result(self, timeout: float | None = None) -> float:
        """Block until the estimate is ready; raises the request's error
        (e.g. ``TimeoutError`` on a missed deadline,
        ``RequestCancelledError`` after a cancellation)."""
        if not self._event.wait(timeout):
            raise TimeoutError("estimate not ready")
        if self._error is not None:
            raise self._error
        return self._value

    def latency(self) -> float | None:
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at


class EstimateService:
    """Sync + deadline-aware micro-batching API over a model registry."""

    def __init__(self, registry: ModelRegistry, cache: ResultCache | None = None,
                 *, max_batch: int = 32, max_wait_ms: float = 2.0,
                 seed: int = 0, latency_window: int = 100_000,
                 expander=None, scale: float | None = None,
                 metrics: MetricsRegistry | None = None, events=None):
        self.registry = registry
        self.cache = cache
        # Query translation hooks for non-table namespaces (joins): an
        # ``expander(model, query) -> constraints`` replaces the default
        # mask expansion, and ``scale`` replaces ``table.num_rows`` as
        # the selectivity -> cardinality multiplier (e.g. |J| for a join
        # sample, where the snapshot's table is the sample, not the
        # estimand).
        self.expander = expander
        self.scale = None if scale is None else float(scale)
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait_ms) / 1e3
        self._rng = np.random.default_rng(seed)
        # Hot-signature tracker feeding post-swap cache warming
        # (repro.serve.modelops): cache key -> [hit count, query].
        self._hot: "OrderedDict[bytes, list]" = OrderedDict()
        self._hot_capacity = 4096
        self._hot_lock = threading.Lock()
        # Engine buffer pools are per-snapshot but not thread-safe; sync
        # callers and the worker serialise actual compute through this.
        self._engine_lock = threading.Lock()
        self._cond = threading.Condition()
        self._pending: deque[EstimateRequest] = deque()
        self._worker: threading.Thread | None = None
        self._stop = threading.Event()
        # EWMA of per-query compute seconds; None until the first flush
        # is measured (no shedding before there is an observation).
        self._cost_per_query: float | None = None
        self.latencies: deque[float] = deque(maxlen=latency_window)
        # All counters live in the metrics registry (one shared registry
        # across namespaces when routed); ``served`` & friends are
        # read-only properties over the namespace-labeled children.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.events = events if events is not None else EVENTS
        ns = self.namespace = registry.name
        m = self.metrics
        lab = ("namespace",)
        self._c_served = m.counter(
            "repro_serve_served_total",
            "Requests answered with an estimate", lab).labels(namespace=ns)
        self._c_cache = m.counter(
            "repro_serve_cache_hits_total",
            "Requests answered from the result cache", lab).labels(namespace=ns)
        self._c_deadline = m.counter(
            "repro_serve_deadline_misses_total",
            "Requests failed because their deadline lapsed", lab).labels(namespace=ns)
        self._c_sheds = m.counter(
            "repro_serve_budget_sheds_total",
            "Requests shed pre-compute by the deadline budget projection",
            lab).labels(namespace=ns)
        self._c_cancel = m.counter(
            "repro_serve_cancellations_total",
            "Requests abandoned by their caller", lab).labels(namespace=ns)
        self._c_flushes = m.counter(
            "repro_serve_flushes_total",
            "Micro-batch flushes through the engine", lab).labels(namespace=ns)
        self._f_failures = m.counter(
            "repro_serve_failures_total",
            "Requests failed by an engine/compute error",
            ("namespace", "error"))
        self._h_latency = m.histogram(
            "repro_serve_latency_seconds",
            "Submit-to-settle latency of served requests", lab).labels(namespace=ns)
        self._h_stage = m.histogram(
            "repro_serve_stage_seconds",
            "Per-request time in each serving stage",
            ("namespace", "stage"))
        self._h_batch = m.histogram(
            "repro_serve_batch_size",
            "Live requests per micro-batch flush", lab,
            buckets=BATCH_SIZE_BUCKETS).labels(namespace=ns)
        m.gauge("repro_serve_queue_depth",
                "Requests waiting for the next micro-batch", lab) \
            .labels(namespace=ns).set_function(lambda: len(self._pending))
        m.gauge("repro_serve_model_version",
                "Active model version in the registry", lab) \
            .labels(namespace=ns).set_function(lambda: self.registry.version)

    # ------------------------------------------------------------------
    # Registry-backed counters (kept as read-only attributes for
    # backward compatibility with the pre-obs ``stats()`` surface).
    # ------------------------------------------------------------------
    @property
    def served(self) -> int:
        return int(self._c_served.value)

    @property
    def cache_served(self) -> int:
        return int(self._c_cache.value)

    @property
    def failures(self) -> int:
        return int(sum(child.value
                       for labels, child in self._f_failures.series()
                       if labels["namespace"] == self.namespace))

    @property
    def deadline_misses(self) -> int:
        return int(self._c_deadline.value)

    @property
    def budget_sheds(self) -> int:
        return int(self._c_sheds.value)

    @property
    def cancellations(self) -> int:
        return int(self._c_cancel.value)

    @property
    def flushes(self) -> int:
        return int(self._c_flushes.value)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "EstimateService":
        """Start the micro-batching worker (idempotent)."""
        if self._worker is None or not self._worker.is_alive():
            self._stop.clear()
            self._worker = threading.Thread(target=self._worker_loop,
                                            name="estimate-service",
                                            daemon=True)
            self._worker.start()
        return self

    def stop(self) -> None:
        """Drain-free shutdown: pending requests fail with RuntimeError."""
        self._stop.set()
        with self._cond:
            self._cond.notify_all()
        if self._worker is not None:
            self._worker.join(timeout=5.0)
            self._worker = None
        with self._cond:
            while self._pending:
                self._pending.popleft()._fail(
                    RuntimeError("service stopped"))

    @property
    def running(self) -> bool:
        return self._worker is not None and self._worker.is_alive()

    def __enter__(self) -> "EstimateService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def submit(self, query: Query, deadline_ms: float | None = None,
               trace=None) -> EstimateRequest:
        """Enqueue one query; returns a future-like request handle.

        With no worker running the request is served inline (still via
        the scheduler, still cached) so the sync API never needs a
        thread.  ``trace`` (an :class:`repro.obs.Trace`) rides on the
        request and collects queue-wait/compute/settle spans.
        """
        snap = self.registry.active()
        constraints = self._expand(snap, query)
        key = ResultCache.signature(constraints) \
            if self.cache is not None else None
        if key is not None:
            self._record_hot(key, query)
        deadline = None if deadline_ms is None \
            else time.perf_counter() + deadline_ms / 1e3
        request = EstimateRequest(query, constraints, key, deadline,
                                  trace=trace)
        if key is not None:
            hit = self.cache.get(key, snap.version)
            if hit is not None:
                request._complete(hit, snap.version, from_cache=True)
                self._c_cache.inc()
                self._c_served.inc()
                lat = request.latency()
                self.latencies.append(lat)
                self._h_latency.observe(lat)
                if trace is not None:
                    trace.add_span("cache_hit", request.submitted_at,
                                   request.completed_at, version=snap.version)
                return request
        enqueued = False
        with self._cond:
            # Liveness re-checked under the lock: stop() sets _stop and
            # drains _pending while holding it, so a request can never
            # slip in after the drain and hang its caller.
            if not self._stop.is_set() and self.running:
                self._pending.append(request)
                self._cond.notify()
                enqueued = True
        if not enqueued:
            self._flush([request])
        return request

    def estimate(self, query: Query,
                 deadline_ms: float | None = None) -> float:
        """Synchronous single-query cardinality estimate."""
        request = self.submit(query, deadline_ms=deadline_ms)
        budget = None if deadline_ms is None else deadline_ms / 1e3 + 5.0
        return request.result(timeout=budget)

    def estimate_batch(self, queries: list[Query], seed: int | None = None,
                       use_cache: bool = True) -> np.ndarray:
        """Synchronous bulk path (bench drivers, backfills).

        ``seed`` pins the sampling stream: two calls with the same seed,
        queries, and model version return bit-identical estimates — the
        reproducibility contract the hot-swap benchmark checks.  Seeded
        calls bypass the cache (a cached value from unseeded traffic
        would both short-circuit a query and shift which part of the
        seeded stream the remaining queries consume).
        """
        if not queries:
            return np.zeros(0, dtype=np.float64)
        use_cache = use_cache and seed is None
        snap = self.registry.active()
        constraints = [self._expand(snap, q) for q in queries]
        out = np.empty(len(queries), dtype=np.float64)
        todo: list[int] = []
        keys: list[bytes | None] = [None] * len(queries)
        for i, cl in enumerate(constraints):
            if use_cache and self.cache is not None:
                keys[i] = ResultCache.signature(cl)
                self._record_hot(keys[i], queries[i])
                hit = self.cache.get(keys[i], snap.version)
                if hit is not None:
                    out[i] = hit
                    self._c_cache.inc()
                    continue
            todo.append(i)
        if todo:
            cards = self._compute(snap, [constraints[i] for i in todo], seed)
            for j, i in enumerate(todo):
                out[i] = cards[j]
                if keys[i] is not None:
                    self.cache.put(keys[i], snap.version, float(cards[j]))
        self._c_served.inc(len(queries))
        return out

    def estimate_on(self, snap: ModelVersion, queries: list[Query],
                    seed: int | None = None) -> np.ndarray:
        """Direct compute on a *specific* snapshot — no cache, no queue.

        The reference the hot-swap consistency checks compare against:
        a service answer for version ``v`` must be bit-identical to
        ``estimate_on(registry.get(v), ...)`` with the same seed.
        """
        constraints = [self._expand(snap, q) for q in queries]
        return self._compute(snap, constraints, seed)

    # ------------------------------------------------------------------
    # Hot-signature tracking + post-swap cache warming
    # ------------------------------------------------------------------
    def _record_hot(self, key: bytes, query: Query) -> None:
        with self._hot_lock:
            entry = self._hot.get(key)
            if entry is not None:
                entry[0] += 1
                return
            self._hot[key] = [1, query]
            if len(self._hot) > self._hot_capacity:
                # Keep the hottest half; one O(n log n) pass amortised
                # over capacity/2 inserts.
                keep = sorted(self._hot.items(), key=lambda kv: kv[1][0],
                              reverse=True)[:self._hot_capacity // 2]
                self._hot = OrderedDict(keep)

    def hot_queries(self, n: int) -> list[Query]:
        """The ``n`` most-requested distinct queries (by cache-key hit
        count) — the replay set for post-swap cache warming."""
        with self._hot_lock:
            ranked = sorted(self._hot.values(), key=lambda e: e[0],
                            reverse=True)
        return [query for _count, query in ranked[:max(0, int(n))]]

    def warm_cache(self, queries: list[Query], *, version: int | None = None,
                   seed=0) -> int:
        """Replay ``queries`` through the active snapshot and prime the
        result cache with the answers; returns entries written.

        Uses its own seeded stream (never the service's live ``_rng``),
        so background warming cannot perturb foreground sampling.  With
        ``version`` given, a swap that lands before the replay starts
        makes this a no-op instead of warming a superseded snapshot.
        """
        if self.cache is None or not queries:
            return 0
        snap = self.registry.active()
        if version is not None and snap.version != version:
            return 0
        constraints = [self._expand(snap, q) for q in queries]
        keys = [ResultCache.signature(cl) for cl in constraints]
        todo = [i for i, key in enumerate(keys)
                if self.cache.get(key, snap.version) is None]
        if not todo:
            return 0
        cards = self._compute(snap, [constraints[i] for i in todo], seed)
        for j, i in enumerate(todo):
            self.cache.put(keys[i], snap.version, float(cards[j]))
        return len(todo)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _expand(self, snap: ModelVersion, query: Query) -> list:
        model = snap.model
        if self.expander is not None:
            return self.expander(model, query)
        return model.fact.expand_masks(query.masks(model.table))

    def _compute(self, snap: ModelVersion, constraint_lists: list[list],
                 seed: int | None = None) -> np.ndarray:
        rng = self._rng if seed is None else np.random.default_rng(seed)
        sampler = snap.model.sampler
        with self._engine_lock:
            engine = sampler.scheduler.engine
            if engine.metrics is not self.metrics:
                # Each snapshot owns its engine; point it at the
                # service registry so batch-loop metrics aggregate here.
                engine.metrics = self.metrics
            sels = sampler.scheduler.estimate_many(
                constraint_lists, sampler.num_samples, rng)
        if self.scale is not None:
            # Join namespaces: match UAEJoin.estimate_many exactly —
            # lower clip only, scaled by the outer join's size (the
            # sample-selectivity estimand is not bounded by the sample
            # table's row count the way a base table's is).
            return np.maximum(sels, 0.0) * self.scale
        return np.clip(sels, 0.0, 1.0) * snap.model.table.num_rows

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            batch = self._gather()
            if batch:
                self._flush(batch)

    def _gather(self) -> list[EstimateRequest]:
        """Collect a micro-batch: first request opens a window that closes
        at ``max_wait``, ``max_batch`` requests, or the tightest deadline
        (minus compute headroom), whichever is first."""
        with self._cond:
            while not self._pending and not self._stop.is_set():
                self._cond.wait(timeout=0.1)
            if self._stop.is_set():
                return []
            batch = [self._pending.popleft()]
            window_end = time.perf_counter() + self.max_wait
            while len(batch) < self.max_batch:
                now = time.perf_counter()
                close_at = window_end
                for req in batch:
                    if req.deadline is not None:
                        close_at = min(close_at, req.deadline - self.max_wait)
                remaining = close_at - now
                if remaining <= 0:
                    break
                if not self._pending:
                    self._cond.wait(timeout=remaining)
                while self._pending and len(batch) < self.max_batch:
                    batch.append(self._pending.popleft())
            return batch

    def _flush(self, batch: list[EstimateRequest]) -> None:
        snap = self.registry.active()
        now = time.perf_counter()
        live: list[EstimateRequest] = []
        for req in batch:
            if req.cancelled:
                # Abandoned by the caller (e.g. an asyncio client went
                # away): never give it a batch slot or engine time.
                self._c_cancel.inc()
                self.events.emit("cancel", namespace=self.namespace,
                                 stage="pre_compute")
                continue
            if req.deadline is not None and now > req.deadline:
                if req._fail(TimeoutError("deadline expired before "
                                          "compute")):
                    self._c_deadline.inc()
                continue
            if req.key is not None:
                hit = self.cache.get(req.key, snap.version)
                if hit is not None:
                    if req._complete(hit, snap.version, from_cache=True):
                        self._c_cache.inc()
                        self._c_served.inc()
                        lat = req.latency()
                        self.latencies.append(lat)
                        self._h_latency.observe(lat)
                    continue
            live.append(req)
        if not live:
            return
        if self._cost_per_query is not None:
            # Deadline-first budget shedding: project this batch's
            # compute from the observed per-query cost and fail, before
            # any engine time is spent, every request whose remaining
            # budget (deadline minus the queue wait already paid) cannot
            # cover it.  Dropping them also shrinks the batch, which can
            # bring the projection under the survivors' deadlines.
            kept: list[EstimateRequest] = []
            for req in sorted(live, key=lambda r: (r.deadline is None,
                                                   r.deadline)):
                eta = now + self._cost_per_query * (len(kept) + 1)
                if req.deadline is not None and eta > req.deadline:
                    if req._fail(TimeoutError(
                            "remaining deadline budget below projected "
                            "compute cost; shed before compute")):
                        self._c_sheds.inc()
                        self._c_deadline.inc()
                        self.events.emit("shed", namespace=self.namespace,
                                         reason="budget",
                                         projected_eta_s=eta - now)
                    continue
                kept.append(req)
            if not kept:
                return
            if len(kept) != len(live):      # keep submission order
                kept_ids = {id(req) for req in kept}
                live = [req for req in live if id(req) in kept_ids]
        self._c_flushes.inc()
        self._h_batch.observe(len(live))
        stage_queue = self._h_stage.labels(namespace=self.namespace,
                                           stage="queue_wait")
        for req in live:
            stage_queue.observe(now - req.submitted_at)
            if req.trace is not None:
                req.trace.add_span("queue_wait", req.submitted_at, now)
        try:
            cards = self._compute(snap, [r.constraints for r in live])
        except BaseException as exc:  # noqa: BLE001 - fail the batch, keep serving
            fail = self._f_failures.labels(namespace=self.namespace,
                                           error=type(exc).__name__)
            for req in live:
                if req._fail(exc):
                    fail.inc()
            return
        done_at = time.perf_counter()
        per_query = (done_at - now) / len(live)
        self._cost_per_query = per_query if self._cost_per_query is None \
            else 0.75 * self._cost_per_query + 0.25 * per_query
        stage_compute = self._h_stage.labels(namespace=self.namespace,
                                             stage="compute")
        stage_settle = self._h_stage.labels(namespace=self.namespace,
                                            stage="settle")
        for req, card in zip(live, cards):
            stage_compute.observe(done_at - now)
            if req.trace is not None:
                req.trace.add_span("compute", now, done_at,
                                   batch=len(live), version=snap.version)
            if req.key is not None:
                # Cache regardless of the requester's deadline — the
                # estimate is valid for this version either way.
                self.cache.put(req.key, snap.version, float(card))
            if req.deadline is not None and done_at > req.deadline:
                if req._fail(TimeoutError("deadline expired during "
                                          "compute")):
                    self._c_deadline.inc()
                continue
            if req._complete(float(card), snap.version):
                self._c_served.inc()
                lat = req.latency()
                self.latencies.append(lat)
                self._h_latency.observe(lat)
                stage_settle.observe(req.completed_at - done_at)
                if req.trace is not None:
                    req.trace.add_span("settle", done_at, req.completed_at)
            else:
                # Cancelled while the engine ran: the answer is valid
                # (and cached above) but nobody is waiting for it.
                self._c_cancel.inc()
                self.events.emit("cancel", namespace=self.namespace,
                                 stage="post_compute")

    # ------------------------------------------------------------------
    def latency_quantiles(self) -> dict[str, float]:
        # deque.copy() is atomic under the GIL; iterating the live deque
        # while the worker appends would raise "mutated during iteration".
        snapshot = self.latencies.copy()
        if not snapshot:
            return {"p50_ms": 0.0, "p99_ms": 0.0, "mean_ms": 0.0}
        arr = np.fromiter(snapshot, dtype=np.float64)
        return {"p50_ms": float(np.percentile(arr, 50) * 1e3),
                "p99_ms": float(np.percentile(arr, 99) * 1e3),
                "mean_ms": float(arr.mean() * 1e3)}

    def stats(self) -> dict:
        # Counters come straight from the metrics registry (the same
        # series exposed on /metrics); time-valued keys carry explicit
        # unit suffixes (``*_ms``, ``*_seconds``).
        out = {"served": self.served, "cache_served": self.cache_served,
               "failures": self.failures,
               "deadline_misses": self.deadline_misses,
               "budget_sheds": self.budget_sheds,
               "cancellations": self.cancellations,
               "flushes": self.flushes,
               "model_version": self.registry.version,
               "cost_ewma_seconds": self._cost_per_query,
               **self.latency_quantiles()}
        if self.cache is not None:
            out["cache"] = self.cache.stats()
        return out
