"""Self-healing model-ops for the continuous-learning loop.

The refinement loop publishes whatever the trainer produced — which
means a single poisoned refinement (skewed feedback, a corrupt insert
batch, a bad gradient step) silently degrades every subsequent estimate.
This module closes the loop with three guards, attached to a
:class:`~repro.serve.server.UAEServer` via the ``modelops`` argument:

* **Shadow validation** (:class:`ShadowValidator`) — before a candidate
  is published, it is scored against the *live* snapshot on a held-out
  probe set (the hottest observed labeled queries plus an optional
  seeded workload sample), on the same seeded engine path serving uses.
  A candidate whose mean q-error exceeds ``reject_ratio`` x the live
  model's is rejected: the trainer's weights are restored from the
  active snapshot and nothing is published
  (``repro_shadow_rejects_total``).
* **Tripwire rollback** (:class:`QErrorTripwire`) — shadow scoring can
  only judge what the probe set covers, so every publish also arms a
  rolling post-swap q-error window against the pre-swap ceiling.  If
  serving accuracy degrades past ``tripwire_ratio`` x the ceiling, the
  server rolls back to the last good version automatically
  (``ModelRegistry.rollback`` re-publishes it forward), then enters a
  cooldown so a noisy window cannot ping-pong versions.
* **Post-swap cache warming** — a validated publish empties the result
  cache by design (new version).  :meth:`ModelOps.on_publish` replays
  the hottest observed constraint signatures through the new snapshot in
  the background, so the first post-swap wave of hot queries hits the
  cache instead of paying p99-spiking engine time.

All three publish their decisions to the event log (``shadow_reject``,
``tripwire_rollback``, ``cache_warm``) and the metrics registry, so a
self-healing action is always observable after the fact.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from types import SimpleNamespace

import numpy as np

from ..workload.metrics import qerrors


@dataclass(frozen=True)
class ModelOpsConfig:
    """Knobs for shadow validation, the tripwire, and cache warming."""

    #: Reject a candidate whose probe mean q-error exceeds this multiple
    #: of the live snapshot's.  ``inf`` disables the shadow gate (the
    #: tripwire still guards post-publish).
    reject_ratio: float = 1.5
    #: Bound on distinct labeled probes retained from observations.
    probe_capacity: int = 256
    #: Probes scored per validation (hottest first).
    max_probes: int = 64
    #: Below this many probes the gate passes unjudged (cold start).
    min_probes: int = 4
    #: Pinned sampling seed for shadow scoring (candidate and live are
    #: scored on the identical stream, so the comparison is exact).
    shadow_seed: int = 9173
    #: Post-publish rolling window: trip when its mean q-error exceeds
    #: ``tripwire_ratio`` x the armed pre-swap ceiling.
    tripwire_ratio: float = 2.0
    tripwire_window: int = 32
    tripwire_min_obs: int = 8
    #: Seconds after a rollback during which the tripwire stays quiet.
    cooldown_s: float = 5.0
    #: Hottest signatures replayed through a freshly published snapshot
    #: (0 disables warming).
    warm_top_n: int = 32


class ShadowValidator:
    """Held-out probe set + candidate-vs-live scoring.

    Probes accumulate from serving feedback (``add_probe``) keyed by
    query, hottest-first; an optional labeled workload seeds the set so
    validation works before any feedback arrives.
    """

    def __init__(self, config: ModelOpsConfig, workload=None):
        self.config = config
        self._lock = threading.Lock()
        # query -> [observation count, latest truth]
        self._observed: dict = {}
        self._seeded: list[tuple] = []
        if workload is not None and len(workload) > 0:
            take = min(len(workload.queries), config.max_probes)
            self._seeded = list(zip(workload.queries[:take],
                                    workload.cardinalities[:take]))

    def add_probe(self, query, truth: float) -> None:
        with self._lock:
            entry = self._observed.get(query)
            if entry is not None:
                entry[0] += 1
                entry[1] = float(truth)
                return
            self._observed[query] = [1, float(truth)]
            if len(self._observed) > self.config.probe_capacity:
                # Drop the coldest half in one pass (amortised O(1)).
                keep = sorted(self._observed.items(),
                              key=lambda kv: kv[1][0],
                              reverse=True)[:self.config.probe_capacity // 2]
                self._observed = dict(keep)

    def probes(self) -> tuple[list, np.ndarray]:
        """(queries, truths): hottest observed probes, padded with the
        seeded workload sample up to ``max_probes``."""
        with self._lock:
            hot = sorted(self._observed.items(), key=lambda kv: kv[1][0],
                         reverse=True)[:self.config.max_probes]
            queries = [q for q, _ in hot]
            truths = [entry[1] for _, entry in hot]
            seen = set(queries)
            for query, truth in self._seeded:
                if len(queries) >= self.config.max_probes:
                    break
                if query in seen:
                    continue
                queries.append(query)
                truths.append(float(truth))
        return queries, np.asarray(truths, dtype=np.float64)

    def score(self, service, live_snap, candidate) -> dict:
        """Mean probe q-error of ``candidate`` (a trainer UAE) vs the
        live snapshot, both on the pinned shadow seed; the verdict the
        gate acts on."""
        cfg = self.config
        queries, truths = self.probes()
        if len(queries) < cfg.min_probes:
            return {"accepted": True, "reason": "insufficient-probes",
                    "probes": len(queries), "candidate_qerr": None,
                    "live_qerr": None, "reject_ratio": cfg.reject_ratio}
        live_est = service.estimate_on(live_snap, queries,
                                       seed=cfg.shadow_seed)
        cand_est = service.estimate_on(SimpleNamespace(model=candidate),
                                       queries, seed=cfg.shadow_seed)
        live_q = float(qerrors(live_est, truths).mean())
        cand_q = float(qerrors(cand_est, truths).mean())
        accepted = cand_q <= cfg.reject_ratio * max(live_q, 1.0)
        return {"accepted": bool(accepted),
                "reason": "scored",
                "probes": len(queries),
                "candidate_qerr": cand_q,
                "live_qerr": live_q,
                "reject_ratio": cfg.reject_ratio}


class QErrorTripwire:
    """Rolling post-publish q-error window vs an armed pre-swap ceiling."""

    def __init__(self, config: ModelOpsConfig):
        self.config = config
        self._lock = threading.Lock()
        self._window: list[float] = []
        self.armed = False
        self.baseline: float | None = None
        self.version: int | None = None
        self.cooldown_until = 0.0          # monotonic
        self.trips = 0

    def arm(self, baseline: float, version: int) -> None:
        with self._lock:
            self.baseline = max(float(baseline), 1.0)
            self.version = int(version)
            self._window = []
            self.armed = True

    def disarm(self) -> None:
        with self._lock:
            self.armed = False
            self._window = []

    def start_cooldown(self) -> None:
        with self._lock:
            self.cooldown_until = time.monotonic() + self.config.cooldown_s

    def observe(self, err: float) -> bool:
        """Record one serving q-error; True when the wire trips."""
        cfg = self.config
        value = float(err)
        if not np.isfinite(value):
            # A NaN/inf estimate (e.g. poisoned weights overflowing the
            # engine) is the worst possible error, not a missing one.
            value = 1e18
        with self._lock:
            if not self.armed or time.monotonic() < self.cooldown_until:
                return False
            self._window.append(value)
            if len(self._window) > cfg.tripwire_window:
                self._window.pop(0)
            if len(self._window) < cfg.tripwire_min_obs:
                return False
            mean = sum(self._window) / len(self._window)
            if mean > cfg.tripwire_ratio * self.baseline:
                self.trips += 1
                return True
            return False

    def stats(self) -> dict:
        with self._lock:
            return {"armed": self.armed, "baseline": self.baseline,
                    "version": self.version, "trips": self.trips,
                    "window": len(self._window)}


class ModelOps:
    """The controller wiring validator + tripwire + warming to a server.

    Constructed by :class:`~repro.serve.server.UAEServer` when a
    :class:`ModelOpsConfig` is passed as ``modelops=``; attaches itself
    as ``server.modelops`` and is driven from the server's refinement
    and observation paths.
    """

    def __init__(self, server, config: ModelOpsConfig | None = None,
                 workload=None):
        self.server = server
        self.config = config if config is not None else ModelOpsConfig()
        self.validator = ShadowValidator(self.config, workload=workload)
        self.tripwire = QErrorTripwire(self.config)
        self.rejects: list[dict] = []
        self.rollbacks: list[dict] = []
        self.last_verdict: dict | None = None
        self.warmed = 0
        # Pre-swap serving accuracy, tracked across feedback drains (the
        # collector's own monitor resets on every drain, which is
        # exactly when the tripwire needs a pre-fault ceiling).
        self._recent_errs: list[float] = []
        self._recent_lock = threading.Lock()
        self._last_good = server.registry.version
        self._warm_thread: threading.Thread | None = None
        ns = server.namespace
        m = server.metrics
        self._c_rejects = m.counter(
            "repro_shadow_rejects_total",
            "Refinement candidates rejected by shadow validation",
            ("namespace",)).labels(namespace=ns)
        self._c_trips = m.counter(
            "repro_tripwire_rollbacks_total",
            "Automatic rollbacks driven by the post-swap q-error tripwire",
            ("namespace",)).labels(namespace=ns)
        self._c_warmed = m.counter(
            "repro_cache_warmed_total",
            "Cache entries primed by post-swap warming",
            ("namespace",)).labels(namespace=ns)
        server.modelops = self

    # ------------------------------------------------------------------
    # Hooks driven by UAEServer
    # ------------------------------------------------------------------
    def gate(self) -> dict:
        """Shadow-validate the trainer as a candidate against the live
        snapshot (called under the refine lock, pre-publish).  On
        rejection the trainer is rewound to the active snapshot's
        weights, so the bad update leaves no trace in future training."""
        server = self.server
        if not np.isfinite(self.config.reject_ratio):
            verdict = {"accepted": True, "reason": "gate-disabled",
                       "probes": 0, "candidate_qerr": None,
                       "live_qerr": None,
                       "reject_ratio": self.config.reject_ratio}
        else:
            live = server.registry.active()
            verdict = self.validator.score(server.service, live,
                                           server.trainer)
        self.last_verdict = verdict
        if not verdict["accepted"]:
            live = server.registry.active()
            server.trainer.swap_weights(live.model.model.state_dict())
            self._c_rejects.inc()
            self.rejects.append(verdict)
            server.events.emit("shadow_reject", namespace=server.namespace,
                               candidate_qerr=verdict["candidate_qerr"],
                               live_qerr=verdict["live_qerr"],
                               reject_ratio=verdict["reject_ratio"],
                               probes=verdict["probes"])
        return verdict

    def on_publish(self, prev_version: int, mv, verdict=None) -> None:
        """Arm the tripwire against the pre-swap ceiling and kick off
        background cache warming for the new version."""
        self._last_good = int(prev_version)
        with self._recent_lock:
            recent = list(self._recent_errs)
        if verdict and verdict.get("live_qerr") is not None:
            baseline = verdict["live_qerr"]
        elif recent:
            baseline = sum(recent) / len(recent)
        else:
            baseline = 1.0
        self.tripwire.arm(baseline, mv.version)
        with self._recent_lock:
            self._recent_errs = []
        if self.config.warm_top_n > 0 \
                and self.server.service.cache is not None:
            thread = threading.Thread(target=self._warm,
                                      args=(mv.version,),
                                      name="modelops-warm", daemon=True)
            self._warm_thread = thread
            thread.start()

    def on_observation(self, query, estimate: float, truth: float,
                       err: float) -> None:
        """Feed one serving observation into the probe set and the
        tripwire; a trip attempts the automatic rollback."""
        self.validator.add_probe(query, truth)
        with self._recent_lock:
            self._recent_errs.append(float(err))
            if len(self._recent_errs) > self.config.tripwire_window:
                self._recent_errs.pop(0)
        if self.tripwire.observe(err):
            self._try_rollback()

    # ------------------------------------------------------------------
    def _try_rollback(self) -> dict | None:
        """Roll back to the last good version — non-blocking: if a
        refinement holds the refine lock the trip is dropped and the
        next tripping observation retries (the tripwire stays armed)."""
        server = self.server
        target = self._last_good
        if not server._refine_lock.acquire(blocking=False):
            return None
        try:
            if server.registry.get(target) is None:
                # The good version aged out of retention; nothing safe
                # to return to — disarm rather than thrash.
                self.tripwire.disarm()
                server.events.emit("tripwire_lost_target",
                                   namespace=server.namespace,
                                   target=target)
                return None
            record = server.rollback(target)
        finally:
            server._refine_lock.release()
        self.tripwire.start_cooldown()
        self.tripwire.disarm()
        # The rollback re-published the good snapshot as a new version;
        # that is the target if the *next* publish goes bad too.
        self._last_good = server.registry.version
        self._c_trips.inc()
        record = dict(record, rolled_back_to=target)
        self.rollbacks.append(record)
        server.events.emit("tripwire_rollback", namespace=server.namespace,
                           target=target, version=server.registry.version,
                           baseline=self.tripwire.baseline)
        return record

    def _warm(self, version: int) -> None:
        service = self.server.service
        queries = service.hot_queries(self.config.warm_top_n)
        if not queries:
            return
        try:
            warmed = service.warm_cache(
                queries, version=version,
                seed=[self.config.shadow_seed, version])
        except Exception:              # noqa: BLE001 - warming is advisory
            return
        if warmed:
            self.warmed += warmed
            self._c_warmed.inc(warmed)
            self.server.events.emit("cache_warm",
                                    namespace=self.server.namespace,
                                    version=version, warmed=warmed)

    def join_warm(self, timeout: float | None = 5.0) -> None:
        thread = self._warm_thread
        if thread is not None and thread.is_alive():
            thread.join(timeout=timeout)

    def stats(self) -> dict:
        return {"rejects": len(self.rejects),
                "rollbacks": len(self.rollbacks),
                "warmed": self.warmed,
                "last_verdict": self.last_verdict,
                "tripwire": self.tripwire.stats()}
