"""Constraint-signature result cache for the estimate service.

Cardinality estimates are pure functions of (model version, constraint
list): the same query against the same snapshot may as well be answered
from memory.  Keys are content hashes of the *expanded* constraint masks
— two syntactically different predicate sets that compile to the same
per-column validity masks share an entry — and the whole cache is tied to
one model version: the first access after a hot-swap clears it, so a new
model can never serve a predecessor's numbers.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

import numpy as np


class ResultCache:
    """LRU cache of selectivity estimates, invalidated on version bump."""

    def __init__(self, capacity: int = 8192):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[bytes, float]" = OrderedDict()
        self._version: int | None = None
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    # ------------------------------------------------------------------
    @staticmethod
    def signature(constraints: list) -> bytes:
        """Content hash of an ``expand_masks`` constraint list."""
        h = hashlib.blake2b(digest_size=16)
        for cons in constraints:
            if cons is None:
                h.update(b"\x00")
            else:
                h.update(cons[0].encode())
                h.update(np.ascontiguousarray(cons[1]).tobytes())
                if cons[0] == "scaled":
                    h.update(np.ascontiguousarray(cons[2]).tobytes())
            h.update(b"\x01")
        return h.digest()

    # ------------------------------------------------------------------
    def _sync_version_locked(self, version: int) -> bool:
        """Adopt ``version`` if it is new; returns whether ``version`` is
        the cache's current one.

        Versions are monotonic, so a *smaller* version comes from a
        batch still in flight on a pre-swap snapshot: it reads and
        writes nothing (instead of wiping the new version's entries —
        interleaved old/new traffic during a swap must not ping-pong
        the cache empty).
        """
        if self._version is None or version > self._version:
            if self._version is not None and self._entries:
                self.invalidations += 1
            self._entries.clear()
            self._version = version
        return version == self._version

    def get(self, key: bytes, version: int) -> float | None:
        with self._lock:
            if not self._sync_version_locked(version):
                self.misses += 1
                return None
            value = self._entries.get(key)
            if value is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: bytes, version: int, value: float) -> None:
        with self._lock:
            if not self._sync_version_locked(version):
                return
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        with self._lock:
            lookups = self.hits + self.misses
            return {"entries": len(self._entries), "hits": self.hits,
                    "misses": self.misses,
                    "hit_rate": self.hits / lookups if lookups else 0.0,
                    "invalidations": self.invalidations,
                    "version": self._version}
