"""Workload substrate: predicates, queries, generation, execution, metrics."""

from .predicate import (LabeledWorkload, Predicate, Query, conjunction,
                        query_from_ranges, routing_signature)
from .fragments import FragmentError, extract_fragment, fragment_signature
from .executor import (row_mask, true_cardinalities, true_cardinality,
                       true_selectivity)
from .generator import (WorkloadConfig, default_bounded_column,
                        generate_inworkload, generate_random,
                        generate_shifted_partitions)
from .metrics import (ErrorSummary, RollingQErrorMonitor, qerror, qerrors,
                      summarize)
from .dnf import (DNFQuery, estimate_disjunction, intersect_queries,
                  true_disjunction_cardinality)
from .sqlparse import SQLParseError, parse_predicates, parse_query

__all__ = [
    "Predicate", "Query", "LabeledWorkload", "conjunction", "query_from_ranges",
    "routing_signature",
    "FragmentError", "extract_fragment", "fragment_signature",
    "row_mask", "true_cardinality", "true_cardinalities", "true_selectivity",
    "WorkloadConfig", "default_bounded_column", "generate_inworkload",
    "generate_random", "generate_shifted_partitions",
    "ErrorSummary", "RollingQErrorMonitor", "qerror", "qerrors", "summarize",
    "DNFQuery", "estimate_disjunction", "intersect_queries",
    "true_disjunction_cardinality",
    "parse_predicates", "parse_query", "SQLParseError",
]
