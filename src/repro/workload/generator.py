"""Query-workload generation following the paper's Section 5.1.2.

Two kinds of workloads:

* **In-workload** queries have a *bounded attribute*: an attribute with a
  relatively large domain receives a range predicate whose center is drawn
  uniformly within a configurable range and whose width targets ~1% of the
  attribute's distinct values (the "target volume").  Remaining filters are
  random.
* **Random** queries drop the bounded attribute entirely; every filter is
  random.  These probe robustness to workload shift.

Random filters follow [Kipf et al. 2019; Yang et al. 2020]: draw the number
of filters, uniformly pick columns and operators, then take literals from a
randomly sampled *tuple* so predicates land in populated regions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.table import Table
from .executor import true_cardinality
from .predicate import LabeledWorkload, Predicate, Query

_FILTER_OPS = ("=", "<", "<=", ">", ">=")


@dataclass
class WorkloadConfig:
    """Knobs for the Section 5.1.2 generator."""

    num_filters_min: int = 5
    num_filters_max: int | None = None  # default: all columns
    bounded_volume: float = 0.01        # target fraction of distinct values
    center_range: tuple[float, float] = (0.0, 1.0)  # relative center window
    require_nonempty: bool = True
    max_attempts: int = 200
    operators: tuple[str, ...] = _FILTER_OPS  # add "!=", "IN" if desired
    in_list_size: int = 3               # literals per generated IN clause


def default_bounded_column(table: Table) -> str:
    """The paper bounds "an attribute with a relatively large domain"."""
    sizes = table.domain_sizes
    return table.columns[int(np.argmax(sizes))].name


def _random_filters(table: Table, rng: np.random.Generator,
                    cfg: WorkloadConfig,
                    exclude: str | None = None) -> list[Predicate]:
    names = [n for n in table.column_names if n != exclude]
    hi = cfg.num_filters_max or min(len(names), 11)
    hi = min(hi, len(names))
    lo = min(cfg.num_filters_min, hi)
    nf = int(rng.integers(lo, hi + 1))
    chosen = rng.choice(len(names), size=nf, replace=False)
    anchor_row = table.codes[rng.integers(0, table.num_rows)]
    preds: list[Predicate] = []
    for k in chosen:
        name = names[k]
        idx = table.column_index(name)
        col = table.columns[idx]
        literal = col.values[anchor_row[idx]]
        op = str(rng.choice(cfg.operators))
        if col.size <= 2 and op not in ("=", "!="):
            op = "="  # range ops on binary domains degenerate
        if op == "IN":
            extra = min(cfg.in_list_size - 1, col.size - 1)
            others = col.values[rng.choice(col.size, size=extra,
                                           replace=False)]
            values = {literal.item() if hasattr(literal, "item") else literal}
            values.update(v.item() if hasattr(v, "item") else v
                          for v in others)
            preds.append(Predicate(name, "IN", tuple(sorted(values))))
        else:
            preds.append(Predicate(name, op, literal))
    return preds


def _bounded_predicates(table: Table, column: str, rng: np.random.Generator,
                        cfg: WorkloadConfig) -> list[Predicate]:
    col = table.column(column)
    width = max(1, int(round(cfg.bounded_volume * col.size)))
    lo_rel, hi_rel = cfg.center_range
    center = int(rng.integers(int(lo_rel * (col.size - 1)),
                              max(int(hi_rel * (col.size - 1)), 1) + 1))
    lo_code = max(0, center - width // 2)
    hi_code = min(col.size - 1, lo_code + width - 1)
    return [Predicate(column, ">=", col.values[lo_code]),
            Predicate(column, "<=", col.values[hi_code])]


def generate_inworkload(table: Table, n: int, rng: np.random.Generator,
                        bounded_column: str | None = None,
                        cfg: WorkloadConfig | None = None) -> LabeledWorkload:
    """In-workload queries: bounded attribute + random filters."""
    cfg = cfg or WorkloadConfig()
    bounded = bounded_column or default_bounded_column(table)
    queries: list[Query] = []
    cards: list[int] = []
    attempts = 0
    while len(queries) < n:
        attempts += 1
        preds = _bounded_predicates(table, bounded, rng, cfg)
        preds += _random_filters(table, rng, cfg, exclude=bounded)
        query = Query(tuple(preds))
        card = true_cardinality(table, query)
        if cfg.require_nonempty and card == 0:
            if attempts > cfg.max_attempts * n:
                raise RuntimeError("could not generate non-empty queries")
            continue
        queries.append(query)
        cards.append(card)
    return LabeledWorkload(queries, np.asarray(cards, dtype=np.float64))


def generate_random(table: Table, n: int, rng: np.random.Generator,
                    cfg: WorkloadConfig | None = None) -> LabeledWorkload:
    """Random queries: every filter random, no bounded attribute."""
    cfg = cfg or WorkloadConfig()
    queries: list[Query] = []
    cards: list[int] = []
    attempts = 0
    while len(queries) < n:
        attempts += 1
        query = Query(tuple(_random_filters(table, rng, cfg)))
        card = true_cardinality(table, query)
        if cfg.require_nonempty and card == 0:
            if attempts > cfg.max_attempts * n:
                raise RuntimeError("could not generate non-empty queries")
            continue
        queries.append(query)
        cards.append(card)
    return LabeledWorkload(queries, np.asarray(cards, dtype=np.float64))


def generate_shifted_partitions(table: Table, n_parts: int, train_per_part: int,
                                test_per_part: int, rng: np.random.Generator,
                                bounded_column: str | None = None,
                                bounded_volume: float = 0.01,
                                ) -> list[tuple[LabeledWorkload, LabeledWorkload]]:
    """Workload partitions with disjoint bounded-attribute center windows.

    Reproduces the incremental-workload setup of Section 5.4: partition i's
    queries focus on a different region of the bounded attribute.
    ``bounded_volume`` narrows the windows (smaller -> harder, more
    tail-focused partitions).
    """
    out = []
    for part in range(n_parts):
        lo = part / n_parts
        hi = (part + 1) / n_parts
        cfg = WorkloadConfig(center_range=(lo, hi),
                             bounded_volume=bounded_volume)
        train = generate_inworkload(table, train_per_part, rng,
                                    bounded_column, cfg)
        test = generate_inworkload(table, test_per_part, rng,
                                   bounded_column, cfg)
        out.append((train, test))
    return out
