"""Predicates and queries.

A query is a conjunction of predicates (paper Section 3); each predicate is
``<attribute> <op> <literal>`` with ``op`` one of ``=, !=, <, <=, >, >=, IN``.
Internally every predicate reduces to a boolean *validity mask* over the
column's code domain, which is the representation both the executor and the
samplers consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..data.table import Table

SUPPORTED_OPS = ("=", "!=", "<", "<=", ">", ">=", "IN")
RANGE_OPS = ("<", "<=", ">", ">=")


@dataclass(frozen=True)
class Predicate:
    """One constraint on one attribute."""

    column: str
    op: str
    value: object

    def __post_init__(self):
        if self.op not in SUPPORTED_OPS:
            raise ValueError(f"unsupported operator {self.op!r}")
        if self.op == "IN" and not isinstance(self.value, (list, tuple)):
            raise ValueError("IN predicate needs a list/tuple literal")

    def __str__(self) -> str:
        return f"{self.column} {self.op} {self.value!r}"


@dataclass(frozen=True)
class Query:
    """A conjunction of predicates over one table."""

    predicates: tuple[Predicate, ...] = field(default_factory=tuple)

    def __post_init__(self):
        object.__setattr__(self, "predicates", tuple(self.predicates))

    @property
    def columns(self) -> list[str]:
        return [p.column for p in self.predicates]

    def __str__(self) -> str:
        if not self.predicates:
            return "TRUE"
        return " AND ".join(str(p) for p in self.predicates)

    def __len__(self) -> int:
        return len(self.predicates)

    def masks(self, table: Table) -> dict[int, np.ndarray]:
        """Per-column validity masks over code domains.

        Conjunctions on the same column intersect.  Columns without
        predicates are absent (treated as wildcards downstream).
        """
        out: dict[int, np.ndarray] = {}
        for pred in self.predicates:
            idx = table.column_index(pred.column)
            mask = table.columns[idx].valid_mask(pred.op, pred.value)
            if idx in out:
                out[idx] = out[idx] & mask
            else:
                out[idx] = mask
        return out


def conjunction(*predicates: Predicate) -> Query:
    """Build a conjunctive query from predicates."""
    return Query(tuple(predicates))


def routing_signature(query) -> tuple[str, frozenset[str]]:
    """The (kind, targets) signature the serving router keys on.

    Join-shaped queries (anything carrying a non-empty ``tables``
    attribute, e.g. :class:`repro.joins.JoinQuery`) route by the set of
    tables they touch; single-table queries route by the set of columns
    their predicates constrain.  Duck-typed so the workload layer does
    not import the joins package.
    """
    tables = getattr(query, "tables", None)
    if tables:
        return "join", frozenset(tables)
    return "table", frozenset(p.column for p in query.predicates)


def query_from_ranges(table: Table,
                      ranges: dict[str, tuple[object, object]]) -> Query:
    """Convenience: build ``lo <= col <= hi`` conjunctions from a dict."""
    preds: list[Predicate] = []
    for name, (lo, hi) in ranges.items():
        preds.append(Predicate(name, ">=", lo))
        preds.append(Predicate(name, "<=", hi))
    return Query(tuple(preds))


@dataclass
class LabeledWorkload:
    """Queries with their true cardinalities (the paper's (Q, C))."""

    queries: list[Query]
    cardinalities: np.ndarray

    def __post_init__(self):
        self.cardinalities = np.asarray(self.cardinalities, dtype=np.float64)
        if len(self.queries) != len(self.cardinalities):
            raise ValueError("queries and cardinalities must align")

    def __len__(self) -> int:
        return len(self.queries)

    def __getitem__(self, idx) -> tuple[Query, float]:
        return self.queries[idx], float(self.cardinalities[idx])

    def selectivities(self, num_rows: int) -> np.ndarray:
        return self.cardinalities / float(num_rows)

    def split(self, n_first: int) -> tuple["LabeledWorkload", "LabeledWorkload"]:
        return (LabeledWorkload(self.queries[:n_first],
                                self.cardinalities[:n_first]),
                LabeledWorkload(self.queries[n_first:],
                                self.cardinalities[n_first:]))

    def subset(self, indices: Sequence[int]) -> "LabeledWorkload":
        return LabeledWorkload([self.queries[i] for i in indices],
                               self.cardinalities[list(indices)])
