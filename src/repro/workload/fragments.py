"""Query fragments: sub-queries over table subsets.

The optimizer's DP enumeration asks for the cardinality of every connected
*fragment* of a join query — the sub-query restricted to a table subset.
:func:`extract_fragment` produces that sub-query for any query shape that
carries ``tables`` + ``predicates`` (duck-typed, like
:func:`~repro.workload.predicate.routing_signature`, so the workload layer
never imports the joins package), and :func:`fragment_signature` gives a
stable, hashable identity for caching served fragment estimates per model
version (see :class:`repro.optimizer.subplan.ServingCardinalityProvider`).
"""

from __future__ import annotations

from typing import Iterable


class FragmentError(ValueError):
    """Asked for a fragment over tables the query does not cover."""


def extract_fragment(query, tables: Iterable[str]):
    """The sub-query of ``query`` over the table subset ``tables``.

    Keeps exactly the predicates whose (table-qualified) column belongs
    to a kept table, in their original order, and returns a new query of
    the same type over the sorted subset.  Generalizes the optimizer
    study's ``restrict_query`` and underpins cross-schema routing: a
    fragment's :func:`~repro.workload.predicate.routing_signature` names
    only the tables it actually touches.

    Raises :class:`FragmentError` when ``tables`` is empty or names a
    table the query does not join.
    """
    wanted = frozenset(tables)
    if not wanted:
        raise FragmentError("cannot extract a fragment over zero tables")
    have = frozenset(getattr(query, "tables", None) or ())
    if not have:
        raise FragmentError(
            f"query {query!s} has no tables; fragments are only defined "
            "for join-shaped queries")
    missing = wanted - have
    if missing:
        raise FragmentError(
            f"tables {sorted(missing)} are not joined by {query!s}")
    preds = tuple(p for p in query.predicates
                  if p.column.split(".", 1)[0] in wanted)
    return type(query)(tuple(sorted(wanted)), preds)


def fragment_signature(query) -> tuple:
    """A stable, hashable identity for a (fragment) query.

    Two queries with the same tables and the same predicate
    multiset share a signature, independent of predicate order —
    the key the serving-tier sub-plan cache is kept on (together
    with the model version).  ``repr`` normalises literals so numpy
    scalars and Python numbers of equal value collide only when their
    reprs do, which is exactly the bit-care the seeded serving path
    wants.
    """
    tables = tuple(sorted(getattr(query, "tables", None) or ()))
    preds = tuple(sorted((p.column, p.op, repr(p.value))
                         for p in query.predicates))
    return tables, preds
