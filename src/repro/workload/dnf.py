"""Disjunction support via the inclusion-exclusion principle.

The paper (Section 3) notes that an estimator for conjunctions extends to
disjunctions: for a DNF query ``C_1 OR ... OR C_k``,

    Sel(OR C_i) = sum over non-empty S of (-1)^(|S|+1) Sel(AND of S)

where the conjunction of conjunctions intersects their per-column masks.
Any :class:`~repro.estimators.base.CardinalityEstimator` can therefore
answer DNF queries through :func:`estimate_disjunction`.

The number of terms is ``2^k - 1``; callers should keep ``k`` modest (the
typical OR fan-in in analytics queries is small).  Contradictory
intersections (disjoint masks on the same column) contribute zero and are
skipped without calling the estimator.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from ..data.table import Table
from .executor import true_cardinality
from .predicate import Predicate, Query


class DNFQuery:
    """A disjunction (OR) of conjunctive queries."""

    def __init__(self, conjunctions: list[Query]):
        if not conjunctions:
            raise ValueError("a DNF query needs at least one conjunction")
        self.conjunctions = list(conjunctions)

    def __len__(self) -> int:
        return len(self.conjunctions)

    def __str__(self) -> str:
        return " OR ".join(f"({q})" for q in self.conjunctions)


def intersect_queries(table: Table, queries: list[Query]) -> Query | None:
    """The conjunction of several conjunctions, or None if contradictory.

    Intersecting happens on code masks; the result is re-expressed with IN
    predicates over the surviving values so any estimator can consume it.
    """
    merged: dict[int, np.ndarray] = {}
    for query in queries:
        for idx, mask in query.masks(table).items():
            merged[idx] = merged[idx] & mask if idx in merged else mask
    predicates: list[Predicate] = []
    for idx, mask in sorted(merged.items()):
        if not mask.any():
            return None
        column = table.columns[idx]
        values = column.values[mask]
        if len(values) == column.size:
            continue  # unconstrained after all
        predicates.append(Predicate(column.name, "IN", tuple(values)))
    return Query(tuple(predicates))


def estimate_disjunction(estimator, dnf: DNFQuery,
                         max_terms: int = 1024) -> float:
    """Cardinality of a DNF query via inclusion-exclusion."""
    k = len(dnf)
    if 2 ** k - 1 > max_terms:
        raise ValueError(
            f"inclusion-exclusion over {k} disjuncts needs {2 ** k - 1} "
            f"terms (> {max_terms}); reduce the OR fan-in")
    table = estimator.table
    total = 0.0
    for size in range(1, k + 1):
        sign = 1.0 if size % 2 == 1 else -1.0
        for combo in combinations(range(k), size):
            subset = [dnf.conjunctions[i] for i in combo]
            merged = intersect_queries(table, subset)
            if merged is None:
                continue
            total += sign * estimator.estimate(merged)
    return float(min(max(total, 0.0), table.num_rows))


def true_disjunction_cardinality(table: Table, dnf: DNFQuery) -> int:
    """Exact DNF cardinality by unioning row masks (ground truth)."""
    from .executor import row_mask
    keep = np.zeros(table.num_rows, dtype=bool)
    for query in dnf.conjunctions:
        keep |= row_mask(table, query)
    return int(keep.sum())
