"""Exact query execution by scanning code matrices.

Provides the ground-truth cardinalities that label training workloads and
score estimators.  Everything is vectorised over rows.
"""

from __future__ import annotations

import numpy as np

from ..data.table import Table
from .predicate import Query


def row_mask(table: Table, query: Query) -> np.ndarray:
    """Boolean mask of rows satisfying the conjunction."""
    keep = np.ones(table.num_rows, dtype=bool)
    for idx, valid in query.masks(table).items():
        keep &= valid[table.codes[:, idx]]
        if not keep.any():
            break
    return keep


def true_cardinality(table: Table, query: Query) -> int:
    """Exact number of rows satisfying the query (full scan)."""
    return int(row_mask(table, query).sum())


def true_cardinalities(table: Table, queries: list[Query]) -> np.ndarray:
    """Vector of exact cardinalities for many queries."""
    return np.array([true_cardinality(table, q) for q in queries],
                    dtype=np.float64)


def true_selectivity(table: Table, query: Query) -> float:
    """Exact selectivity: cardinality over row count."""
    return true_cardinality(table, query) / float(table.num_rows)
