"""Q-error (paper Eq. 6) and quantile summaries for result tables."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def qerror(estimate: float, truth: float, floor: float = 1.0) -> float:
    """``max(1, truth/est, est/truth)`` with both sides floored at 1 row.

    Flooring matches common practice (and the paper's single-table setup,
    where generated queries are non-empty): an estimator that answers 0 for
    a 1-row query gets the same error as answering 1.
    """
    est = max(float(estimate), floor)
    tru = max(float(truth), floor)
    return max(est / tru, tru / est, 1.0)


def qerrors(estimates: np.ndarray, truths: np.ndarray,
            floor: float = 1.0) -> np.ndarray:
    """Vectorised q-errors (see :func:`qerror`)."""
    est = np.maximum(np.asarray(estimates, dtype=np.float64), floor)
    tru = np.maximum(np.asarray(truths, dtype=np.float64), floor)
    return np.maximum.reduce([est / tru, tru / est,
                              np.ones_like(est)])


@dataclass
class ErrorSummary:
    """The four quantities every results table in the paper reports."""

    mean: float
    median: float
    p95: float
    maximum: float
    count: int

    @classmethod
    def from_errors(cls, errors: np.ndarray) -> "ErrorSummary":
        errors = np.asarray(errors, dtype=np.float64)
        if errors.size == 0:
            raise ValueError("no errors to summarise")
        return cls(mean=float(errors.mean()),
                   median=float(np.median(errors)),
                   p95=float(np.percentile(errors, 95)),
                   maximum=float(errors.max()),
                   count=int(errors.size))

    def row(self) -> dict[str, float]:
        return {"mean": self.mean, "median": self.median,
                "95th": self.p95, "max": self.maximum}

    def __str__(self) -> str:
        return (f"mean={self.mean:.3g} median={self.median:.3g} "
                f"95th={self.p95:.3g} max={self.maximum:.3g}")


def summarize(estimates: np.ndarray, truths: np.ndarray) -> ErrorSummary:
    """Quantile summary of the q-errors of a batch of estimates."""
    return ErrorSummary.from_errors(qerrors(estimates, truths))
