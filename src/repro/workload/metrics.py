"""Q-error (paper Eq. 6), quantile summaries, and rolling drift monitoring."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np


def qerror(estimate: float, truth: float, floor: float = 1.0) -> float:
    """``max(1, truth/est, est/truth)`` with both sides floored at 1 row.

    Flooring matches common practice (and the paper's single-table setup,
    where generated queries are non-empty): an estimator that answers 0 for
    a 1-row query gets the same error as answering 1.
    """
    est = max(float(estimate), floor)
    tru = max(float(truth), floor)
    return max(est / tru, tru / est, 1.0)


def qerrors(estimates: np.ndarray, truths: np.ndarray,
            floor: float = 1.0) -> np.ndarray:
    """Vectorised q-errors (see :func:`qerror`)."""
    est = np.maximum(np.asarray(estimates, dtype=np.float64), floor)
    tru = np.maximum(np.asarray(truths, dtype=np.float64), floor)
    return np.maximum.reduce([est / tru, tru / est,
                              np.ones_like(est)])


@dataclass
class ErrorSummary:
    """The four quantities every results table in the paper reports."""

    mean: float
    median: float
    p95: float
    maximum: float
    count: int

    @classmethod
    def from_errors(cls, errors: np.ndarray) -> "ErrorSummary":
        errors = np.asarray(errors, dtype=np.float64)
        if errors.size == 0:
            raise ValueError("no errors to summarise")
        return cls(mean=float(errors.mean()),
                   median=float(np.median(errors)),
                   p95=float(np.percentile(errors, 95)),
                   maximum=float(errors.max()),
                   count=int(errors.size))

    def row(self) -> dict[str, float]:
        return {"mean": self.mean, "median": self.median,
                "95th": self.p95, "max": self.maximum}

    def __str__(self) -> str:
        return (f"mean={self.mean:.3g} median={self.median:.3g} "
                f"95th={self.p95:.3g} max={self.maximum:.3g}")


def summarize(estimates: np.ndarray, truths: np.ndarray) -> ErrorSummary:
    """Quantile summary of the q-errors of a batch of estimates."""
    return ErrorSummary.from_errors(qerrors(estimates, truths))


class RollingQErrorMonitor:
    """Rolling window of serving q-errors for workload-drift detection.

    The serving loop (:mod:`repro.serve`) feeds every observed
    (estimate, true cardinality) pair in; quantiles over the last
    ``window`` observations decide when the live model has drifted far
    enough from the workload to warrant query-driven refinement
    (Section 4.5 incremental ingestion).
    """

    def __init__(self, window: int = 256, floor: float = 1.0):
        self.window = int(window)
        self.floor = float(floor)
        self._errors: deque[float] = deque(maxlen=self.window)
        self.total_observed = 0

    def __len__(self) -> int:
        return len(self._errors)

    def add(self, estimate: float, truth: float) -> float:
        """Record one observation; returns its q-error."""
        err = qerror(estimate, truth, self.floor)
        self._errors.append(err)
        self.total_observed += 1
        return err

    def extend(self, estimates: np.ndarray, truths: np.ndarray) -> np.ndarray:
        errs = qerrors(estimates, truths, self.floor)
        self._errors.extend(float(e) for e in errs)
        self.total_observed += len(errs)
        return errs

    def errors(self) -> np.ndarray:
        return np.fromiter(self._errors, dtype=np.float64,
                           count=len(self._errors))

    def quantile(self, q: float) -> float:
        """q-error quantile over the window (``inf`` when empty, so an
        unwarmed monitor never reads as healthy)."""
        if not self._errors:
            return float("inf")
        return float(np.quantile(self.errors(), q))

    def mean(self) -> float:
        if not self._errors:
            return float("inf")
        return float(self.errors().mean())

    def summary(self) -> ErrorSummary | None:
        if not self._errors:
            return None
        return ErrorSummary.from_errors(self.errors())

    def reset(self) -> None:
        """Forget the window (after a hot-swap the old model's errors no
        longer describe the active model)."""
        self._errors.clear()
