"""A small SQL-predicate parser for the estimator API.

Lets users write queries the way they appear in logs instead of building
:class:`Predicate` objects by hand::

    parse_query("SELECT COUNT(*) FROM dmv WHERE county <= 100 AND "
                "color_code = 'BK'")

Supported grammar (the fragment the paper's estimator answers):

* comparison predicates with ``=, !=, <>, <, <=, >, >=``;
* ``IN (v1, v2, ...)`` and ``BETWEEN lo AND hi``;
* ``AND`` / ``OR`` with parentheses — formulas containing ``OR`` are
  converted to DNF and returned as :class:`~repro.workload.dnf.DNFQuery`
  (answered via inclusion-exclusion).

Literals: integers, floats, and single-quoted strings.
"""

from __future__ import annotations

import re

from .dnf import DNFQuery
from .predicate import Predicate, Query

_TOKEN_RE = re.compile(r"""
    \s*(?:
        (?P<string>'(?:[^']|'')*')
      | (?P<number>-?\d+\.?\d*)
      | (?P<op><=|>=|<>|!=|=|<|>)
      | (?P<lparen>\()
      | (?P<rparen>\))
      | (?P<comma>,)
      | (?P<word>[A-Za-z_][A-Za-z_0-9.]*)
    )""", re.VERBOSE)

_KEYWORDS = {"AND", "OR", "IN", "BETWEEN", "NOT", "WHERE", "SELECT", "FROM",
             "COUNT"}


class SQLParseError(ValueError):
    pass


def tokenize(text: str) -> list[tuple[str, str]]:
    """Lex a predicate fragment into (kind, value) tokens."""
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise SQLParseError(f"cannot tokenize near: {remainder[:25]!r}")
        pos = match.end()
        kind = match.lastgroup
        value = match.group(kind)
        if kind == "word" and value.upper() in _KEYWORDS:
            tokens.append(("keyword", value.upper()))
        else:
            tokens.append((kind, value))
    return tokens


def _literal(kind: str, value: str):
    if kind == "string":
        return value[1:-1].replace("''", "'")
    if kind == "number":
        return float(value) if "." in value else int(value)
    raise SQLParseError(f"expected a literal, got {value!r}")


class _Parser:
    """Recursive descent over the token list; yields DNF (list of
    conjunctions, each a list of predicates)."""

    def __init__(self, tokens: list[tuple[str, str]]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> tuple[str, str] | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> tuple[str, str]:
        tok = self.peek()
        if tok is None:
            raise SQLParseError("unexpected end of input")
        self.pos += 1
        return tok

    def expect(self, kind: str, value: str | None = None) -> tuple[str, str]:
        tok = self.next()
        if tok[0] != kind or (value is not None and tok[1] != value):
            raise SQLParseError(f"expected {value or kind}, got {tok[1]!r}")
        return tok

    # dnf := conj (OR conj)*
    def parse_or(self) -> list[list[Predicate]]:
        terms = [self.parse_and()]
        while self.peek() == ("keyword", "OR"):
            self.next()
            terms.append(self.parse_and())
        out: list[list[Predicate]] = []
        for term in terms:
            out.extend(term)
        return out

    # conj := atom (AND atom)* ; result is itself a DNF (atoms may nest ORs)
    def parse_and(self) -> list[list[Predicate]]:
        result = self.parse_atom()
        while self.peek() == ("keyword", "AND"):
            self.next()
            right = self.parse_atom()
            result = [a + b for a in result for b in right]  # distribute
        return result

    def parse_atom(self) -> list[list[Predicate]]:
        tok = self.peek()
        if tok == ("lparen", "("):
            self.next()
            inner = self.parse_or()
            self.expect("rparen")
            return inner
        return [self.parse_predicate()]

    def parse_predicate(self) -> list[Predicate]:
        """One source-level predicate; BETWEEN expands to two."""
        kind, column = self.next()
        if kind != "word":
            raise SQLParseError(f"expected a column name, got {column!r}")
        tok = self.next()
        if tok == ("keyword", "IN"):
            self.expect("lparen")
            values = []
            while True:
                k, v = self.next()
                values.append(_literal(k, v))
                nxt = self.next()
                if nxt == ("rparen", ")"):
                    break
                if nxt != ("comma", ","):
                    raise SQLParseError(f"expected ',' in IN list, "
                                        f"got {nxt[1]!r}")
            return [Predicate(column, "IN", tuple(values))]
        if tok == ("keyword", "BETWEEN"):
            k1, v1 = self.next()
            self.expect("keyword", "AND")
            k2, v2 = self.next()
            lo, hi = _literal(k1, v1), _literal(k2, v2)
            return [Predicate(column, ">=", lo), Predicate(column, "<=", hi)]
        if tok[0] == "op":
            op = "!=" if tok[1] == "<>" else tok[1]
            k, v = self.next()
            return [Predicate(column, op, _literal(k, v))]
        raise SQLParseError(f"expected an operator after {column!r}, "
                            f"got {tok[1]!r}")


def parse_predicates(text: str) -> Query | DNFQuery:
    """Parse a WHERE-clause fragment into a Query (or DNFQuery if it
    contains OR)."""
    tokens = tokenize(text)
    if not tokens:
        return Query(())
    parser = _Parser(tokens)
    dnf = parser.parse_or()
    if parser.peek() is not None:
        raise SQLParseError(f"trailing tokens near {parser.peek()[1]!r}")
    if len(dnf) == 1:
        return Query(tuple(dnf[0]))
    return DNFQuery([Query(tuple(conj)) for conj in dnf])


_WHERE_RE = re.compile(r"\bWHERE\b", re.IGNORECASE)


def parse_query(sql: str) -> Query | DNFQuery:
    """Parse ``SELECT COUNT(*) FROM t WHERE <predicates>`` (or a bare
    predicate fragment)."""
    parts = _WHERE_RE.split(sql, maxsplit=1)
    if len(parts) == 2:
        return parse_predicates(parts[1])
    if re.match(r"\s*SELECT\b", sql, re.IGNORECASE):
        return Query(())  # no WHERE clause: the full table
    return parse_predicates(sql)
