"""Batched estimation scheduling.

``estimate_many`` workloads mix queries with different *queried-column
signatures*.  Running them through one engine call forces every query to
pay for the union of all queried columns: the autoregressive loop visits a
column as soon as *any* query in the batch constrains it, and samples every
row there.  The scheduler groups queries by signature first, so each group
executes exactly the steps its queries need — a query touching 3 columns
costs 3 steps even when batched next to an 11-column query — and chunks
groups so the row count (queries x samples) stays within a working-set
budget.

Grouped execution also makes batched estimates reproduce the single-query
code path exactly: a query's estimate no longer depends on which other
queries happened to share its batch.
"""

from __future__ import annotations

import numpy as np

from .constraints import compile_constraints
from .engine import InferenceEngine


class BatchScheduler:
    """Signature-grouping scheduler over an :class:`InferenceEngine`."""

    def __init__(self, engine: InferenceEngine, max_rows: int = 8192):
        self.engine = engine
        self.max_rows = int(max_rows)

    def plan(self, constraint_lists: list[list]) -> list[list[int]]:
        """Group query indices by queried-column signature."""
        groups: dict[tuple[int, ...], list[int]] = {}
        num_cols = len(self.engine.model.domain_sizes)
        for i, cl in enumerate(constraint_lists):
            sig = tuple(c for c in range(num_cols) if cl[c] is not None)
            groups.setdefault(sig, []).append(i)
        return list(groups.values())

    def estimate_many(self, constraint_lists: list[list], num_samples: int,
                      rng: np.random.Generator, with_error: bool = False):
        """Estimates for an arbitrary query mix, grouped then chunked."""
        n = len(constraint_lists)
        out = np.empty(n, dtype=np.float64)
        errs = np.empty(n, dtype=np.float64) if with_error else None
        chunk_queries = max(1, self.max_rows // max(num_samples, 1))
        for group in self.plan(constraint_lists):
            for start in range(0, len(group), chunk_queries):
                idx = group[start:start + chunk_queries]
                chunk = [constraint_lists[i] for i in idx]
                cc = compile_constraints(chunk,
                                         self.engine.model.domain_sizes)
                result = self.engine.estimate_batch(
                    chunk, num_samples, rng, with_error=with_error,
                    compiled_constraints=cc)
                if with_error:
                    out[idx], errs[idx] = result
                else:
                    out[idx] = result
        if with_error:
            return out, errs
        return out
