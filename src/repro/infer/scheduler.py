"""Batched estimation scheduling.

``estimate_many`` workloads mix queries with different *queried-column
signatures*.  Running them through one engine call forces every query to
pay for the union of all queried columns: the autoregressive loop visits a
column as soon as *any* query in the batch constrains it, and samples every
row there.  The scheduler groups queries by signature first, so each group
executes exactly the steps its queries need — a query touching 3 columns
costs 3 steps even when batched next to an 11-column query — and chunks
groups so the row count (queries x samples) stays within a working-set
budget.

Grouping only pays when groups are big enough to amortise its fixed costs
(one constraint compilation and one engine dispatch per group).  Diverse
workloads — e.g. the DMV bench mix, where most signatures appear once —
used to run *slower* grouped than plainly batched.  Groups smaller than
``min_group_size`` are therefore coalesced, in submission order, into
mixed chunks that run through a single ``estimate_batch`` call each; large
groups keep the exact per-signature execution (and its single-query-path
reproducibility).  Set ``min_group_size=1`` to force full grouping,
e.g. when bit-reproducibility against the solo path matters more than
throughput.
"""

from __future__ import annotations

import numpy as np

from .constraints import compile_constraints
from .engine import InferenceEngine


class BatchScheduler:
    """Signature-grouping scheduler over an :class:`InferenceEngine`."""

    def __init__(self, engine: InferenceEngine, max_rows: int = 8192,
                 min_group_size: int = 4, coalesce_rows: int = 1024):
        self.engine = engine
        self.max_rows = int(max_rows)
        self.min_group_size = int(min_group_size)
        # Mixed chunks pay the union of their queries' columns at every
        # step, so they peak at a much smaller working set than
        # same-signature chunks (~8 queries x 128 samples measured best
        # on the DMV bench mix).
        self.coalesce_rows = int(coalesce_rows)

    def plan(self, constraint_lists: list[list]) -> list[list[int]]:
        """Group query indices by queried-column signature."""
        groups: dict[tuple[int, ...], list[int]] = {}
        num_cols = len(self.engine.model.domain_sizes)
        for i, cl in enumerate(constraint_lists):
            sig = tuple(c for c in range(num_cols) if cl[c] is not None)
            groups.setdefault(sig, []).append(i)
        return list(groups.values())

    def estimate_many(self, constraint_lists: list[list], num_samples: int,
                      rng: np.random.Generator, with_error: bool = False):
        """Estimates for an arbitrary query mix, grouped then chunked."""
        n = len(constraint_lists)
        out = np.empty(n, dtype=np.float64)
        errs = np.empty(n, dtype=np.float64) if with_error else None
        if n == 0:
            return (out, errs) if with_error else out
        chunk_queries = max(1, self.max_rows // max(num_samples, 1))

        grouped: list[list[int]] = []
        coalesced: list[int] = []
        for group in self.plan(constraint_lists):
            if len(group) >= self.min_group_size:
                grouped.append(group)
            else:
                coalesced.extend(group)
        coalesced.sort()

        mixed_chunk = max(1, min(chunk_queries,
                                 self.coalesce_rows // max(num_samples, 1)))
        for start in range(0, len(coalesced), mixed_chunk):
            idx = coalesced[start:start + mixed_chunk]
            chunk = [constraint_lists[i] for i in idx]
            result = self.engine.estimate_batch(
                chunk, num_samples, rng, with_error=with_error)
            if with_error:
                out[idx], errs[idx] = result
            else:
                out[idx] = result

        for group in grouped:
            for start in range(0, len(group), chunk_queries):
                idx = group[start:start + chunk_queries]
                chunk = [constraint_lists[i] for i in idx]
                cc = compile_constraints(chunk,
                                         self.engine.model.domain_sizes)
                result = self.engine.estimate_batch(
                    chunk, num_samples, rng, with_error=with_error,
                    compiled_constraints=cc)
                if with_error:
                    out[idx], errs[idx] = result
                else:
                    out[idx] = result
        if with_error:
            return out, errs
        return out
