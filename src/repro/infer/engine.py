"""The progressive-sampling inference engine.

Drop-in replacement for the legacy ``ProgressiveSampler.estimate_batch``
numpy loop, same Monte-Carlo estimator (paper Section 4.2) and the same
random-variate consumption order, rebuilt around four ideas:

1. **Compiled weights** (:class:`~repro.infer.compiled.CompiledModel`):
   fused/pre-transposed matrices and per-column output heads, invalidated
   by parameter version counters.
2. **Compiled constraints**
   (:class:`~repro.infer.constraints.CompiledConstraints`): the per-step
   per-query Python loop over constraint tuples becomes packed arrays.
3. **Prefix-state deduplication**: progressive sampling conditions only on
   the sampled prefix, so rows that share a prefix share hidden states,
   logits and truncated conditionals.  Step 0 is the extreme case — every
   row starts fully wildcarded, and its logits are cached per parameter
   version, so the first step costs O(queries) instead of
   O(queries x samples x network).  Later steps run the network on the
   set of *distinct* prefixes, which stays tiny while early (often
   large-domain, factorized) columns are being sampled.
4. **Flat inverse-CDF sampling**: per-state CDFs are laid out in one
   monotone float64 array (per-segment offsets) so a single vectorised
   ``searchsorted`` draws every row's code — no ``[batch, domain]``
   comparison matrix, no per-row normalisation passes.

Work buffers are pooled per (domain, dtype) and reused across steps and
calls; sampled values are written into the encoded-input buffer in place.
"""

from __future__ import annotations

import time

import numpy as np

from ..nn.made import ResMADE
from .compiled import CompiledModel
from .constraints import CompiledConstraints, compile_constraints


class _BufferPool:
    """Reusable 2-D work arrays keyed by (tag, columns, dtype)."""

    def __init__(self):
        self._arrays: dict[tuple[str, int, str], np.ndarray] = {}

    def get(self, tag: str, rows: int, cols: int, dtype) -> np.ndarray:
        key = (tag, cols, np.dtype(dtype).str)
        arr = self._arrays.get(key)
        if arr is None or arr.shape[0] < rows:
            arr = np.empty((rows, cols), dtype=dtype)
            self._arrays[key] = arr
        return arr[:rows]


class InferenceEngine:
    """Batched progressive-sampling estimation over compiled artifacts."""

    def __init__(self, model: ResMADE):
        self.model = model
        self.compiled = CompiledModel(model)
        self._pool = _BufferPool()
        self._metrics = None
        self._m_batches = self._m_queries = self._m_seconds = None

    # ------------------------------------------------------------------
    @property
    def metrics(self):
        """Optional :class:`repro.obs.MetricsRegistry`; ``None`` keeps
        the batch loop entirely uninstrumented (zero overhead)."""
        return self._metrics

    @metrics.setter
    def metrics(self, registry) -> None:
        self._metrics = registry
        if registry is None:
            self._m_batches = self._m_queries = self._m_seconds = None
            return
        self._m_batches = registry.counter(
            "repro_engine_batches_total",
            "Compiled-engine batch invocations")
        self._m_queries = registry.counter(
            "repro_engine_queries_total",
            "Queries estimated by the compiled engine")
        self._m_seconds = registry.histogram(
            "repro_engine_batch_seconds",
            "Wall time per compiled-engine batch")

    def estimate_batch(self, constraint_lists: list[list], num_samples: int,
                       rng: np.random.Generator, with_error: bool = False,
                       compiled_constraints: CompiledConstraints | None = None):
        """Instrumented wrapper over :meth:`_estimate_batch`: one timing
        read and three registry updates per *batch* (not per query), and
        nothing at all when no registry is attached."""
        if self._metrics is None:
            return self._estimate_batch(constraint_lists, num_samples, rng,
                                        with_error, compiled_constraints)
        t0 = time.perf_counter()
        try:
            return self._estimate_batch(constraint_lists, num_samples, rng,
                                        with_error, compiled_constraints)
        finally:
            self._m_seconds.observe(time.perf_counter() - t0)
            self._m_batches.inc()
            self._m_queries.inc(
                compiled_constraints.n_queries
                if compiled_constraints is not None
                else len(constraint_lists))

    def _estimate_batch(self, constraint_lists: list[list], num_samples: int,
                        rng: np.random.Generator, with_error: bool = False,
                        compiled_constraints: CompiledConstraints | None = None):
        """Selectivity estimates (and optional standard errors) for a batch.

        Mirrors the legacy sampler's semantics exactly: iterate the union
        of queried columns in autoregressive order, truncate and sample at
        every step but the last, draw one uniform per row per sampled step.
        """
        model = self.model
        self.compiled.ensure_current()
        cc = compiled_constraints if compiled_constraints is not None \
            else compile_constraints(constraint_lists, model.domain_sizes)
        nq, s = cc.n_queries, num_samples
        if nq == 0:
            empty = np.zeros(0, dtype=np.float64)
            return (empty, empty.copy()) if with_error else empty
        batch = nq * s

        queried_pos = [pos for pos in range(model.num_cols)
                       if cc.queried[model.order[pos]]]
        density = np.ones(batch, dtype=np.float64)
        if not queried_pos:
            result = np.ones(nq, dtype=np.float64)
            if with_error:
                return result, np.zeros(nq, dtype=np.float64)
            return result
        last_pos = queried_pos[-1]

        # Prefix-state bookkeeping.  Rows never move; ``state_of_row``
        # maps each (query, sample) row to its current distinct prefix.
        state_of_row = np.repeat(np.arange(nq, dtype=np.int64), s)
        state_qi = np.arange(nq, dtype=np.int64)
        x_states: np.ndarray | None = None    # [n_states, input_width]
        hist: dict[int, np.ndarray] = {}      # col -> per-state codes
        at_wildcard = True

        for pos in queried_pos:
            col = model.order[pos]
            domain = model.domain_sizes[col]
            n_states = len(state_qi)

            # Model forward on distinct prefixes only.  The all-wildcard
            # prefix (step 0) is cached per parameter version.
            if at_wildcard:
                e = self._wildcard_exp(col)            # [1, domain]
                z = self._wildcard_z(col)              # [1]
            else:
                h = self.compiled.hidden(x_states)
                relu = np.maximum(h, 0.0, out=h)
                logits = np.matmul(relu, self.compiled.heads[col],
                                   out=self._pool.get("logits", n_states,
                                                      domain, np.float32))
                logits += self.compiled.head_bias[col]
                logits -= logits.max(axis=1, keepdims=True)
                e = np.exp(logits, out=logits)
                z = e.sum(axis=1)

            hi_codes = hist.get(col - 1)
            ew = cc.weight_states(col, state_qi, hi_codes,
                                  out=self._pool.get("weight", n_states,
                                                     domain, np.float32))
            ew *= e

            if pos == last_pos:
                in_region = ew.sum(axis=1, dtype=np.float64)
                in_region /= z
                density *= in_region[state_of_row]
                break

            cdf = np.cumsum(ew, axis=1, dtype=np.float64,
                            out=self._pool.get("cdf", n_states, domain,
                                               np.float64))
            mass = cdf[:, -1].copy()
            in_region = mass / z
            density *= in_region[state_of_row]

            # Rows with zero truncated mass sample uniformly over the
            # valid set (empty set: anywhere); their density is already 0.
            dead = mass <= 0
            if dead.any():
                fallback = cc.valid_states(col, state_qi[dead],
                                           None if hi_codes is None
                                           else hi_codes[dead])
                fallback = fallback.astype(np.float32)
                empty = fallback.sum(axis=1) == 0
                fallback[empty] = 1.0
                ew[dead] = fallback
                cdf[dead] = np.cumsum(fallback, axis=1)
                mass[dead] = cdf[dead, -1]

            # Flat monotone CDF: segment g occupies values in
            # [base[g], base[g] + mass[g]] and base[g+1] - base[g] =
            # mass[g] + 1 keeps segments strictly separated.
            base = np.empty(n_states, dtype=np.float64)
            base[0] = 0.0
            np.cumsum(mass[:-1] + 1.0, out=base[1:])
            cdf += base[:, None]
            u = rng.random((batch, 1))
            vals = u[:, 0] * mass[state_of_row] + base[state_of_row]
            flat_pos = np.searchsorted(cdf.ravel(), vals, side="left")
            key = np.minimum(flat_pos, state_of_row * domain + (domain - 1))

            # Split states on the sampled code and write the encoding of
            # each new distinct prefix into the input buffer in place.
            new_states, state_of_row = np.unique(key, return_inverse=True)
            parent = new_states // domain
            codes = new_states % domain
            state_qi = state_qi[parent]
            for prev_col in hist:
                hist[prev_col] = hist[prev_col][parent]
            hist[col] = codes
            if at_wildcard:
                x_states = np.repeat(self.compiled.wildcard_row,
                                     len(new_states), axis=0)
            else:
                x_states = x_states[parent]
            x_states[:, model.input_slices[col]] = \
                model.encoders[col].encode_hard(codes)
            at_wildcard = False

        per_sample = density.reshape(nq, s)
        result = np.clip(per_sample.mean(axis=1), 0.0, 1.0)
        if with_error:
            std_err = per_sample.std(axis=1, ddof=1) / np.sqrt(s) \
                if s > 1 else np.zeros(nq)
            return result, std_err
        return result

    # ------------------------------------------------------------------
    # Cached all-wildcard conditionals (valid per parameter version; the
    # CompiledModel drops its wildcard caches on recompile, so these are
    # keyed on the compiled logits object identity).
    # ------------------------------------------------------------------
    def _wildcard_exp(self, col: int) -> np.ndarray:
        logits = self.compiled.wildcard_logits(col)
        cache = getattr(self, "_wc_exp", None)
        if cache is None:
            cache = self._wc_exp = {}
        entry = cache.get(col)
        if entry is None or entry[0] is not logits:
            e = np.exp(logits - logits.max(axis=1, keepdims=True))
            cache[col] = (logits, e, e.sum(axis=1))
            entry = cache[col]
        return entry[1]

    def _wildcard_z(self, col: int) -> np.ndarray:
        self._wildcard_exp(col)
        return self._wc_exp[col][2]
