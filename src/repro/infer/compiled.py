"""Compiled inference view of a :class:`~repro.nn.made.ResMADE` model.

:class:`CompiledModel` materialises everything the hot sampling loop needs
as flat, pre-transposed, contiguous float32 numpy arrays:

* the fused ``weight * mask`` matrix of every masked layer, transposed to
  ``[in, out]`` so each forward matmul is a plain row-major GEMM;
* per-column *output heads*: the slice of the fused output projection that
  produces one column's logits, pre-transposed to ``[hidden, domain]``,
  plus the matching bias slice — the legacy path pays a full
  ``weight * mask`` product over *all* logits just to read one column;
* the constant fully-wildcarded input row, its hidden state, and each
  column's logits under full wildcarding.  Every progressive-sampling
  batch starts from this state, so step 0 costs one cached row instead of
  a batch-sized forward pass.

The fused/pre-transposed matrices come from each layer's
``MaskedLinear.fused_weight_t()`` cache — the same arrays the training
engine's hand-written kernels (:mod:`repro.train`) consume, so training
steps and inference snapshots never duplicate the ``weight * mask``
product for one parameter version.

Invalidation contract
---------------------
Compiled artifacts derive from parameter *values*, so the cache is keyed on
the tuple of parameter version counters (see ``Tensor.version``).  Optimizer
steps (:class:`~repro.nn.optim.SGD` / :class:`~repro.nn.optim.Adam`) and
``Module.load_state_dict`` bump versions; any code mutating ``Tensor.data``
in place must call ``bump_version()``.  ``ensure_current()`` recompiles
lazily on the next use after a bump — training and estimation can therefore
interleave freely (Section 4.5 ingestion) without stale reads.
"""

from __future__ import annotations

import numpy as np

from ..nn.made import ResMADE


class CompiledModel:
    """Read-optimised snapshot of a ResMADE for gradient-free inference."""

    def __init__(self, model: ResMADE):
        self.model = model
        self._version: tuple[int, ...] | None = None
        self.ensure_current()

    # ------------------------------------------------------------------
    # Compilation / invalidation
    # ------------------------------------------------------------------
    def _current_version(self) -> tuple[int, ...]:
        return tuple(p.version for p in self.model.parameters())

    def ensure_current(self) -> bool:
        """Recompile if any parameter changed; returns True when rebuilt."""
        version = self._current_version()
        if version == self._version:
            return False
        self._compile()
        self._version = version
        return True

    def _compile(self) -> None:
        model = self.model
        self.w_in = np.ascontiguousarray(
            model.input_layer.fused_weight_t(), dtype=np.float32)
        self.b_in = model.input_layer.bias.data
        self.block_weights: list[tuple[np.ndarray, np.ndarray,
                                       np.ndarray, np.ndarray]] = []
        for block in model.blocks:
            self.block_weights.append((
                np.ascontiguousarray(block.fc1.fused_weight_t(),
                                     dtype=np.float32),
                block.fc1.bias.data,
                np.ascontiguousarray(block.fc2.fused_weight_t(),
                                     dtype=np.float32),
                block.fc2.bias.data))
        fused_out = model.output_layer.fused_weight()
        out_bias = model.output_layer.bias.data
        self.heads: list[np.ndarray] = []
        self.head_bias: list[np.ndarray] = []
        for col in range(model.num_cols):
            sl = model.logit_slices[col]
            self.heads.append(np.ascontiguousarray(fused_out[sl].T,
                                                   dtype=np.float32))
            self.head_bias.append(np.ascontiguousarray(out_bias[sl],
                                                       dtype=np.float32))
        self.w_out = np.ascontiguousarray(fused_out.T, dtype=np.float32)
        self.b_out = out_bias

        # Constant all-wildcard state: the value slots of every encoder are
        # zeroed under a wildcard, so this row does not depend on embedding
        # parameters — but the hidden state and logits do.
        zero = np.zeros((1, model.num_cols), dtype=np.int64)
        wild = np.ones((1, model.num_cols), dtype=bool)
        self.wildcard_row = model.encode_tuples(zero, wildcard=wild)
        self.wildcard_hidden = self.hidden(self.wildcard_row)
        self._wildcard_logits: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Forward passes (equivalent to the model's *_np reference methods)
    # ------------------------------------------------------------------
    def hidden(self, x: np.ndarray) -> np.ndarray:
        """Trunk forward: encoded input ``[n, input_width]`` -> pre-ReLU
        final hidden state (matches ``ResMADE.hidden_np``)."""
        h = x @ self.w_in
        h += self.b_in
        for w1, b1, w2, b2 in self.block_weights:
            a = np.maximum(h, 0.0)
            a = a @ w1
            a += b1
            np.maximum(a, 0.0, out=a)
            a = a @ w2
            a += b2
            h += a
        return h

    def column_logits(self, h: np.ndarray, col: int,
                      relu_buf: np.ndarray | None = None) -> np.ndarray:
        """Hidden state -> logits of one column via its pre-sliced head."""
        if relu_buf is not None and relu_buf.shape == h.shape:
            relu = np.maximum(h, 0.0, out=relu_buf)
        else:
            relu = np.maximum(h, 0.0)
        logits = relu @ self.heads[col]
        logits += self.head_bias[col]
        return logits

    def all_logits(self, x: np.ndarray) -> np.ndarray:
        """Full forward (matches ``ResMADE.forward_np``)."""
        h = np.maximum(self.hidden(x), 0.0)
        out = h @ self.w_out
        out += self.b_out
        return out

    def wildcard_logits(self, col: int) -> np.ndarray:
        """Logits ``[1, domain]`` of ``col`` for the all-wildcard input."""
        cached = self._wildcard_logits.get(col)
        if cached is None:
            cached = self.column_logits(self.wildcard_hidden, col)
            self._wildcard_logits[col] = cached
        return cached
