"""Compiled inference view of a :class:`~repro.nn.made.ResMADE` model.

:class:`CompiledModel` materialises everything the hot sampling loop needs
as flat, pre-transposed, contiguous float32 numpy arrays:

* the fused ``weight * mask`` matrix of every masked layer, transposed to
  ``[in, out]`` so each forward matmul is a plain row-major GEMM;
* per-column *output heads*: the slice of the fused output projection that
  produces one column's logits, pre-transposed to ``[hidden, domain]``,
  plus the matching bias slice — the legacy path pays a full
  ``weight * mask`` product over *all* logits just to read one column;
* the constant fully-wildcarded input row, its hidden state, and each
  column's logits under full wildcarding.  Every progressive-sampling
  batch starts from this state, so step 0 costs one cached row instead of
  a batch-sized forward pass.

The fused/pre-transposed matrices come from each layer's
``MaskedLinear.fused_weight_t()`` cache — the same arrays the training
engine's hand-written kernels (:mod:`repro.train`) consume, so training
steps and inference snapshots never duplicate the ``weight * mask``
product for one parameter version.

Invalidation contract
---------------------
Compiled artifacts derive from parameter *values*, so the cache is keyed on
the tuple of parameter version counters (see ``Tensor.version``).  Optimizer
steps (:class:`~repro.nn.optim.SGD` / :class:`~repro.nn.optim.Adam`) and
``Module.load_state_dict`` bump versions; any code mutating ``Tensor.data``
in place must call ``bump_version()``.  ``ensure_current()`` recompiles
lazily on the next use after a bump — training and estimation can therefore
interleave freely (Section 4.5 ingestion) without stale reads.
"""

from __future__ import annotations

import numpy as np

from ..nn.made import ResMADE

# ----------------------------------------------------------------------
# Flat snapshot buffer layout
# ----------------------------------------------------------------------
# A weight snapshot (``Module.state_dict`` — the exact arrays the fused
# ``weight * mask`` compilation derives from) can be laid out in one flat
# byte buffer: every array at a fixed, 64-byte-aligned offset, in sorted
# key order so the layout is a pure function of the model architecture.
# The scale-out serving tier (:mod:`repro.serve.snapshot`) publishes one
# such buffer per namespace into ``multiprocessing.shared_memory``;
# worker processes map it and rebuild their :class:`CompiledModel` from
# the decoded state (``load_state_dict`` bumps every parameter version,
# so ``ensure_current`` recompiles — the same invalidation contract that
# governs in-process training).  Because the layout depends only on the
# key/dtype/shape set, one segment is sized once and republished in
# place for every subsequent version of the same model.

STATE_ALIGN = 64    # per-array alignment inside the flat buffer


def _align(offset: int) -> int:
    return -(-offset // STATE_ALIGN) * STATE_ALIGN


def state_layout(state: dict[str, np.ndarray]) -> tuple[list[dict], int]:
    """Deterministic flat layout for a state dict.

    Returns ``(entries, total_bytes)`` where each entry is
    ``{"name", "dtype", "shape", "offset", "nbytes"}`` — JSON-safe, so a
    decoder needs only the entry table and the raw bytes.
    """
    entries: list[dict] = []
    offset = 0
    for name in sorted(state):
        # Not ascontiguousarray: that would promote 0-d arrays to (1,).
        arr = np.asarray(state[name])
        if not arr.flags["C_CONTIGUOUS"]:
            arr = np.ascontiguousarray(arr)
        offset = _align(offset)
        entries.append({"name": name, "dtype": arr.dtype.str,
                        "shape": list(arr.shape), "offset": offset,
                        "nbytes": int(arr.nbytes)})
        offset += arr.nbytes
    return entries, _align(offset)


def pack_state(state: dict[str, np.ndarray], buf,
               entries: list[dict]) -> None:
    """Copy every array's bytes into ``buf`` at its layout offset."""
    view = np.frombuffer(buf, dtype=np.uint8)
    for entry in entries:
        arr = np.asarray(state[entry["name"]])
        if not arr.flags["C_CONTIGUOUS"]:
            arr = np.ascontiguousarray(arr)
        if arr.dtype.str != entry["dtype"] \
                or list(arr.shape) != list(entry["shape"]):
            raise ValueError(
                f"array {entry['name']!r} does not match the buffer "
                f"layout ({arr.dtype.str}{arr.shape} != "
                f"{entry['dtype']}{tuple(entry['shape'])})")
        lo = entry["offset"]
        view[lo:lo + entry["nbytes"]] = arr.reshape(-1).view(np.uint8)


def unpack_state(buf, entries: list[dict],
                 copy: bool = True) -> dict[str, np.ndarray]:
    """Rebuild the state dict from a flat buffer.

    ``copy=False`` returns zero-copy views into ``buf`` — valid only
    while the buffer is mapped and not being republished; consumers that
    hold the arrays past that window (``load_state_dict`` copies anyway)
    should pass ``copy=True``.
    """
    out: dict[str, np.ndarray] = {}
    for entry in entries:
        dtype = np.dtype(entry["dtype"])
        count = int(np.prod(entry["shape"], dtype=np.int64))
        if count == 0:
            out[entry["name"]] = np.empty(entry["shape"], dtype=dtype)
            continue
        flat = np.frombuffer(buf, dtype=dtype, count=count,
                             offset=entry["offset"])
        arr = flat.reshape(entry["shape"])
        out[entry["name"]] = arr.copy() if copy else arr
    return out


class CompiledModel:
    """Read-optimised snapshot of a ResMADE for gradient-free inference."""

    def __init__(self, model: ResMADE):
        self.model = model
        self._version: tuple[int, ...] | None = None
        self.ensure_current()

    # ------------------------------------------------------------------
    # Compilation / invalidation
    # ------------------------------------------------------------------
    def _current_version(self) -> tuple[int, ...]:
        return tuple(p.version for p in self.model.parameters())

    def ensure_current(self) -> bool:
        """Recompile if any parameter changed; returns True when rebuilt."""
        version = self._current_version()
        if version == self._version:
            return False
        self._compile()
        self._version = version
        return True

    def _compile(self) -> None:
        model = self.model
        self.w_in = np.ascontiguousarray(
            model.input_layer.fused_weight_t(), dtype=np.float32)
        self.b_in = model.input_layer.bias.data
        self.block_weights: list[tuple[np.ndarray, np.ndarray,
                                       np.ndarray, np.ndarray]] = []
        for block in model.blocks:
            self.block_weights.append((
                np.ascontiguousarray(block.fc1.fused_weight_t(),
                                     dtype=np.float32),
                block.fc1.bias.data,
                np.ascontiguousarray(block.fc2.fused_weight_t(),
                                     dtype=np.float32),
                block.fc2.bias.data))
        fused_out = model.output_layer.fused_weight()
        out_bias = model.output_layer.bias.data
        self.heads: list[np.ndarray] = []
        self.head_bias: list[np.ndarray] = []
        for col in range(model.num_cols):
            sl = model.logit_slices[col]
            self.heads.append(np.ascontiguousarray(fused_out[sl].T,
                                                   dtype=np.float32))
            self.head_bias.append(np.ascontiguousarray(out_bias[sl],
                                                       dtype=np.float32))
        self.w_out = np.ascontiguousarray(fused_out.T, dtype=np.float32)
        self.b_out = out_bias

        # Constant all-wildcard state: the value slots of every encoder are
        # zeroed under a wildcard, so this row does not depend on embedding
        # parameters — but the hidden state and logits do.
        zero = np.zeros((1, model.num_cols), dtype=np.int64)
        wild = np.ones((1, model.num_cols), dtype=bool)
        self.wildcard_row = model.encode_tuples(zero, wildcard=wild)
        self.wildcard_hidden = self.hidden(self.wildcard_row)
        self._wildcard_logits: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Forward passes (equivalent to the model's *_np reference methods)
    # ------------------------------------------------------------------
    def hidden(self, x: np.ndarray) -> np.ndarray:
        """Trunk forward: encoded input ``[n, input_width]`` -> pre-ReLU
        final hidden state (matches ``ResMADE.hidden_np``)."""
        h = x @ self.w_in
        h += self.b_in
        for w1, b1, w2, b2 in self.block_weights:
            a = np.maximum(h, 0.0)
            a = a @ w1
            a += b1
            np.maximum(a, 0.0, out=a)
            a = a @ w2
            a += b2
            h += a
        return h

    def column_logits(self, h: np.ndarray, col: int,
                      relu_buf: np.ndarray | None = None) -> np.ndarray:
        """Hidden state -> logits of one column via its pre-sliced head."""
        if relu_buf is not None and relu_buf.shape == h.shape:
            relu = np.maximum(h, 0.0, out=relu_buf)
        else:
            relu = np.maximum(h, 0.0)
        logits = relu @ self.heads[col]
        logits += self.head_bias[col]
        return logits

    def all_logits(self, x: np.ndarray) -> np.ndarray:
        """Full forward (matches ``ResMADE.forward_np``)."""
        h = np.maximum(self.hidden(x), 0.0)
        out = h @ self.w_out
        out += self.b_out
        return out

    def wildcard_logits(self, col: int) -> np.ndarray:
        """Logits ``[1, domain]`` of ``col`` for the all-wildcard input."""
        cached = self._wildcard_logits.get(col)
        if cached is None:
            cached = self.column_logits(self.wildcard_hidden, col)
            self._wildcard_logits[col] = cached
        return cached
