"""Vectorised compilation of query constraint lists.

``ColumnFactorization.expand_masks`` describes one query as a per-model-
column list of ``None`` / ``("fixed", mask)`` / ``("scaled", mask, gain)`` /
``("lo", grid)`` entries.  The legacy samplers re-interpreted those tuples
inside a per-query Python loop *at every autoregressive step*;
:func:`compile_constraints` lifts all of it into packed numpy structures
once per batch:

* ``base_weight`` — ``[n_queries, domain]`` float32 rows holding
  ``mask * gain`` (ones when unconstrained; the union over high digits for
  ``"lo"`` entries, matching the legacy fallback);
* ``base_valid`` / ``gain_base`` — the legacy-dtype validity (bool) and
  gain (float64) planes, kept separate for the differentiable samplers
  which mask logits and fold gains into log-space independently;
* stacked ``"lo"`` grids plus a per-query index so the per-sample low-digit
  lookup is one fancy-indexing expression instead of a loop.

(The batch scheduler groups queries by their queried-column signature
*before* compiling, so each compiled batch is signature-homogeneous.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class ColumnConstraints:
    """Packed constraints of one model column across a query batch."""

    base_weight: np.ndarray            # [n_queries, domain] float32
    base_valid: np.ndarray             # [n_queries, domain] bool
    gain_base: np.ndarray | None       # [n_queries, domain] float64
    lo_lookup: np.ndarray | None       # [n_queries] int32 index, -1 = no lo
    lo_grids: np.ndarray | None        # [n_lo, hi_size, domain] float32
    lo_grids_bool: np.ndarray | None   # [n_lo, hi_size, domain] bool


class CompiledConstraints:
    """A batch of queries compiled to flat per-column numpy structures."""

    def __init__(self, constraint_lists: list[list],
                 domain_sizes: list[int]):
        self.n_queries = len(constraint_lists)
        self.num_cols = len(domain_sizes)
        self.domain_sizes = list(domain_sizes)
        self.cols: list[ColumnConstraints | None] = []
        for col, domain in enumerate(domain_sizes):
            self.cols.append(self._compile_column(constraint_lists, col,
                                                  int(domain)))
        self.queried = np.array([entry is not None for entry in self.cols])

    def _compile_column(self, constraint_lists: list[list], col: int,
                        domain: int) -> ColumnConstraints | None:
        nq = self.n_queries
        if all(cl[col] is None for cl in constraint_lists):
            return None
        weight = np.ones((nq, domain), dtype=np.float32)
        valid = np.ones((nq, domain), dtype=bool)
        gain: np.ndarray | None = None
        lo_lookup: np.ndarray | None = None
        lo_grids: list[np.ndarray] = []
        for qi, cl in enumerate(constraint_lists):
            cons = cl[col]
            if cons is None:
                continue
            kind = cons[0]
            if kind == "fixed":
                mask = np.asarray(cons[1], dtype=bool)
                valid[qi] = mask
                weight[qi] = mask
            elif kind == "scaled":
                mask = np.asarray(cons[1], dtype=bool)
                valid[qi] = mask
                if gain is None:
                    gain = np.ones((nq, domain), dtype=np.float64)
                gain[qi] = cons[2]
                weight[qi] = mask * np.asarray(cons[2], dtype=np.float32)
            elif kind == "lo":
                grid = np.asarray(cons[1], dtype=bool)
                union = grid.any(axis=0)
                valid[qi] = union
                weight[qi] = union
                if lo_lookup is None:
                    lo_lookup = np.full(nq, -1, dtype=np.int32)
                lo_lookup[qi] = len(lo_grids)
                lo_grids.append(grid)
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown constraint kind {kind!r}")
        grids_bool = np.stack(lo_grids) if lo_grids else None
        return ColumnConstraints(
            base_weight=weight, base_valid=valid, gain_base=gain,
            lo_lookup=lo_lookup, lo_grids=grids_bool.astype(np.float32)
            if grids_bool is not None else None,
            lo_grids_bool=grids_bool)

    # ------------------------------------------------------------------
    # Engine path: one weight row per *prefix state*
    # ------------------------------------------------------------------
    def weight_states(self, col: int, state_qi: np.ndarray,
                      hi_codes: np.ndarray | None,
                      out: np.ndarray | None = None) -> np.ndarray:
        """Combined validity-times-gain rows for prefix states.

        ``state_qi`` maps each state to its query; ``hi_codes`` holds the
        state's sampled high digit for ``"lo"`` resolution (``None`` keeps
        the union-over-high-digits fallback, as the legacy path does when
        the high digit was never sampled).  Returns a fresh/writable
        ``[n_states, domain]`` float32 array.
        """
        entry = self.cols[col]
        if out is not None:
            np.take(entry.base_weight, state_qi, axis=0, out=out)
            w = out
        else:
            w = entry.base_weight.take(state_qi, axis=0)
        if entry.lo_lookup is not None and hi_codes is not None:
            li = entry.lo_lookup[state_qi]
            has_lo = li >= 0
            if has_lo.any():
                w[has_lo] = entry.lo_grids[li[has_lo], hi_codes[has_lo]]
        return w

    def valid_states(self, col: int, state_qi: np.ndarray,
                     hi_codes: np.ndarray | None) -> np.ndarray:
        """Boolean validity rows for prefix states (fallback sampling)."""
        return self.weight_states(col, state_qi, hi_codes) > 0

    # ------------------------------------------------------------------
    # Legacy-layout path: one row per (query, sample) pair
    # ------------------------------------------------------------------
    def valid_gain_rows(self, col: int, s: int,
                        sampled: dict[int, np.ndarray]
                        ) -> tuple[np.ndarray, np.ndarray | None]:
        """Per-sample validity/gain matrices in the legacy row layout.

        Equivalent to the samplers' old ``_valid_matrix`` Python loop:
        rows are query-major blocks of ``s`` samples, validity is bool,
        gains float64 (or ``None`` when no query is fanout-scaled).
        ``sampled[col - 1]`` resolves ``"lo"`` entries per sample.
        """
        entry = self.cols[col]
        nq, domain = self.n_queries, self.domain_sizes[col]
        if entry is None:
            return np.ones((nq * s, domain), dtype=bool), None
        valid = np.repeat(entry.base_valid, s, axis=0)
        if entry.lo_lookup is not None:
            hi = sampled.get(col - 1)
            if hi is not None:
                row_lookup = np.repeat(entry.lo_lookup, s)
                has_lo = row_lookup >= 0
                valid[has_lo] = entry.lo_grids_bool[row_lookup[has_lo],
                                                    hi[has_lo]]
        gain = (np.repeat(entry.gain_base, s, axis=0)
                if entry.gain_base is not None else None)
        return valid, gain


def compile_constraints(constraint_lists: list[list],
                        domain_sizes: list[int]) -> CompiledConstraints:
    """Compile a batch of ``expand_masks`` constraint lists."""
    return CompiledConstraints(constraint_lists, domain_sizes)
