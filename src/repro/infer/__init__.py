"""High-throughput inference engine for progressive-sampling estimation.

Layers (see the README's "Inference engine" section):

* :class:`CompiledModel` — fused/pre-transposed weight snapshot of a
  ResMADE, invalidated via parameter version counters;
* :class:`CompiledConstraints` / :func:`compile_constraints` — packed
  numpy form of ``expand_masks`` constraint lists;
* :class:`InferenceEngine` — the batched sampling loop with prefix-state
  deduplication and pooled buffers;
* :class:`BatchScheduler` — groups ``estimate_many`` workloads by
  queried-column signature.
"""

from .compiled import CompiledModel
from .constraints import ColumnConstraints, CompiledConstraints, \
    compile_constraints
from .engine import InferenceEngine
from .scheduler import BatchScheduler

__all__ = ["CompiledModel", "ColumnConstraints", "CompiledConstraints",
           "compile_constraints", "InferenceEngine", "BatchScheduler"]
