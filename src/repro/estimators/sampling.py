"""Uniform-sampling estimator (paper baseline 3).

Materialises a ``p``-fraction uniform sample of the table and answers
queries by scanning it.  The sample size is chosen to match a memory budget
(the paper sizes it to the autoregressive model's footprint).
"""

from __future__ import annotations

import numpy as np

from ..data.table import Table
from ..workload.predicate import Query
from .base import CardinalityEstimator


class SamplingEstimator(CardinalityEstimator):
    name = "Sampling"

    def __init__(self, table: Table, fraction: float | None = None,
                 budget_bytes: int | None = None, seed: int = 0):
        super().__init__(table)
        if fraction is None and budget_bytes is None:
            raise ValueError("give either fraction or budget_bytes")
        if fraction is None:
            bytes_per_row = 4 * table.num_cols
            rows = max(1, budget_bytes // bytes_per_row)
            fraction = min(1.0, rows / table.num_rows)
        self.fraction = float(fraction)
        rng = np.random.default_rng(seed)
        n = max(1, int(round(self.fraction * table.num_rows)))
        idx = rng.choice(table.num_rows, size=min(n, table.num_rows),
                         replace=False)
        self.sample = table.codes[idx]

    def estimate(self, query: Query) -> float:
        keep = np.ones(len(self.sample), dtype=bool)
        for idx, mask in query.masks(self.table).items():
            keep &= mask[self.sample[:, idx]]
            if not keep.any():
                break
        sel = keep.sum() / len(self.sample)
        return self._clamp_card(sel)

    def size_bytes(self) -> int:
        return int(self.sample.size * 4)
