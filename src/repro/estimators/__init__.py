"""The nine baseline estimators of the paper's evaluation plus extras.

Query-driven: :class:`LinearRegressionEstimator` (LR), :class:`MSCNBase`.
Data-driven: :class:`SamplingEstimator`, :class:`BayesNetEstimator`,
:class:`KDEEstimator`, :class:`SPNEstimator` (DeepDB), :class:`Naru`.
Hybrid: :class:`MSCNSampling`, :class:`FeedbackKDEEstimator`.
Extra (sub-baseline the paper mentions): :class:`IndependenceHistogramEstimator`.
"""

from .base import CardinalityEstimator, TrainableEstimator, describe_size
from .sampling import SamplingEstimator
from .histogram import Histogram1D, IndependenceHistogramEstimator
from .lr import LinearRegressionEstimator, range_features
from .bayesnet import BayesNetEstimator, chow_liu_tree
from .kde import FeedbackKDEEstimator, KDEEstimator, mask_to_intervals
from .spn import SPNEstimator
from .mscn import MSCNBase, MSCNSampling
from .quicksel import QuickSelEstimator
from .mhist import MHISTEstimator
from .stholes import STHolesEstimator
from .capabilities import CAPABILITY_MATRIX, IMPLEMENTATIONS, capability_rows


def __getattr__(name: str):
    # Imported lazily: Naru subclasses repro.core.uae.UAE, and repro.core
    # itself depends on this package's ``base`` module.
    if name == "Naru":
        from .naru import Naru
        return Naru
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "CardinalityEstimator", "TrainableEstimator", "describe_size",
    "SamplingEstimator", "Histogram1D", "IndependenceHistogramEstimator",
    "LinearRegressionEstimator", "range_features",
    "BayesNetEstimator", "chow_liu_tree",
    "KDEEstimator", "FeedbackKDEEstimator", "mask_to_intervals",
    "SPNEstimator", "MSCNBase", "MSCNSampling", "Naru",
    "QuickSelEstimator", "MHISTEstimator", "STHolesEstimator",
    "CAPABILITY_MATRIX", "IMPLEMENTATIONS", "capability_rows",
]
