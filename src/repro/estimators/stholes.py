"""STHoles-style workload-aware histogram (Bruno, Chaudhuri & Gravano 2001).

The other "worse than the 9" reference point of the paper's evaluation.
STHoles maintains a *hierarchy* of buckets: query feedback drills holes —
child buckets with exactly-known counts — into the enclosing bucket, so
regions the workload touches get precise counts while untouched space
keeps the coarse uniform estimate.

This implementation keeps the structure (nested boxes, drilling on
feedback, budget-bounded) and simplifies the maintenance policies: holes
are only drilled for query boxes fully contained in a bucket that do not
partially overlap existing children, and buckets beyond the budget stop
drilling (the original merges buckets by penalty instead).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.table import Table
from ..workload.predicate import LabeledWorkload, Query
from .base import TrainableEstimator
from .quicksel import query_box


def _box_volume(box: np.ndarray) -> float:
    widths = box[:, 1] - box[:, 0] + 1.0
    if (widths <= 0).any():
        return 0.0
    return float(np.prod(widths))


def _contains(outer: np.ndarray, inner: np.ndarray) -> bool:
    return bool(np.all(outer[:, 0] <= inner[:, 0])
                and np.all(inner[:, 1] <= outer[:, 1]))


def _disjoint(a: np.ndarray, b: np.ndarray) -> bool:
    return bool(np.any(a[:, 1] < b[:, 0]) or np.any(b[:, 1] < a[:, 0]))


def _intersection(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    out = np.empty_like(a)
    out[:, 0] = np.maximum(a[:, 0], b[:, 0])
    out[:, 1] = np.minimum(a[:, 1], b[:, 1])
    return out


@dataclass(eq=False)  # identity equality: children.remove must not compare
class _HoleBucket:    # numpy boxes elementwise
    box: np.ndarray
    count: float                      # rows in box EXCLUDING children
    children: list["_HoleBucket"] = field(default_factory=list)

    def own_volume(self) -> float:
        vol = _box_volume(self.box)
        for child in self.children:
            vol -= _box_volume(child.box)
        return max(vol, 1.0)

    def estimate(self, qbox: np.ndarray) -> float:
        """Rows of this subtree falling in ``qbox``."""
        inter = _intersection(self.box, qbox)
        if _box_volume(inter) <= 0:
            return 0.0
        total = 0.0
        covered = 0.0
        for child in self.children:
            child_inter = _intersection(child.box, qbox)
            vol = _box_volume(child_inter)
            if vol > 0:
                total += child.estimate(qbox)
                covered += vol
        own_overlap = max(_box_volume(inter) - covered, 0.0)
        total += self.count * own_overlap / self.own_volume()
        return total

    def num_buckets(self) -> int:
        return 1 + sum(c.num_buckets() for c in self.children)


class STHolesEstimator(TrainableEstimator):
    name = "STHoles"

    def __init__(self, table: Table, max_buckets: int = 256):
        super().__init__(table)
        self.max_buckets = max_buckets
        full = np.array([(0, col.size - 1) for col in table.columns],
                        dtype=np.float64)
        self.root = _HoleBucket(full, float(table.num_rows))

    # ------------------------------------------------------------------
    def fit(self, workload: LabeledWorkload | None = None
            ) -> "STHolesEstimator":
        if workload is None:
            raise ValueError("STHoles builds itself from query feedback")
        for query, card in zip(workload.queries, workload.cardinalities):
            self.refine(query, float(card))
        return self

    def refine(self, query: Query, true_card: float) -> None:
        """Drill a hole for one feedback record (query, cardinality)."""
        if self.root.num_buckets() >= self.max_buckets:
            return
        qbox = query_box(self.table, query)
        if _box_volume(qbox) <= 0:
            return
        self._drill(self.root, qbox, true_card)

    def _drill(self, node: _HoleBucket, qbox: np.ndarray,
               true_card: float) -> None:
        # Recurse into a child that fully contains the query box.
        for child in node.children:
            if _contains(child.box, qbox):
                self._drill(child, qbox, true_card)
                return
        # Drill here only if the box is clean w.r.t. existing children:
        # fully inside this node, disjoint from all children (the original
        # shrinks partial intersections; we skip them).
        if not _contains(node.box, qbox):
            return
        contained_children = []
        for child in node.children:
            if _contains(qbox, child.box):
                contained_children.append(child)
            elif not _disjoint(qbox, child.box):
                return  # partial overlap: skip (simplification)
        child_count = sum(c.count + sum(g.count for g in c.children)
                          for c in contained_children)
        hole_count = max(true_card - child_count, 0.0)
        hole = _HoleBucket(qbox.copy(), hole_count,
                           children=contained_children)
        for child in contained_children:
            node.children.remove(child)
        # The parent loses the rows now attributed to the hole.
        node.count = max(node.count - hole_count, 0.0)
        node.children.append(hole)

    # ------------------------------------------------------------------
    def estimate(self, query: Query) -> float:
        qbox = query_box(self.table, query)
        if _box_volume(qbox) <= 0:
            return 0.0
        est = self.root.estimate(qbox)
        return float(min(max(est, 0.0), self.table.num_rows))

    def size_bytes(self) -> int:
        per_bucket = self.table.num_cols * 2 * 8 + 8
        return self.root.num_buckets() * per_bucket
