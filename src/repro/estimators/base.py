"""Common estimator interface.

Every estimator — data-driven, query-driven or hybrid — implements
:class:`CardinalityEstimator`: ``estimate(query)`` returns a cardinality in
rows, ``size_bytes()`` reports the model budget (the "Size" column of the
paper's tables), and ``name`` labels result rows.
"""

from __future__ import annotations

import time

import numpy as np

from ..data.table import Table
from ..workload.predicate import LabeledWorkload, Query


class CardinalityEstimator:
    """Abstract base for all estimators."""

    name: str = "base"

    def __init__(self, table: Table):
        self.table = table

    def estimate(self, query: Query) -> float:
        raise NotImplementedError

    def estimate_many(self, queries: list[Query]) -> np.ndarray:
        return np.array([self.estimate(q) for q in queries], dtype=np.float64)

    def size_bytes(self) -> int:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Helpers shared by subclasses
    # ------------------------------------------------------------------
    def _clamp_card(self, selectivity: float) -> float:
        """Selectivity -> cardinality, clamped to [0, |T|]."""
        sel = min(max(float(selectivity), 0.0), 1.0)
        return sel * self.table.num_rows

    def latency_seconds(self, queries: list[Query], repeats: int = 1) -> float:
        """Mean wall-clock seconds per estimate (Figure 5(2))."""
        start = time.perf_counter()
        for _ in range(repeats):
            for q in queries:
                self.estimate(q)
        elapsed = time.perf_counter() - start
        return elapsed / (repeats * max(len(queries), 1))


class TrainableEstimator(CardinalityEstimator):
    """Estimators with an explicit fit step."""

    def fit(self, workload: LabeledWorkload | None = None) -> "TrainableEstimator":
        raise NotImplementedError


def describe_size(num_bytes: int) -> str:
    """Human-readable size, matching the paper's table formatting."""
    if num_bytes < 1024:
        return f"{num_bytes}B"
    if num_bytes < 1024 ** 2:
        return f"{num_bytes / 1024:.0f}KB"
    return f"{num_bytes / 1024 ** 2:.1f}MB"
