"""Sum-product network estimator in the style of DeepDB (baseline 6).

Structure learning follows the RSPN recipe:

* **Product nodes** split the column set into groups that a pairwise
  dependence test (rank-grid nonlinear correlation, the same statistic used
  in :mod:`repro.data.stats`) declares independent — this is exactly the
  independence assumption the paper criticises DeepDB for on strongly
  correlated data.
* **Sum nodes** split rows into two clusters (seeded 2-means over
  standardised codes) when columns remain dependent.
* **Leaves** are per-column histograms over the full code domain.

Besides plain probabilities, :meth:`SPNEstimator.expectation` evaluates
``E[ 1(region) * prod_j g_j(X_j) ]`` for per-column value functions — the
hook that fanout-scaled join estimation needs (DeepDB Section 4).
"""

from __future__ import annotations

import numpy as np

from ..data.stats import _rank_grid_entropy
from ..data.table import Table
from ..workload.predicate import Query
from .base import CardinalityEstimator


class _Node:
    def prob(self, masks: dict[int, np.ndarray],
             value_fns: dict[int, np.ndarray]) -> float:
        raise NotImplementedError

    def size_floats(self) -> int:
        raise NotImplementedError


class _Leaf(_Node):
    def __init__(self, col: int, codes: np.ndarray, domain: int,
                 smoothing: float = 0.1):
        counts = np.bincount(codes, minlength=domain).astype(np.float64)
        counts += smoothing
        self.col = col
        self.probs = counts / counts.sum()

    def prob(self, masks, value_fns):
        p = self.probs
        g = value_fns.get(self.col)
        if g is not None:
            p = p * g
        mask = masks.get(self.col)
        if mask is None:
            return float(p.sum()) if g is not None else 1.0
        return float(p[mask].sum())

    def size_floats(self):
        return self.probs.size


class _Product(_Node):
    def __init__(self, children: list[_Node]):
        self.children = children

    def prob(self, masks, value_fns):
        out = 1.0
        for child in self.children:
            out *= child.prob(masks, value_fns)
        return out

    def size_floats(self):
        return sum(c.size_floats() for c in self.children)


class _Sum(_Node):
    def __init__(self, weights: list[float], children: list[_Node]):
        self.weights = weights
        self.children = children

    def prob(self, masks, value_fns):
        return sum(w * c.prob(masks, value_fns)
                   for w, c in zip(self.weights, self.children))

    def size_floats(self):
        return len(self.weights) + sum(c.size_floats() for c in self.children)


def _two_means(rows: np.ndarray, rng: np.random.Generator,
               iters: int = 8) -> np.ndarray:
    """Cluster standardised code rows into 2 groups; returns labels."""
    x = rows.astype(np.float64)
    std = x.std(axis=0)
    std[std == 0] = 1.0
    x = (x - x.mean(axis=0)) / std
    centers = x[rng.choice(len(x), size=2, replace=False)]
    labels = np.zeros(len(x), dtype=np.int64)
    for _ in range(iters):
        dist = ((x[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        new_labels = dist.argmin(axis=1)
        if (new_labels == labels).all():
            break
        labels = new_labels
        for k in range(2):
            members = x[labels == k]
            if len(members):
                centers[k] = members.mean(axis=0)
    return labels


def _independent_groups(rows: np.ndarray, cols: list[int],
                        threshold: float, max_rows: int,
                        rng: np.random.Generator) -> list[list[int]]:
    """Connected components of the pairwise-dependence graph."""
    if len(rows) > max_rows:
        rows = rows[rng.choice(len(rows), size=max_rows, replace=False)]
    n = len(cols)
    adjacency = [[] for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            dep = _rank_grid_entropy(rows[:, i], rows[:, j], bins=6)
            if dep > threshold:
                adjacency[i].append(j)
                adjacency[j].append(i)
    seen: set[int] = set()
    groups: list[list[int]] = []
    for start in range(n):
        if start in seen:
            continue
        stack, component = [start], []
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            component.append(node)
            stack.extend(adjacency[node])
        groups.append(sorted(cols[i] for i in component))
    return groups


class SPNEstimator(CardinalityEstimator):
    name = "DeepDB"

    def __init__(self, table: Table, min_rows: int = 128,
                 dependence_threshold: float = 0.05,
                 max_rows_for_tests: int = 4000, max_depth: int = 12,
                 seed: int = 0, sample_rows: int | None = 1_000_000):
        super().__init__(table)
        self.rng = np.random.default_rng(seed)
        self.min_rows = min_rows
        self.threshold = dependence_threshold
        self.max_rows_for_tests = max_rows_for_tests
        self.max_depth = max_depth
        codes = table.codes
        if sample_rows is not None and len(codes) > sample_rows:
            codes = codes[self.rng.choice(len(codes), sample_rows,
                                          replace=False)]
        self.root = self._learn(codes, list(range(table.num_cols)), depth=0,
                                try_rows=True)

    # ------------------------------------------------------------------
    def _learn(self, rows: np.ndarray, cols: list[int], depth: int,
               try_rows: bool) -> _Node:
        domains = self.table.domain_sizes
        if len(cols) == 1:
            local = rows[:, 0] if rows.shape[1] == 1 else rows
            return _Leaf(cols[0], local.reshape(-1), domains[cols[0]])
        if len(rows) < self.min_rows or depth >= self.max_depth:
            # Force-factorise: treat remaining columns as independent.
            return _Product([
                _Leaf(col, rows[:, k], domains[col])
                for k, col in enumerate(cols)])
        groups = _independent_groups(rows, cols, self.threshold,
                                     self.max_rows_for_tests, self.rng)
        if len(groups) > 1:
            children = []
            for group in groups:
                local_idx = [cols.index(c) for c in group]
                children.append(self._learn(rows[:, local_idx], group,
                                            depth + 1, try_rows=True))
            return _Product(children)
        if not try_rows:
            return _Product([
                _Leaf(col, rows[:, k], domains[col])
                for k, col in enumerate(cols)])
        labels = _two_means(rows, self.rng)
        sizes = np.bincount(labels, minlength=2)
        if sizes.min() == 0:
            return self._learn(rows, cols, depth + 1, try_rows=False)
        children = [self._learn(rows[labels == k], cols, depth + 1,
                                try_rows=(len(rows) > 4 * self.min_rows))
                    for k in range(2)]
        weights = (sizes / sizes.sum()).tolist()
        return _Sum(weights, children)

    # ------------------------------------------------------------------
    def selectivity(self, query: Query) -> float:
        masks = query.masks(self.table)
        return float(np.clip(self.root.prob(masks, {}), 0.0, 1.0))

    def estimate(self, query: Query) -> float:
        return self._clamp_card(self.selectivity(query))

    def expectation(self, masks: dict[int, np.ndarray],
                    value_fns: dict[int, np.ndarray] | None = None) -> float:
        """``E[1(masks) * prod g_j(X_j)]`` under the SPN distribution."""
        return float(self.root.prob(masks, value_fns or {}))

    def size_bytes(self) -> int:
        return int(self.root.size_floats() * 8)
