"""Chow-Liu tree Bayesian network (paper baseline 4, "BayesNet").

Chow & Liu (1968): the maximum-likelihood tree-structured distribution is
the maximum spanning tree of pairwise mutual information.  Inference for a
conjunction of per-column masks is exact message passing over the tree —
each node marginalises its subtree's constrained mass conditioned on the
parent's value.

This baseline makes *conditional* independence assumptions (the tree) but
no uniformity assumption, matching its strong-median / weak-tail profile in
the paper's tables.
"""

from __future__ import annotations

import numpy as np

from ..data.table import Table
from ..workload.predicate import Query
from .base import CardinalityEstimator


def _mutual_information(codes_a: np.ndarray, codes_b: np.ndarray,
                        size_a: int, size_b: int) -> float:
    flat = codes_a.astype(np.int64) * size_b + codes_b
    joint = np.bincount(flat, minlength=size_a * size_b).astype(np.float64)
    joint = joint.reshape(size_a, size_b)
    joint /= joint.sum()
    pa = joint.sum(axis=1, keepdims=True)
    pb = joint.sum(axis=0, keepdims=True)
    nz = joint > 0
    return float(np.sum(joint[nz] * np.log(joint[nz] / (pa @ pb)[nz])))


def chow_liu_tree(codes: np.ndarray, domain_sizes: list[int],
                  max_pair_domain: int = 4_000_000) -> list[tuple[int, int]]:
    """Edges (parent, child) of the maximum-MI spanning tree, rooted at 0."""
    n = codes.shape[1]
    if n == 1:
        return []
    weights = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            if domain_sizes[i] * domain_sizes[j] > max_pair_domain:
                mi = 0.0  # too wide to tabulate; treat as independent
            else:
                mi = _mutual_information(codes[:, i], codes[:, j],
                                         domain_sizes[i], domain_sizes[j])
            weights[i, j] = weights[j, i] = mi
    # Prim's algorithm for the maximum spanning tree.
    in_tree = {0}
    edges: list[tuple[int, int]] = []
    while len(in_tree) < n:
        best, best_w = None, -np.inf
        for u in in_tree:
            for v in range(n):
                if v not in in_tree and weights[u, v] > best_w:
                    best, best_w = (u, v), weights[u, v]
        edges.append(best)
        in_tree.add(best[1])
    return edges


class BayesNetEstimator(CardinalityEstimator):
    name = "BayesNet"

    def __init__(self, table: Table, smoothing: float = 1.0,
                 sample_rows: int | None = 50_000, seed: int = 0):
        super().__init__(table)
        codes = table.codes
        if sample_rows is not None and table.num_rows > sample_rows:
            rng = np.random.default_rng(seed)
            codes = codes[rng.choice(table.num_rows, sample_rows,
                                     replace=False)]
        sizes = table.domain_sizes
        self.edges = chow_liu_tree(codes, sizes)
        self.children: dict[int, list[int]] = {i: [] for i in range(len(sizes))}
        self.parent: dict[int, int | None] = {0: None}
        for u, v in self.edges:
            self.children[u].append(v)
            self.parent[v] = u
        # CPTs: root marginal + P(child | parent) per edge.
        self.root = 0
        root_counts = np.bincount(codes[:, self.root],
                                  minlength=sizes[self.root]).astype(np.float64)
        root_counts += smoothing
        self.root_probs = root_counts / root_counts.sum()
        self.cpts: dict[int, np.ndarray] = {}
        for u, v in self.edges:
            counts = np.zeros((sizes[u], sizes[v]), dtype=np.float64)
            np.add.at(counts, (codes[:, u], codes[:, v]), 1.0)
            counts += smoothing
            self.cpts[v] = counts / counts.sum(axis=1, keepdims=True)

    # ------------------------------------------------------------------
    def estimate(self, query: Query) -> float:
        masks = query.masks(self.table)
        sizes = self.table.domain_sizes

        def message(node: int) -> np.ndarray:
            """m[v_node] = P(constrained subtree mass | node = v_node),
            already including node's own constraint."""
            own = masks.get(node)
            vec = np.ones(sizes[node]) if own is None else own.astype(np.float64)
            for child in self.children[node]:
                child_msg = message(child)            # [|child|]
                vec = vec * (self.cpts[child] @ child_msg)
            return vec

        total = float(self.root_probs @ message(self.root))
        return self._clamp_card(total)

    def size_bytes(self) -> int:
        total = self.root_probs.size
        total += sum(c.size for c in self.cpts.values())
        return int(total * 8)
