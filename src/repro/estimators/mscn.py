"""MSCN (Kipf et al. 2019) — multi-set convolutional network baselines.

* :class:`MSCNBase` — the paper's single-table adaptation: the join module
  is dropped; each predicate is featurised as (column one-hot, operator
  one-hot, normalised literal), passed through a shared per-predicate MLP,
  average-pooled over the predicate set and fed to an output MLP that
  predicts normalised log-cardinality.
* :class:`MSCNSampling` — "MSCN+sampling" (baseline 8): the estimator
  additionally materialises a uniform row sample and feeds the query's
  sample *bitmap* through its own branch — the hybrid-by-features approach
  the paper contrasts with UAE's unified training.
"""

from __future__ import annotations

import numpy as np

from ..data.table import Table
from ..nn import Adam, Linear, Module, Tensor
from ..nn import functional as F
from ..workload.predicate import SUPPORTED_OPS, LabeledWorkload, Query
from .base import TrainableEstimator

_OP_INDEX = {op: i for i, op in enumerate(SUPPORTED_OPS)}


class _SetMLP(Module):
    """Shared predicate MLP -> mean pool -> output MLP."""

    def __init__(self, pred_dim: int, hidden: int, extra_dim: int,
                 rng: np.random.Generator):
        self.pred_fc1 = Linear(pred_dim, hidden, rng)
        self.pred_fc2 = Linear(hidden, hidden, rng)
        self.extra_fc = Linear(extra_dim, hidden, rng) if extra_dim else None
        merged = hidden + (hidden if extra_dim else 0)
        self.out_fc1 = Linear(merged, hidden, rng)
        self.out_fc2 = Linear(hidden, 1, rng)

    def forward(self, pred_feats: Tensor, pred_mask: np.ndarray,
                extra: Tensor | None = None) -> Tensor:
        b, p, d = pred_feats.shape
        flat = pred_feats.reshape(b * p, d)
        h = self.pred_fc2(self.pred_fc1(flat).relu()).relu()
        h = h * Tensor(pred_mask.reshape(b * p, 1).astype(np.float32))
        pooled = h.reshape(b, p, -1).sum(axis=1)
        counts = np.maximum(pred_mask.sum(axis=1, keepdims=True), 1.0)
        pooled = pooled * Tensor((1.0 / counts).astype(np.float32))
        if self.extra_fc is not None:
            if extra is None:
                raise ValueError("extra branch configured but no input given")
            pooled = _concat(pooled, self.extra_fc(extra).relu())
        out = self.out_fc2(self.out_fc1(pooled).relu())
        return out.reshape(b).sigmoid()


def _concat(a: Tensor, b: Tensor) -> Tensor:
    from ..nn.tensor import concatenate
    return concatenate([a, b], axis=-1)


class MSCNBase(TrainableEstimator):
    name = "MSCN-base"

    def __init__(self, table: Table, hidden: int = 64, lr: float = 1e-3,
                 epochs: int = 60, batch_size: int = 64, seed: int = 0):
        super().__init__(table)
        self.hidden = hidden
        self.lr = lr
        self.epochs = epochs
        self.batch_size = batch_size
        self.rng = np.random.default_rng(seed)
        self.pred_dim = table.num_cols + len(SUPPORTED_OPS) + 1
        self.net = _SetMLP(self.pred_dim, hidden, self._extra_dim(), self.rng)
        self._log_norm = np.log(table.num_rows + 1.0)

    def _extra_dim(self) -> int:
        return 0

    def _extra_features(self, queries: list[Query]) -> np.ndarray | None:
        return None

    # ------------------------------------------------------------------
    # Featurisation
    # ------------------------------------------------------------------
    def _featurize(self, queries: list[Query]) -> tuple[np.ndarray, np.ndarray]:
        max_preds = max((len(q) for q in queries), default=1) or 1
        feats = np.zeros((len(queries), max_preds, self.pred_dim),
                         dtype=np.float32)
        mask = np.zeros((len(queries), max_preds), dtype=np.float32)
        for qi, query in enumerate(queries):
            for pi, pred in enumerate(query.predicates):
                col_idx = self.table.column_index(pred.column)
                col = self.table.columns[col_idx]
                feats[qi, pi, col_idx] = 1.0
                feats[qi, pi, self.table.num_cols + _OP_INDEX[pred.op]] = 1.0
                value = pred.value[0] if pred.op == "IN" else pred.value
                lo, hi = col.code_range("=", value)
                code = lo if lo < hi else min(lo, col.size - 1)
                feats[qi, pi, -1] = code / max(col.size - 1, 1)
                mask[qi, pi] = 1.0
        return feats, mask

    # ------------------------------------------------------------------
    def fit(self, workload: LabeledWorkload | None = None) -> "MSCNBase":
        if workload is None or len(workload) == 0:
            raise ValueError("MSCN needs a labeled workload")
        feats, mask = self._featurize(workload.queries)
        extra = self._extra_features(workload.queries)
        target = np.log(workload.cardinalities + 1.0) / self._log_norm
        target = target.astype(np.float32)
        optimizer = Adam(self.net.parameters(), lr=self.lr)
        n = len(feats)
        for _ in range(self.epochs):
            order = self.rng.permutation(n)
            for start in range(0, n, self.batch_size):
                idx = order[start:start + self.batch_size]
                extra_t = None if extra is None else Tensor(extra[idx])
                pred = self.net(Tensor(feats[idx]), mask[idx], extra_t)
                loss = F.mse_loss(pred, target[idx])
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
        return self

    def estimate(self, query: Query) -> float:
        return float(self.estimate_many([query])[0])

    def estimate_many(self, queries: list[Query]) -> np.ndarray:
        feats, mask = self._featurize(queries)
        extra = self._extra_features(queries)
        extra_t = None if extra is None else Tensor(extra)
        pred = self.net(Tensor(feats), mask, extra_t).data.astype(np.float64)
        cards = np.exp(pred * self._log_norm) - 1.0
        return np.clip(cards, 0.0, self.table.num_rows)

    def size_bytes(self) -> int:
        return self.net.size_bytes()


class MSCNSampling(MSCNBase):
    name = "MSCN+sampling"

    def __init__(self, table: Table, hidden: int = 64, lr: float = 1e-3,
                 epochs: int = 60, batch_size: int = 64, seed: int = 0,
                 bitmap_size: int = 64, sample_budget_bytes: int | None = None):
        self.bitmap_size = bitmap_size
        super().__init__(table, hidden=hidden, lr=lr, epochs=epochs,
                         batch_size=batch_size, seed=seed)
        rng = np.random.default_rng(seed + 1)
        if sample_budget_bytes is not None:
            rows = max(bitmap_size,
                       sample_budget_bytes // (4 * table.num_cols))
        else:
            rows = 1024
        rows = min(rows, table.num_rows)
        idx = rng.choice(table.num_rows, size=rows, replace=False)
        self.sample = table.codes[idx]

    def _extra_dim(self) -> int:
        return self.bitmap_size + 2

    def _extra_features(self, queries: list[Query]) -> np.ndarray:
        """Bitmap over the first ``bitmap_size`` sample rows + the sample
        selectivity estimate (raw and log)."""
        out = np.zeros((len(queries), self.bitmap_size + 2), dtype=np.float32)
        for qi, query in enumerate(queries):
            keep = np.ones(len(self.sample), dtype=bool)
            for idx, mask in query.masks(self.table).items():
                keep &= mask[self.sample[:, idx]]
            frac = keep.mean()
            out[qi, :self.bitmap_size] = keep[:self.bitmap_size]
            out[qi, -2] = frac
            out[qi, -1] = np.log(frac + 1e-6)
        return out

    def size_bytes(self) -> int:
        return self.net.size_bytes() + int(self.sample.size * 4)
