"""Naru (Yang et al. 2020) — deep unsupervised cardinality estimation.

The paper proves UAE-D is *equivalent* to Naru (Section 4.7): the same
ResMADE, the same data-only cross-entropy objective, the same progressive
sampling at inference.  We therefore implement Naru as UAE restricted to
``mode="data"`` — literally sharing every line of model code, exactly the
relationship the paper describes.
"""

from __future__ import annotations

from ..core.uae import UAE, UAEConfig
from ..data.table import Table
from ..workload.predicate import LabeledWorkload


class Naru(UAE):
    name = "Naru"

    def __init__(self, table: Table, config: UAEConfig | None = None,
                 **overrides):
        super().__init__(table, config, **overrides)

    def fit(self, epochs: int = 10,
            workload: LabeledWorkload | None = None,
            mode: str = "data", **kwargs) -> "Naru":
        if mode != "data":
            raise ValueError("Naru is data-only; use UAE for hybrid training")
        super().fit(epochs=epochs, workload=None, mode="data", **kwargs)
        return self
