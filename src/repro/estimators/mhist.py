"""MHIST-style multi-dimensional histogram (Poosala & Haas et al. 1996).

The paper compared against MHIST and found it worse than the nine reported
baselines; it is included here to complete that comparison.  The
implementation is the classic recursive space partitioning: starting from
one bucket covering the whole code space, repeatedly split the "worst"
bucket (largest row count x widest normalized spread) at the median of its
most-spread dimension, until the bucket budget is exhausted.  Buckets
assume uniformity inside — precisely the assumption the paper's Section 1
criticises for correlated data.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from ..data.table import Table
from ..workload.predicate import Query
from .base import CardinalityEstimator


@dataclass(order=True)
class _Bucket:
    priority: float
    bounds: np.ndarray = field(compare=False)   # [cols, 2] inclusive codes
    rows: np.ndarray = field(compare=False)     # code rows inside


def _spread_dim(rows: np.ndarray, bounds: np.ndarray) -> tuple[int, float]:
    """Dimension with the widest occupied relative spread."""
    best_dim, best_spread = 0, -1.0
    for j in range(rows.shape[1]):
        width = bounds[j, 1] - bounds[j, 0]
        if width <= 0:
            continue
        distinct = len(np.unique(rows[:, j]))
        spread = distinct / (width + 1.0)
        if distinct > 1 and spread > best_spread:
            best_spread = spread
            best_dim = j
    return best_dim, best_spread


class MHISTEstimator(CardinalityEstimator):
    name = "MHIST"

    def __init__(self, table: Table, max_buckets: int = 256,
                 sample_rows: int | None = 50_000, seed: int = 0):
        super().__init__(table)
        codes = table.codes
        if sample_rows is not None and len(codes) > sample_rows:
            rng = np.random.default_rng(seed)
            codes = codes[rng.choice(len(codes), sample_rows, replace=False)]
        self._scale = table.num_rows / len(codes)
        full = np.array([(0, col.size - 1) for col in table.columns],
                        dtype=np.int64)
        heap: list[_Bucket] = []
        heapq.heappush(heap, _Bucket(-float(len(codes)), full, codes))
        finals: list[_Bucket] = []
        while heap and len(heap) + len(finals) < max_buckets:
            bucket = heapq.heappop(heap)
            split = self._split(bucket)
            if split is None:
                finals.append(bucket)
                continue
            for child in split:
                heapq.heappush(heap, child)
        finals.extend(heap)
        self.bounds = np.stack([b.bounds for b in finals])
        self.counts = np.array([len(b.rows) for b in finals],
                               dtype=np.float64) * self._scale

    def _split(self, bucket: _Bucket) -> list[_Bucket] | None:
        rows = bucket.rows
        if len(rows) < 2:
            return None
        dim, spread = _spread_dim(rows, bucket.bounds)
        if spread < 0:
            return None
        median = int(np.median(rows[:, dim]))
        lo_bound, hi_bound = bucket.bounds[dim]
        if median >= hi_bound:
            median = hi_bound - 1
        if median < lo_bound:
            return None
        left_rows = rows[rows[:, dim] <= median]
        right_rows = rows[rows[:, dim] > median]
        if len(left_rows) == 0 or len(right_rows) == 0:
            return None
        left_bounds = bucket.bounds.copy()
        left_bounds[dim, 1] = median
        right_bounds = bucket.bounds.copy()
        right_bounds[dim, 0] = median + 1
        return [_Bucket(-float(len(left_rows)), left_bounds, left_rows),
                _Bucket(-float(len(right_rows)), right_bounds, right_rows)]

    # ------------------------------------------------------------------
    def estimate(self, query: Query) -> float:
        masks = query.masks(self.table)
        total = 0.0
        for bounds, count in zip(self.bounds, self.counts):
            frac = 1.0
            for idx, mask in masks.items():
                lo, hi = bounds[idx]
                span = mask[lo:hi + 1]
                if span.size == 0:
                    frac = 0.0
                    break
                frac *= span.mean()  # in-bucket uniformity
                if frac == 0.0:
                    break
            total += count * frac
        return float(min(max(total, 0.0), self.table.num_rows))

    def size_bytes(self) -> int:
        return int(self.bounds.size * 8 + self.counts.size * 8)
