"""The paper's Table 1: a capability matrix over estimator families.

Each entry mirrors a row of "A summary of existing cardinality estimation
methods": whether the method avoids independence/uniformity assumptions,
which information sources it learns from, whether it ingests incremental
data / query workloads, and whether estimation is efficient.  Rendered by
``python -m repro.bench`` consumers and checked by tests so the matrix
stays in sync with what the code actually supports.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Capability:
    category: str
    method: str
    without_assumptions: bool
    learns_from_data: bool
    learns_from_queries: bool
    incremental_data: bool
    incremental_queries: bool
    efficient_estimation: bool


CAPABILITY_MATRIX: list[Capability] = [
    Capability("data-driven", "Sampling", True, True, False, True, False, False),
    Capability("data-driven", "Histograms", False, True, False, False, False, True),
    Capability("data-driven", "KDE", True, True, False, True, False, True),
    Capability("data-driven", "PGM/BayesNet", False, True, False, False, False, True),
    Capability("data-driven", "RSPN/DeepDB", False, True, False, True, False, True),
    Capability("data-driven", "DL models (Naru/MADE)", True, True, False, True, False, True),
    Capability("query-driven", "Query histograms (STHoles)", False, False, True, False, True, True),
    Capability("query-driven", "Mixture models (QuickSel)", False, False, True, False, True, True),
    Capability("query-driven", "DL models (MSCN/LR)", True, False, True, False, True, True),
    Capability("hybrid", "Sampling-enhanced ML (MSCN+sampling)", True, True, True, False, False, True),
    Capability("hybrid", "Histogram-enhanced ML", False, True, True, False, True, True),
    Capability("hybrid", "Query-enhanced KDE (Feedback-KDE)", True, True, True, True, True, True),
    Capability("hybrid", "UAE (ours)", True, True, True, True, True, True),
]


#: Maps matrix rows to the classes implementing them in this repository.
IMPLEMENTATIONS: dict[str, str] = {
    "Sampling": "repro.estimators.SamplingEstimator",
    "Histograms": "repro.estimators.IndependenceHistogramEstimator",
    "KDE": "repro.estimators.KDEEstimator",
    "PGM/BayesNet": "repro.estimators.BayesNetEstimator",
    "RSPN/DeepDB": "repro.estimators.SPNEstimator",
    "DL models (Naru/MADE)": "repro.estimators.Naru",
    "Query histograms (STHoles)": "repro.estimators.stholes.STHolesEstimator",
    "Mixture models (QuickSel)": "repro.estimators.quicksel.QuickSelEstimator",
    "DL models (MSCN/LR)": "repro.estimators.MSCNBase",
    "Sampling-enhanced ML (MSCN+sampling)": "repro.estimators.MSCNSampling",
    "Query-enhanced KDE (Feedback-KDE)": "repro.estimators.FeedbackKDEEstimator",
    "UAE (ours)": "repro.core.UAE",
}


def capability_rows() -> list[dict]:
    """Rows for :func:`repro.bench.reporting.format_table` (paper Table 1)."""
    def tick(flag: bool) -> str:
        return "yes" if flag else ""

    rows = []
    for cap in CAPABILITY_MATRIX:
        rows.append({
            "category": cap.category,
            "method": cap.method,
            "no_assumptions": tick(cap.without_assumptions),
            "from_data": tick(cap.learns_from_data),
            "from_queries": tick(cap.learns_from_queries),
            "incr_data": tick(cap.incremental_data),
            "incr_queries": tick(cap.incremental_queries),
            "efficient": tick(cap.efficient_estimation),
        })
    return rows
