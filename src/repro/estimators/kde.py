"""Kernel density estimation baselines (paper baselines 5 and 9).

* :class:`KDEEstimator` — Gaussian product kernels over a uniform sample of
  rows, bandwidths from Scott's rule (Gunopulos et al. 2005; Scott 2015).
* :class:`FeedbackKDEEstimator` — Heimel et al. 2015: numerically optimises
  the per-dimension bandwidths against a query-feedback workload (squared
  selectivity error, batch variant), using the analytic gradient of the
  Gaussian-CDF range probabilities w.r.t. the bandwidths.

Range probabilities use the continuity-corrected interval
``[lo - 0.5, hi + 0.5]`` per run of valid codes, so arbitrary masks
(including ``!=`` and ``IN``) are supported.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize
from scipy.special import ndtr  # fast Gaussian CDF

from ..data.table import Table
from ..workload.predicate import LabeledWorkload, Query
from .base import CardinalityEstimator, TrainableEstimator


def mask_to_intervals(mask: np.ndarray) -> list[tuple[int, int]]:
    """Runs of consecutive True codes as inclusive (lo, hi) intervals."""
    nz = np.flatnonzero(mask)
    if nz.size == 0:
        return []
    breaks = np.flatnonzero(np.diff(nz) > 1)
    starts = np.concatenate([[nz[0]], nz[breaks + 1]])
    ends = np.concatenate([nz[breaks], [nz[-1]]])
    return list(zip(starts.tolist(), ends.tolist()))


class KDEEstimator(CardinalityEstimator):
    name = "KDE"

    def __init__(self, table: Table, sample_size: int | None = None,
                 budget_bytes: int | None = None, seed: int = 0):
        super().__init__(table)
        if sample_size is None:
            if budget_bytes is None:
                raise ValueError("give sample_size or budget_bytes")
            sample_size = max(16, budget_bytes // (8 * table.num_cols))
        sample_size = min(sample_size, table.num_rows)
        rng = np.random.default_rng(seed)
        idx = rng.choice(table.num_rows, size=sample_size, replace=False)
        self.points = table.codes[idx].astype(np.float64)
        # Scott's rule: h_j = sigma_j * m^(-1/(d+4)).
        m, d = self.points.shape
        sigma = self.points.std(axis=0)
        sigma[sigma == 0] = 0.5
        self.bandwidths = sigma * m ** (-1.0 / (d + 4))
        self.bandwidths = np.maximum(self.bandwidths, 0.25)

    # ------------------------------------------------------------------
    def _dim_prob(self, dim: int, mask: np.ndarray,
                  bandwidths: np.ndarray) -> np.ndarray:
        """Per-sample probability mass of ``mask`` along ``dim``."""
        x = self.points[:, dim]
        h = bandwidths[dim]
        prob = np.zeros(len(x))
        for lo, hi in mask_to_intervals(mask):
            prob += ndtr((hi + 0.5 - x) / h) - ndtr((lo - 0.5 - x) / h)
        return np.clip(prob, 0.0, 1.0)

    def _selectivity(self, query: Query, bandwidths: np.ndarray) -> float:
        weight = np.ones(len(self.points))
        for idx, mask in query.masks(self.table).items():
            weight *= self._dim_prob(idx, mask, bandwidths)
        return float(np.clip(weight.mean(), 0.0, 1.0))

    def estimate(self, query: Query) -> float:
        return self._clamp_card(self._selectivity(query, self.bandwidths))

    def size_bytes(self) -> int:
        return int(self.points.size * 8 + self.bandwidths.size * 8)


class FeedbackKDEEstimator(KDEEstimator, TrainableEstimator):
    name = "Feedback-KDE"

    def __init__(self, table: Table, sample_size: int | None = None,
                 budget_bytes: int | None = None, seed: int = 0,
                 max_iters: int = 30, max_queries: int = 150):
        KDEEstimator.__init__(self, table, sample_size=sample_size,
                              budget_bytes=budget_bytes, seed=seed)
        self.max_iters = max_iters
        self.max_queries = max_queries

    def fit(self, workload: LabeledWorkload | None = None
            ) -> "FeedbackKDEEstimator":
        """Batch bandwidth optimisation on the SquaredQ objective."""
        if workload is None or len(workload) == 0:
            raise ValueError("Feedback-KDE needs a labeled workload")
        n = min(len(workload), self.max_queries)
        queries = workload.queries[:n]
        truths = workload.selectivities(self.table.num_rows)[:n]
        query_masks = [q.masks(self.table) for q in queries]

        result = minimize(
            lambda log_h: self.objective(log_h, query_masks, truths),
            np.log(self.bandwidths), jac=True, method="L-BFGS-B",
            options={"maxiter": self.max_iters})
        self.bandwidths = np.maximum(np.exp(result.x), 1e-3)
        return self

    def objective(self, log_h: np.ndarray, query_masks: list[dict],
                  truths: np.ndarray) -> tuple[float, np.ndarray]:
        """Relative squared selectivity error ("SquaredQ"-style) and its
        analytic log-bandwidth gradient.

        Relative (not absolute) error keeps gradients alive for the tiny
        selectivities that dominate real feedback; d/dh Phi((b - x)/h) =
        -phi((b - x)/h) * (b - x)/h^2, folded through the product over
        queried dimensions and the sample mean.
        """
        h = np.exp(log_h)
        d = self.points.shape[1]
        loss = 0.0
        grad_h = np.zeros(d)
        rel_floor = 1.0 / max(self.table.num_rows, 1)
        for masks, truth in zip(query_masks, truths):
            dims = sorted(masks)
            if not dims:
                continue
            probs = []   # per dim: [m] masses
            dprob = []   # per dim: d mass / d h
            for dim in dims:
                x = self.points[:, dim]
                p = np.zeros(len(x))
                dp = np.zeros(len(x))
                for lo, hi in mask_to_intervals(masks[dim]):
                    zu = (hi + 0.5 - x) / h[dim]
                    zl = (lo - 0.5 - x) / h[dim]
                    p += ndtr(zu) - ndtr(zl)
                    phi_u = np.exp(-0.5 * zu * zu) / np.sqrt(2 * np.pi)
                    phi_l = np.exp(-0.5 * zl * zl) / np.sqrt(2 * np.pi)
                    dp += (-zu * phi_u + zl * phi_l) / h[dim]
                probs.append(np.clip(p, 1e-12, 1.0))
                dprob.append(dp)
            stack_p = np.vstack(probs)
            full = stack_p.prod(axis=0)
            sel = full.mean()
            denom = max(truth, rel_floor)
            err = (sel - truth) / denom
            loss += err * err
            for k, dim in enumerate(dims):
                dsel = (full / stack_p[k] * dprob[k]).mean()
                grad_h[dim] += 2.0 * err * dsel / denom
        return loss, grad_h * h  # chain rule into log space
