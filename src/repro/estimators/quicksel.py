"""QuickSel (Park et al. 2020) — query-driven uniform mixture model.

The paper's related work (Table 1, "Mixture models") covers QuickSel as the
modern query-driven alternative to histograms: the data distribution is
modelled as a mixture of uniform distributions over subpopulations induced
by the training queries, and the mixture weights are fit by least squares
against the observed selectivities — no multi-dimensional histogram
maintenance.

This implementation keeps QuickSel's core: one uniform kernel per training
query region (plus one over the full space), weights solved by non-negative
least squares with a sum-to-one penalty.  Box overlap uses each predicate's
bounding code interval.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import nnls

from ..data.table import Table
from ..workload.predicate import LabeledWorkload, Query
from .base import TrainableEstimator


def query_box(table: Table, query: Query) -> np.ndarray:
    """Per-column inclusive code interval ``[lo, hi]`` (bounding the mask).

    Shape ``[num_cols, 2]``; unconstrained columns span the full domain.
    """
    box = np.zeros((table.num_cols, 2), dtype=np.float64)
    for j, col in enumerate(table.columns):
        box[j] = (0, col.size - 1)
    for idx, mask in query.masks(table).items():
        nz = np.flatnonzero(mask)
        if nz.size == 0:
            box[idx] = (1, 0)  # empty interval
        else:
            box[idx] = (nz[0], nz[-1])
    return box


def overlap_fraction(box: np.ndarray, other: np.ndarray) -> float:
    """|box ∩ other| / |box| under per-column interval volumes."""
    frac = 1.0
    for (lo, hi), (olo, ohi) in zip(box, other):
        width = hi - lo + 1.0
        if width <= 0:
            return 0.0
        inter = min(hi, ohi) - max(lo, olo) + 1.0
        if inter <= 0:
            return 0.0
        frac *= inter / width
    return frac


class QuickSelEstimator(TrainableEstimator):
    name = "QuickSel"

    def __init__(self, table: Table, max_kernels: int = 256,
                 sum_to_one_weight: float = 10.0):
        super().__init__(table)
        self.max_kernels = max_kernels
        self.sum_to_one_weight = sum_to_one_weight
        self.boxes: np.ndarray | None = None   # [k, cols, 2]
        self.weights: np.ndarray | None = None

    def fit(self, workload: LabeledWorkload | None = None
            ) -> "QuickSelEstimator":
        if workload is None or len(workload) == 0:
            raise ValueError("QuickSel needs a labeled workload")
        n = min(len(workload), self.max_kernels)
        kernel_queries = workload.queries[:n]
        boxes = [self._full_box()]
        boxes += [query_box(self.table, q) for q in kernel_queries]
        self.boxes = np.stack(boxes)

        # Least squares: for every training query i,
        #   sum_j w_j * |q_i ∩ box_j| / |box_j| = sel_i.
        sels = workload.selectivities(self.table.num_rows)
        rows = []
        for query in workload.queries:
            qbox = query_box(self.table, query)
            rows.append([overlap_fraction(b, qbox) for b in self.boxes])
        a = np.asarray(rows)
        b = np.asarray(sels)
        # Soft constraint sum(w) = 1.
        a = np.vstack([a, np.full((1, len(self.boxes)),
                                  self.sum_to_one_weight)])
        b = np.append(b, self.sum_to_one_weight)
        self.weights, _ = nnls(a, b)
        return self

    def _full_box(self) -> np.ndarray:
        return np.array([(0, col.size - 1) for col in self.table.columns],
                        dtype=np.float64)

    def estimate(self, query: Query) -> float:
        if self.weights is None:
            raise RuntimeError("call fit() first")
        qbox = query_box(self.table, query)
        sel = sum(w * overlap_fraction(b, qbox)
                  for w, b in zip(self.weights, self.boxes))
        return self._clamp_card(sel)

    def size_bytes(self) -> int:
        if self.boxes is None:
            return 0
        return int(self.boxes.size * 8 + self.weights.size * 8)
