"""Single-column histograms with the attribute-value-independence (AVI)
assumption — the Postgres-style baseline the paper mentions alongside
STHoles/MHIST as "worse than the 9 reported methods".

Also used as the statistics provider for the Postgres-like planner heuristic
in :mod:`repro.optimizer.postgres`.
"""

from __future__ import annotations

import numpy as np

from ..data.table import Table
from ..workload.predicate import Query
from .base import CardinalityEstimator


class Histogram1D:
    """Equi-depth histogram over one column's codes.

    Buckets are inclusive code intervals ``[lo, hi]`` with a row count;
    within a bucket the classic uniformity assumption applies.
    """

    def __init__(self, codes: np.ndarray, domain_size: int, bins: int = 64):
        self.domain_size = domain_size
        codes = np.asarray(codes)
        freq = np.bincount(codes, minlength=domain_size).astype(np.float64)
        total = float(len(codes))
        target = max(total / max(bins, 1), 1.0)
        # Assign each code to the bucket its cumulative prefix falls in; a
        # heavy value occupies one bucket by itself (no span merging, so
        # equi-depth boundaries isolate heavy hitters).
        prefix = np.cumsum(freq) - freq
        bucket_id = np.minimum((prefix / target).astype(np.int64), bins - 1)
        lows, highs, counts = [], [], []
        start = 0
        for code in range(1, domain_size + 1):
            if code == domain_size or bucket_id[code] != bucket_id[start]:
                lows.append(start)
                highs.append(code - 1)
                counts.append(freq[start:code].sum())
                start = code
        self.lows = np.array(lows, dtype=np.int64)
        self.highs = np.array(highs, dtype=np.int64)
        self.counts = np.array(counts, dtype=np.float64)
        self.total = total

    def selectivity_mask(self, mask: np.ndarray) -> float:
        """Fraction of rows with codes in ``mask`` under in-bucket
        uniformity (the assumption the paper criticises)."""
        if self.total == 0:
            return 0.0
        sel = 0.0
        for lo, hi, count in zip(self.lows, self.highs, self.counts):
            span = mask[lo:hi + 1]
            if span.size:
                sel += (count / self.total) * span.mean()
        return float(min(max(sel, 0.0), 1.0))

    def selectivity_range(self, lo_code: int, hi_code: int) -> float:
        """Selectivity of ``lo_code <= code <= hi_code`` (planner path)."""
        if self.total == 0 or hi_code < lo_code:
            return 0.0
        sel = 0.0
        for blo, bhi, count in zip(self.lows, self.highs, self.counts):
            overlap_lo = max(int(blo), lo_code)
            overlap_hi = min(int(bhi), hi_code)
            if overlap_hi < overlap_lo:
                continue
            width = bhi - blo + 1
            sel += (count / self.total) * (overlap_hi - overlap_lo + 1) / width
        return float(min(max(sel, 0.0), 1.0))

    def size_bytes(self) -> int:
        return int(self.lows.size * 8 * 3)


class IndependenceHistogramEstimator(CardinalityEstimator):
    """Product of per-column histogram selectivities (AVI assumption)."""

    name = "Postgres1D"

    def __init__(self, table: Table, bins: int = 64):
        super().__init__(table)
        self.histograms = [
            Histogram1D(table.codes[:, j], col.size, bins)
            for j, col in enumerate(table.columns)]

    def estimate(self, query: Query) -> float:
        sel = 1.0
        for idx, mask in query.masks(self.table).items():
            sel *= self.histograms[idx].selectivity_mask(mask)
        return self._clamp_card(sel)

    def size_bytes(self) -> int:
        return sum(h.size_bytes() for h in self.histograms)
