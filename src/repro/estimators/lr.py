"""Query-driven linear regression (paper baseline 2, "LR").

Represents a query as the concatenation of each attribute's normalised
domain range (following Dutt et al. 2019) and fits ridge regression from
query features to log-selectivity.  The non-deep query-driven counterpart
that the paper uses to show the value of DL-based query models.
"""

from __future__ import annotations

import numpy as np

from ..data.table import Table
from ..workload.predicate import LabeledWorkload, Query
from .base import TrainableEstimator


def range_features(table: Table, query: Query) -> np.ndarray:
    """Per column: (lo/|A|, hi/|A|, queried-flag); wildcards span [0, 1]."""
    feats = np.zeros(table.num_cols * 3, dtype=np.float64)
    masks = query.masks(table)
    for j, col in enumerate(table.columns):
        mask = masks.get(j)
        if mask is None or not mask.any():
            lo, hi, flag = 0.0, 1.0, 0.0
        else:
            nz = np.flatnonzero(mask)
            lo = nz[0] / col.size
            hi = (nz[-1] + 1) / col.size
            flag = 1.0
        feats[3 * j:3 * j + 3] = (lo, hi, flag)
    return feats


class LinearRegressionEstimator(TrainableEstimator):
    name = "LR"

    def __init__(self, table: Table, l2: float = 1e-3):
        super().__init__(table)
        self.l2 = l2
        self.weights: np.ndarray | None = None

    def fit(self, workload: LabeledWorkload | None = None
            ) -> "LinearRegressionEstimator":
        if workload is None or len(workload) == 0:
            raise ValueError("LR needs a labeled workload")
        feats = np.stack([range_features(self.table, q)
                          for q in workload.queries])
        feats = np.hstack([feats, np.ones((len(feats), 1))])
        target = np.log(np.maximum(
            workload.selectivities(self.table.num_rows), 1e-9))
        gram = feats.T @ feats + self.l2 * np.eye(feats.shape[1])
        self.weights = np.linalg.solve(gram, feats.T @ target)
        return self

    def estimate(self, query: Query) -> float:
        if self.weights is None:
            raise RuntimeError("call fit() first")
        feats = np.append(range_features(self.table, query), 1.0)
        log_sel = float(feats @ self.weights)
        return self._clamp_card(np.exp(log_sel))

    def size_bytes(self) -> int:
        return 0 if self.weights is None else int(self.weights.size * 8)
