"""Tests for database generation (paper Section 6) and model persistence."""

import os

import numpy as np
import pytest

from repro.core import UAE
from repro.data import Table, make_toy

FAST = dict(hidden=32, num_blocks=1, est_samples=48, dps_samples=4,
            batch_size=256, wildcard_max_frac=0.25, seed=0)


@pytest.fixture(scope="module")
def trained():
    table = make_toy(rows=2500, seed=3, num_cols=3, max_domain=8)
    model = UAE(table, **FAST)
    model.fit(epochs=30, mode="data")
    return table, model


class TestGeneration:
    def test_sampled_codes_in_domain(self, trained):
        table, model = trained
        codes = model.sample_tuples(500)
        assert codes.shape == (500, table.num_cols)
        for j, col in enumerate(table.columns):
            assert codes[:, j].min() >= 0
            assert codes[:, j].max() < col.size

    def test_marginals_match_data(self, trained):
        """Generated tuples should reproduce the learned first-column
        marginal — the property that makes UAE usable for DBMS-testing
        database generation (paper Section 6)."""
        table, model = trained
        codes = model.sample_tuples(6000, seed=1)
        gen = np.bincount(codes[:, 0], minlength=table.domain_sizes[0])
        real = np.bincount(table.codes[:, 0], minlength=table.domain_sizes[0])
        gen = gen / gen.sum()
        real = real / real.sum()
        assert np.abs(gen - real).max() < 0.08

    def test_joint_correlation_preserved(self, trained):
        """Pairwise dependence in the generated data should resemble the
        source (within a loose band — the model is small)."""
        from repro.data.stats import _rank_grid_entropy
        table, model = trained
        codes = model.sample_tuples(5000, seed=2)
        real_dep = _rank_grid_entropy(table.codes[:, 0], table.codes[:, 1])
        gen_dep = _rank_grid_entropy(codes[:, 0], codes[:, 1])
        assert gen_dep > real_dep * 0.2

    def test_sample_table_decodes(self, trained):
        table, model = trained
        generated = model.sample_table(100, seed=3)
        assert generated.num_rows == 100
        assert generated.column_names == table.column_names

    def test_deterministic_with_seed(self, trained):
        _, model = trained
        a = model.sample_tuples(50, seed=9)
        b = model.sample_tuples(50, seed=9)
        np.testing.assert_array_equal(a, b)


class TestPersistence:
    def test_roundtrip(self, trained, tmp_path):
        table, model = trained
        path = str(tmp_path / "model.npz")
        model.save(path)
        restored = UAE.load(path, table)
        x = model.fact.encode_rows(table.codes[:100])
        np.testing.assert_allclose(model.model.nll_np(x),
                                   restored.model.nll_np(x), atol=1e-5)

    def test_estimates_survive_roundtrip(self, trained, tmp_path):
        table, model = trained
        from repro.workload import generate_inworkload
        rng = np.random.default_rng(5)
        wl = generate_inworkload(table, 10, rng)
        path = str(tmp_path / "model.npz")
        model.save(path)
        restored = UAE.load(path, table)
        a = model.estimate_many(wl.queries)
        b = restored.estimate_many(wl.queries)
        np.testing.assert_allclose(a, b, rtol=0.3, atol=20)

    def test_schema_mismatch_rejected(self, trained, tmp_path):
        table, model = trained
        path = str(tmp_path / "model.npz")
        model.save(path)
        other = make_toy(rows=500, seed=11, num_cols=4, max_domain=9)
        with pytest.raises(ValueError):
            UAE.load(path, other)

    def test_config_restored(self, trained, tmp_path):
        table, model = trained
        path = str(tmp_path / "model.npz")
        model.save(path)
        restored = UAE.load(path, table)
        assert restored.config == model.config
