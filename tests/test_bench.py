"""Tests for profiles, reporting, and the experiment registry."""

import json
import os

import numpy as np
import pytest

from repro.bench import (BENCH, EXPERIMENTS, PAPER, PROFILES, SMALL,
                         current_profile, format_table, save_json)
from repro.bench.experiments import SINGLE_TABLE_COLUMNS, single_table_setup


class TestProfiles:
    def test_registry_complete(self):
        assert set(PROFILES) == {"ci", "small", "bench", "paper"}

    def test_scaling_order(self):
        from repro.bench import CI
        assert CI.train_queries < SMALL.train_queries \
            < BENCH.train_queries < PAPER.train_queries
        assert CI.dataset_rows("dmv") < SMALL.dataset_rows("dmv") \
            < PAPER.dataset_rows("dmv")
        assert CI.incremental_train < SMALL.incremental_train

    def test_env_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "small")
        assert current_profile() is SMALL
        monkeypatch.setenv("REPRO_PROFILE", "bogus")
        with pytest.raises(KeyError):
            current_profile()

    def test_default_rows(self):
        assert SMALL.dataset_rows("unknown") == 8000


class TestReporting:
    def test_format_table_alignment(self):
        rows = [{"model": "UAE", "mean": 1.2345678},
                {"model": "Naru", "mean": 100000.0}]
        text = format_table(rows, ["model", "mean"], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "UAE" in text and "1.235" in text
        assert "1.00e+05" in text

    def test_format_handles_missing_cells(self):
        text = format_table([{"a": 1.0}], ["a", "b"])
        assert "a" in text and "b" in text

    def test_save_json_roundtrip(self, tmp_path, monkeypatch):
        import repro.bench.reporting as reporting
        monkeypatch.setattr(reporting, "RESULTS_DIR", str(tmp_path))
        path = save_json("unit", {"values": np.array([1.0, 2.0]),
                                  "n": np.int64(3)})
        with open(path) as fh:
            payload = json.load(fh)
        assert payload["experiment"] == "unit"
        assert payload["data"]["values"] == [1.0, 2.0]
        assert payload["data"]["n"] == 3


class TestExperimentRegistry:
    def test_all_paper_artifacts_present(self):
        required = {"table2", "table3", "table4", "table5", "table6",
                    "fig3", "fig4a", "fig4b", "fig5_curve", "fig5_latency",
                    "fig6", "tau"}
        assert required <= set(EXPERIMENTS)

    def test_ablation_experiments_present(self):
        ablations = {k for k in EXPERIMENTS if k.startswith("ablation_")}
        assert len(ablations) >= 5

    def test_serving_experiment_registered(self):
        assert "serving" in EXPERIMENTS
        assert "latency" in EXPERIMENTS

    def test_single_table_setup_shapes(self):
        setup = single_table_setup("toy", SMALL)
        assert setup["table"].num_rows == SMALL.dataset_rows("toy")
        assert len(setup["train"]) == SMALL.train_queries
        assert len(setup["test_in"]) == SMALL.test_queries

    def test_columns_layout(self):
        assert SINGLE_TABLE_COLUMNS[0] == "model"
        assert "in_max" in SINGLE_TABLE_COLUMNS
        assert "rand_max" in SINGLE_TABLE_COLUMNS


class TestCLI:
    def test_list_command(self, capsys):
        from repro.bench.__main__ import main
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out and "fig6" in out

    def test_unknown_experiment(self, capsys):
        from repro.bench.__main__ import main
        assert main(["not-an-experiment"]) == 2

    def test_selectivity_distribution_runs(self, tmp_path, monkeypatch):
        """fig3 is the cheapest full experiment — run it at small scale."""
        import repro.bench.reporting as reporting
        monkeypatch.setattr(reporting, "RESULTS_DIR", str(tmp_path))
        from repro.bench.experiments import selectivity_distribution
        result = selectivity_distribution(SMALL)
        assert len(result["rows"]) == 6  # 3 datasets x 2 workloads
        for row in result["rows"]:
            assert row["log10_min"] <= row["log10_median"] <= row["log10_max"]
        # Random workloads span at least as wide as in-workload ones (the
        # paper's Figure 3 observation) on at least one dataset.
        spans = {}
        for row in result["rows"]:
            spans[(row["dataset"], row["workload"])] = \
                row["log10_max"] - row["log10_min"]
        wider = [spans[(d, "random")] >= spans[(d, "in-workload")] * 0.5
                 for d in ("dmv", "census", "kddcup")]
        assert any(wider)
