"""Tests for CSV import/export."""

import numpy as np
import pytest

from repro.data import Table, make_toy, read_csv, write_csv


@pytest.fixture
def csv_file(tmp_path):
    path = tmp_path / "data.csv"
    path.write_text(
        "id,age,name,score\n"
        "1,34,alice,1.5\n"
        "2,28,bob,2.25\n"
        "3,51,carol,0.75\n"
        "4,28,dave,1.5\n")
    return str(path)


class TestReadCSV:
    def test_basic_load(self, csv_file):
        table = read_csv(csv_file)
        assert table.name == "data"
        assert table.num_rows == 4
        assert table.column_names == ["id", "age", "name", "score"]

    def test_type_inference(self, csv_file):
        table = read_csv(csv_file)
        assert table.column("age").values.dtype.kind == "i"
        assert table.column("score").values.dtype.kind == "f"
        assert table.column("name").values.dtype.kind in ("U", "S")

    def test_column_subset(self, csv_file):
        table = read_csv(csv_file, columns=["age", "name"])
        assert table.column_names == ["age", "name"]

    def test_missing_column_rejected(self, csv_file):
        with pytest.raises(KeyError):
            read_csv(csv_file, columns=["nope"])

    def test_max_rows(self, csv_file):
        table = read_csv(csv_file, max_rows=2)
        assert table.num_rows == 2

    def test_empty_fields_become_null(self, tmp_path):
        path = tmp_path / "nulls.csv"
        path.write_text("a,b\n1,x\n,y\n3,\n")
        table = read_csv(str(path))
        assert -1 in table.raw_column("a")
        assert "" in table.raw_column("b")

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError):
            read_csv(str(path))

    def test_header_only_rejected(self, tmp_path):
        path = tmp_path / "hdr.csv"
        path.write_text("a,b\n")
        with pytest.raises(ValueError):
            read_csv(str(path))

    def test_custom_name(self, csv_file):
        assert read_csv(csv_file, name="mytable").name == "mytable"


class TestRoundtrip:
    def test_write_then_read(self, tmp_path):
        table = make_toy(rows=200, seed=3, num_cols=3)
        path = str(tmp_path / "rt.csv")
        write_csv(table, path)
        back = read_csv(path, name=table.name)
        assert back.num_rows == table.num_rows
        assert back.column_names == table.column_names
        np.testing.assert_array_equal(back.codes, table.codes)

    def test_roundtrip_with_strings(self, tmp_path):
        table = Table.from_raw("t", {
            "x": np.array([1, 2, 3]),
            "s": np.array(["aa", "bb", "aa"]),
        })
        path = str(tmp_path / "s.csv")
        write_csv(table, path)
        back = read_csv(path)
        np.testing.assert_array_equal(back.raw_column("s"),
                                      table.raw_column("s"))

    def test_loaded_table_feeds_uae(self, tmp_path):
        """The adoption path: CSV -> Table -> UAE end to end."""
        from repro.core import UAE
        table = make_toy(rows=400, seed=9, num_cols=3)
        path = str(tmp_path / "uae.csv")
        write_csv(table, path)
        loaded = read_csv(path)
        model = UAE(loaded, hidden=16, num_blocks=1, est_samples=16,
                    batch_size=128, seed=0)
        model.fit(epochs=1, mode="data")
        from repro.workload import Query
        assert 0 <= model.estimate(Query(())) <= loaded.num_rows
