"""Tests for the optimizer-in-the-loop path: fragment extraction, the
join-truth and heuristic fixes it depends on, the generalized planner,
and the serving-tier sub-plan provider."""

import copy
from itertools import combinations, permutations

import numpy as np
import pytest

from repro.data import Table
from repro.data.schema import ForeignKey, Schema, make_imdb, make_imdb_large
from repro.joins import JoinQuery, UAEJoin, UnjoinableFragmentError
from repro.joins.workload import (generate_job_m_focused,
                                  true_join_cardinality)
from repro.optimizer import (JoinGraph, MagicConstantHeuristic,
                             PostgresHeuristic, ServingCardinalityProvider,
                             TrueCardOracle, UESPessimisticProvider,
                             best_plan, connected, join_cost, plan_cost,
                             plan_for_query, scan_cost)
from repro.optimizer.cost import Plan
from repro.serve import RoutedEstimateService
from repro.workload import (FragmentError, Predicate, extract_fragment,
                            fragment_signature, routing_signature)


# ----------------------------------------------------------------------
# Bespoke schemas for the regression tests
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def dup_key_schema() -> Schema:
    """Center join key with duplicates and a dangling child key: the
    schema where center-absent fragments and join-sized counts differ."""
    title = Table.from_raw("title", {
        "id": np.arange(4),
        "gid": np.array([0, 0, 1, 2]),
    })
    child = Table.from_raw("c", {
        "gid": np.array([0, 0, 2]),
        "v": np.array([1, 2, 3]),
    })
    return Schema("dup", {"title": title, "c": child},
                  [ForeignKey("c", "gid", "title", "gid")])


@pytest.fixture(scope="module")
def two_key_schema() -> Schema:
    """A star whose edges reference *different* center columns —
    ``id`` (unique, NDV 8) and ``grp`` (NDV 4)."""
    title = Table.from_raw("title", {
        "id": np.arange(8),
        "grp": np.array([0, 0, 1, 1, 2, 2, 3, 3]),
    })
    c1 = Table.from_raw("c1", {"movie_id": np.array([0, 1, 2, 3, 4])})
    c2 = Table.from_raw("c2", {"grp": np.array([0, 1, 1, 2])})
    return Schema("twokey", {"title": title, "c1": c1, "c2": c2},
                  [ForeignKey("c1", "movie_id", "title", "id"),
                   ForeignKey("c2", "grp", "title", "grp")])


# ----------------------------------------------------------------------
# extract_fragment / fragment_signature
# ----------------------------------------------------------------------
class TestExtractFragment:
    QUERY = JoinQuery(
        ("title", "movie_companies", "movie_info"),
        (Predicate("title.kind_id", "=", 1),
         Predicate("movie_companies.company_id", "<=", 40),
         Predicate("title.production_year", ">=", 1990)))

    def test_keeps_only_subset_predicates_in_order(self):
        frag = extract_fragment(self.QUERY, ["title"])
        assert frag.tables == ("title",)
        assert [p.column for p in frag.predicates] == [
            "title.kind_id", "title.production_year"]

    def test_full_subset_is_identity(self):
        frag = extract_fragment(self.QUERY, self.QUERY.tables)
        assert frag == self.QUERY

    def test_routing_signature_round_trip(self):
        """A fragment routes by exactly the tables it was cut down to —
        the property that lets fragments share the serving front door."""
        for r in range(1, len(self.QUERY.tables) + 1):
            for combo in combinations(self.QUERY.tables, r):
                frag = extract_fragment(self.QUERY, combo)
                assert routing_signature(frag) == ("join", frozenset(combo))

    def test_restrict_query_is_extract_fragment(self):
        from repro.optimizer import restrict_query
        subset = frozenset(["title", "movie_info"])
        assert restrict_query(self.QUERY, subset) == \
            extract_fragment(self.QUERY, subset)

    def test_empty_subset_raises(self):
        with pytest.raises(FragmentError):
            extract_fragment(self.QUERY, [])

    def test_foreign_table_raises(self):
        with pytest.raises(FragmentError):
            extract_fragment(self.QUERY, ["title", "nope"])

    def test_tableless_query_raises(self):
        from repro.workload import conjunction
        with pytest.raises(FragmentError):
            extract_fragment(conjunction(Predicate("a", "=", 1)), ["a"])

    def test_signature_ignores_predicate_order(self):
        preds = list(self.QUERY.predicates)
        sigs = {fragment_signature(JoinQuery(self.QUERY.tables, tuple(p)))
                for p in permutations(preds)}
        assert len(sigs) == 1

    def test_signature_distinguishes_values(self):
        a = JoinQuery(("title",), (Predicate("title.kind_id", "=", 1),))
        b = JoinQuery(("title",), (Predicate("title.kind_id", "=", 2),))
        assert fragment_signature(a) != fragment_signature(b)


# ----------------------------------------------------------------------
# true_join_cardinality fixes
# ----------------------------------------------------------------------
class TestTrueJoinCardinalityFixes:
    def test_center_absent_singleton_is_filtered_count(self, dup_key_schema):
        """A center-absent singleton fragment is a plain scan.  The old
        code weighted child rows by how many center rows they matched
        (join-sized: 2+2+1 = 5 here), not the filtered count of 3."""
        q = JoinQuery(("c",), ())
        assert true_join_cardinality(dup_key_schema, q) == 3

    def test_center_absent_singleton_respects_filters(self, dup_key_schema):
        q = JoinQuery(("c",), (Predicate("c.v", "<=", 2),))
        assert true_join_cardinality(dup_key_schema, q) == 2

    def test_center_absent_pair_joins_on_shared_key(self, tiny_schema):
        """mc ⋈ mi on the (elided) title key: per-key products
        2*1 (movie 0) + 1*2 (movie 5) = 4."""
        q = JoinQuery(("movie_companies", "movie_info"), ())
        assert true_join_cardinality(tiny_schema, q) == 4

    def test_center_absent_pair_respects_filters(self, tiny_schema):
        q = JoinQuery(("movie_companies", "movie_info"),
                      (Predicate("movie_info.info_type", "=", 1),))
        # mi rows with info_type=1: movies 0, 4, 5 -> counts {0:1, 5:1};
        # mc counts {0:2, 1:1, 3:3, 5:1} -> 2*1 + 1*1 = 3.
        assert true_join_cardinality(tiny_schema, q) == 3

    def test_center_absent_mixed_keys_raises(self, two_key_schema):
        with pytest.raises(UnjoinableFragmentError):
            true_join_cardinality(two_key_schema, JoinQuery(("c1", "c2"), ()))

    def test_stray_table_raises(self, tiny_schema):
        with pytest.raises(UnjoinableFragmentError):
            true_join_cardinality(tiny_schema,
                                  JoinQuery(("title", "nope"), ()))

    def test_empty_center_returns_zero(self, tiny_schema):
        """Zero-row fact table: the old code crashed on
        ``fact_keys.max()`` before it could answer 0."""
        title = tiny_schema.tables["title"]
        empty = Table("title", title.columns, title.codes[:0])
        schema = Schema("empty", {**tiny_schema.tables, "title": empty},
                        list(tiny_schema.foreign_keys))
        q = JoinQuery(("title", "movie_companies"), ())
        assert true_join_cardinality(schema, q) == 0

    def test_center_present_unchanged(self, tiny_schema):
        """The fix must not disturb center-present ground truth."""
        q = JoinQuery(("title", "movie_companies"),
                      (Predicate("title.kind_id", "=", 0),))
        # titles 0, 2, 4 pass; mc counts {0:2, 1:1, 3:3, 5:1} -> 2.
        assert true_join_cardinality(tiny_schema, q) == 2


# ----------------------------------------------------------------------
# PostgresHeuristic per-edge NDV fix
# ----------------------------------------------------------------------
class TestPostgresPerEdgeNDV:
    def test_per_edge_parent_ndv(self, two_key_schema):
        pg = PostgresHeuristic(two_key_schema)
        assert pg.center_key_ndv == {"c1": 8, "c2": 4}

    def test_edge_uses_its_own_parent_column(self, two_key_schema):
        """The c2 edge joins on ``grp`` (NDV 4): containment divides by
        max(4, 3) = 4, giving 8*4/4 = 8 — which is also the true count.
        The old code divided every edge by ``foreign_keys[0]``'s parent
        NDV (8), under-estimating by 2x."""
        pg = PostgresHeuristic(two_key_schema)
        q = JoinQuery(("title", "c2"), ())
        assert pg.cardinality(q, frozenset(q.tables)) == pytest.approx(8.0)
        assert true_join_cardinality(two_key_schema, q) == 8

    def test_unique_key_edge_unchanged(self, two_key_schema):
        pg = PostgresHeuristic(two_key_schema)
        q = JoinQuery(("title", "c1"), ())
        assert pg.cardinality(q, frozenset(q.tables)) == pytest.approx(
            8 * 5 / max(8, 5))


# ----------------------------------------------------------------------
# Planner: join-graph connectivity + mirror-partition dedup
# ----------------------------------------------------------------------
def _best_plan_reference(tables, is_connected, card):
    """The pre-dedup enumeration: every (left, right) ordered partition."""
    tables = sorted(tables)
    best = {}
    for name in tables:
        s = frozenset([name])
        best[s] = (scan_cost(card(s)), Plan(s))
    for size in range(2, len(tables) + 1):
        for combo in combinations(tables, size):
            subset = frozenset(combo)
            if not is_connected(subset):
                continue
            candidates = []
            members = sorted(subset)
            out = card(subset)
            for r in range(1, size):
                for left_combo in combinations(members, r):
                    left = frozenset(left_combo)
                    right = subset - left
                    if left not in best or right not in best:
                        continue
                    cost = (best[left][0] + best[right][0]
                            + join_cost(card(left), card(right), out))
                    candidates.append(
                        (cost, Plan(subset, best[left][1], best[right][1])))
            if candidates:
                best[subset] = min(candidates, key=lambda t: t[0])
    return best[frozenset(tables)][1]


class TestJoinGraphPlanner:
    def test_star_graph_matches_connected_rule(self):
        schema = make_imdb_large(n_titles=200, seed=0)
        graph = JoinGraph.from_schema(schema)
        names = sorted(schema.tables)
        for size in range(1, len(names) + 1):
            for combo in combinations(names, size):
                subset = frozenset(combo)
                assert graph.is_connected(subset) == \
                    connected(subset, "title")

    def test_chain_connectivity(self):
        graph = JoinGraph([("b", "a"), ("c", "b")])
        assert graph.is_connected(frozenset(["a", "b", "c"]))
        assert graph.is_connected(frozenset(["a", "b"]))
        assert not graph.is_connected(frozenset(["a", "c"]))

    def test_connected_subsets_deterministic_order(self):
        graph = JoinGraph([("b", "a"), ("c", "b")])
        subsets = graph.connected_subsets(["c", "a", "b"])
        assert subsets == [frozenset(["a"]), frozenset(["b"]),
                           frozenset(["c"]), frozenset(["a", "b"]),
                           frozenset(["b", "c"]),
                           frozenset(["a", "b", "c"])]

    def test_chain_plan_excludes_cross_product(self):
        graph = JoinGraph([("b", "a"), ("c", "b")])
        cards = {frozenset(["a"]): 1.0, frozenset(["b"]): 1000.0,
                 frozenset(["c"]): 1.0, frozenset(["a", "b"]): 10.0,
                 frozenset(["b", "c"]): 10.0,
                 frozenset(["a", "b", "c"]): 5.0}
        plan = best_plan(["a", "b", "c"], graph, lambda s: cards[s])
        # a ⋈ c is disconnected, so no subplan may cover exactly {a, c}.
        for node in [plan.left, plan.right]:
            assert node.tables != frozenset(["a", "c"])

    def test_star_plans_bit_identical_via_graph(self):
        """plan_for_query (join graph) must equal best_plan with the
        historical star rule on a real workload."""
        schema = make_imdb_large(n_titles=200, seed=0)
        wl = generate_job_m_focused(schema, 6, np.random.default_rng(5),
                                    min_tables=3)
        pg = PostgresHeuristic(schema)
        for q in wl.queries:
            fn = pg.card_fn(q)
            assert plan_for_query(schema, list(q.tables), fn) == \
                best_plan(list(q.tables), "title", fn)

    def test_dedup_matches_reference_enumeration_with_ties(self):
        """Mirror-partition dedup halves the enumeration; plans must be
        bit-identical to the full enumeration even under heavy cost
        ties (small integer cards force them)."""
        center = "t"
        children = ["a", "b", "c", "d"]
        tables = [center] + children
        rng = np.random.default_rng(7)
        for _ in range(60):
            cards = {}
            for size in range(1, len(tables) + 1):
                for combo in combinations(sorted(tables), size):
                    s = frozenset(combo)
                    if connected(s, center):
                        cards[s] = float(rng.integers(1, 8))
            fn = lambda s: cards[s]
            got = best_plan(tables, center, fn)
            want = _best_plan_reference(
                tables, lambda s: connected(s, center), fn)
            assert got == want

    def test_disconnected_raises(self):
        graph = JoinGraph([("b", "a")])
        with pytest.raises(RuntimeError):
            best_plan(["a", "c"], graph, lambda s: 1.0)


# ----------------------------------------------------------------------
# ServingCardinalityProvider: one batched call, bit-identity, hot-swap
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def imdb_schema() -> Schema:
    return make_imdb(n_titles=300, seed=0)


@pytest.fixture(scope="module")
def imdb_join(imdb_schema) -> UAEJoin:
    join = UAEJoin(imdb_schema, sample_size=200, hidden=16, num_blocks=1,
                   est_samples=24, dps_samples=4, batch_size=64,
                   query_batch_size=4, seed=0)
    join.fit(epochs=1, mode="data")
    return join


@pytest.fixture
def serving_front(imdb_join):
    """Fresh front door per test: hot-swap tests mutate the namespace."""
    join = copy.copy(imdb_join)
    join.uae = imdb_join.uae.clone()
    front = RoutedEstimateService(pool_workers=1, refine_epochs=1, seed=3)
    space = front.add_join(join, namespace="imdb")
    return front, space, join


SERVING_QUERY = JoinQuery(
    ("title", "movie_companies", "movie_info"),
    (Predicate("title.kind_id", "=", 1),
     Predicate("movie_companies.company_id", "<=", 40)))


class TestServingCardinalityProvider:
    def test_prefetch_bit_identical_to_reference(self, serving_front,
                                                 imdb_schema):
        front, _, _ = serving_front
        provider = ServingCardinalityProvider(front, imdb_schema, seed=17)
        got = provider.prefetch(SERVING_QUERY)
        ref = provider.reference(SERVING_QUERY)
        assert np.array_equal(got, ref)
        assert len(got) == len(provider.plan_fragments(SERVING_QUERY))

    def test_one_batched_call_covers_the_whole_plan(self, serving_front,
                                                    imdb_schema):
        front, _, _ = serving_front
        provider = ServingCardinalityProvider(front, imdb_schema, seed=17)
        plan = plan_for_query(imdb_schema, list(SERVING_QUERY.tables),
                              provider.card_fn(SERVING_QUERY))
        assert plan.tables == frozenset(SERVING_QUERY.tables)
        assert provider.batched_calls == 1
        assert provider.fallback_calls == 0
        # Re-planning the same query hits the version-keyed cache.
        plan_for_query(imdb_schema, list(SERVING_QUERY.tables),
                       provider.card_fn(SERVING_QUERY))
        assert provider.batched_calls == 1

    def test_lookup_matches_prefetched_fragment_values(self, serving_front,
                                                       imdb_schema):
        front, _, _ = serving_front
        provider = ServingCardinalityProvider(front, imdb_schema, seed=17)
        values = provider.prefetch(SERVING_QUERY)
        frags = provider.plan_fragments(SERVING_QUERY)
        for frag, value in zip(frags, values):
            got = provider.lookup(SERVING_QUERY, frozenset(frag.tables))
            assert got == float(value)
        assert provider.batched_calls == 1

    def test_seed_stable_across_instances(self, serving_front, imdb_schema):
        front, _, _ = serving_front
        a = ServingCardinalityProvider(front, imdb_schema, seed=17)
        b = ServingCardinalityProvider(front, imdb_schema, seed=17)
        assert a.seed_for(SERVING_QUERY) == b.seed_for(SERVING_QUERY)
        assert a.seed_for(SERVING_QUERY) != \
            ServingCardinalityProvider(front, imdb_schema,
                                       seed=18).seed_for(SERVING_QUERY)

    def test_hot_swap_invalidates_and_stays_bit_identical(self,
                                                          serving_front,
                                                          imdb_schema):
        front, space, join = serving_front
        provider = ServingCardinalityProvider(front, imdb_schema, seed=17)
        before = provider.prefetch(SERVING_QUERY)
        v1 = space.version
        space.server.ingest_data(join.sample_table.codes[:80], epochs=1)
        assert space.version > v1
        after = provider.prefetch(SERVING_QUERY)
        assert provider.invalidations == 1
        assert provider.batched_calls == 2
        # The new answers are the new model's seeded reference, bit for
        # bit — and genuinely from the swapped model, not a stale cache.
        assert np.array_equal(after, provider.reference(SERVING_QUERY))
        assert not np.array_equal(before, after)


class TestUESPessimisticProvider:
    def test_singleton_is_filtered_count(self, tiny_schema):
        ues = UESPessimisticProvider(tiny_schema)
        q = JoinQuery(("movie_info",),
                      (Predicate("movie_info.info_type", "=", 1),))
        assert ues.cardinality(q, frozenset(["movie_info"])) == 3

    def test_upper_bounds_every_connected_fragment(self, tiny_schema):
        ues = UESPessimisticProvider(tiny_schema)
        graph = JoinGraph.from_schema(tiny_schema)
        queries = [
            JoinQuery(("title", "movie_companies", "movie_info"), ()),
            JoinQuery(("title", "movie_companies", "movie_info"),
                      (Predicate("title.kind_id", "=", 0),
                       Predicate("movie_companies.company_id", "=", 10))),
            JoinQuery(("title", "movie_info"),
                      (Predicate("movie_info.info_type", ">=", 2),)),
        ]
        for q in queries:
            for subset in graph.connected_subsets(q.tables):
                truth = true_join_cardinality(
                    tiny_schema, extract_fragment(q, subset))
                assert ues.cardinality(q, subset) + 1e-6 >= truth

    def test_bound_is_finite_and_positive(self, tiny_schema):
        ues = UESPessimisticProvider(tiny_schema)
        fn = ues.card_fn(JoinQuery(
            ("title", "movie_companies", "movie_info"), ()))
        bound = fn(frozenset(["title", "movie_companies", "movie_info"]))
        assert np.isfinite(bound) and bound >= 1.0


# ----------------------------------------------------------------------
# End to end: the oracle never loses through the new machinery
# ----------------------------------------------------------------------
class TestOracleOptimality:
    def test_oracle_plan_cost_is_minimal(self, tiny_schema):
        oracle = TrueCardOracle(tiny_schema)
        magic = MagicConstantHeuristic(tiny_schema)
        q = JoinQuery(("title", "movie_companies", "movie_info"),
                      (Predicate("title.production_year", ">=", 2000),))
        true_fn = oracle.card_fn(q)
        oracle_cost = plan_cost(
            plan_for_query(tiny_schema, list(q.tables), true_fn), true_fn)
        magic_cost = plan_cost(
            plan_for_query(tiny_schema, list(q.tables), magic.card_fn(q)),
            true_fn)
        assert oracle_cost <= magic_cost + 1e-9
