"""Tests for column factorization (large-NDV handling, Section 4.6)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import ColumnFactorization, Table


def make_table_with_domain(domain_size: int, rows: int = 200) -> Table:
    rng = np.random.default_rng(0)
    values = np.arange(domain_size)
    data = rng.choice(values, size=rows)
    # Ensure the full domain appears so Column sees every value.
    data[:domain_size] = values[:min(domain_size, rows)]
    if domain_size > rows:
        data = values  # all distinct
    return Table.from_raw("t", {"big": data,
                                "small": np.arange(len(data)) % 5})


class TestUnfactored:
    def test_small_domains_pass_through(self):
        table = make_table_with_domain(100)
        fact = ColumnFactorization(table, threshold=2048)
        assert not fact.any_factored
        assert fact.model_domains == table.domain_sizes
        np.testing.assert_array_equal(fact.encode_rows(table.codes),
                                      table.codes)


class TestFactored:
    def test_splits_large_domain(self):
        table = make_table_with_domain(3500)
        fact = ColumnFactorization(table, threshold=2048, bits=6)
        assert fact.any_factored
        # big splits into hi/lo, small stays.
        assert fact.num_model_cols == 3
        assert fact.model_names[0].endswith("__hi")
        assert fact.model_names[1].endswith("__lo")
        assert fact.model_domains[1] == 64

    def test_roundtrip(self):
        table = make_table_with_domain(3500)
        fact = ColumnFactorization(table, threshold=2048, bits=6)
        model = fact.encode_rows(table.codes)
        back = fact.decode_rows(model)
        np.testing.assert_array_equal(back, table.codes)

    def test_too_large_rejected(self):
        table = make_table_with_domain(300)
        with pytest.raises(ValueError):
            ColumnFactorization(table, threshold=16, bits=2)  # 300 > 16^2


class TestMaskExpansion:
    def test_fixed_mask_passthrough(self):
        table = make_table_with_domain(50)
        fact = ColumnFactorization(table, threshold=2048)
        mask = np.zeros(50, dtype=bool)
        mask[:10] = True
        out = fact.expand_masks({0: mask})
        assert out[0][0] == "fixed"
        np.testing.assert_array_equal(out[0][1], mask)
        assert out[1] is None

    def test_factored_mask_becomes_hi_lo(self):
        table = make_table_with_domain(3500)
        fact = ColumnFactorization(table, threshold=2048, bits=6)
        base = 64
        mask = np.zeros(3500, dtype=bool)
        mask[100:200] = True  # spans hi digits 1..3
        out = fact.expand_masks({0: mask})
        kind_hi, hi_mask = out[0]
        kind_lo, grid = out[1]
        assert kind_hi == "fixed" and kind_lo == "lo"
        expected_hi = np.zeros(fact.model_domains[0], dtype=bool)
        expected_hi[100 // base:200 // base + 1] = True
        np.testing.assert_array_equal(hi_mask, expected_hi)
        # The lo grid, indexed by hi digit, must reproduce the exact mask.
        for hi in range(fact.model_domains[0]):
            for lo in range(base):
                v = hi * base + lo
                if v < 3500:
                    assert grid[hi, lo] == mask[v]

    def test_unconstrained_factored_column(self):
        table = make_table_with_domain(3500)
        fact = ColumnFactorization(table, threshold=2048, bits=6)
        out = fact.expand_masks({})
        assert out[0] is None and out[1] is None


@settings(max_examples=20, deadline=None)
@given(st.integers(100, 4000), st.integers(3, 8))
def test_roundtrip_property(domain, bits):
    rng = np.random.default_rng(domain)
    codes = rng.integers(0, domain, size=50).astype(np.int32)
    table = make_table_with_domain(domain)
    try:
        fact = ColumnFactorization(table, threshold=64, bits=bits)
    except ValueError:
        assert domain > (2 ** bits) ** 2  # only too-wide domains may fail
        return
    rows = np.column_stack([codes, np.zeros(50, dtype=np.int32)])
    np.testing.assert_array_equal(fact.decode_rows(fact.encode_rows(rows)),
                                  rows)
