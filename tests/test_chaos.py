"""Tests for the deterministic chaos-injection harness (repro.chaos).

These are pure in-process unit tests (tier-1): the fault-matching
machinery, occurrence counting, cross-process determinism guarantees,
and the payload helpers.  The end-to-end self-healing scenarios that
*consume* this harness live in tests/test_serve_supervisor.py (marked
``chaos``) and the ``chaos`` bench scenario.
"""

import pickle

import numpy as np
import pytest

from repro.chaos import (HOOK_FEEDBACK_RECORD, HOOK_REFINE_WEIGHTS,
                         HOOK_WORKER_BATCH, HOOKS, ChaosPlan, Fault,
                         corrupt_truth, poison_state)


# ----------------------------------------------------------------------
class TestFault:
    def test_default_selector_is_first_occurrence(self):
        fault = Fault(HOOK_REFINE_WEIGHTS)
        assert fault.at == 1 and fault.every is None and fault.prob is None

    def test_unknown_hook_rejected(self):
        with pytest.raises(ValueError, match="unknown hook"):
            Fault("no.such.hook")

    def test_invalid_selectors_rejected(self):
        with pytest.raises(ValueError):
            Fault(HOOK_WORKER_BATCH, at=0)
        with pytest.raises(ValueError):
            Fault(HOOK_WORKER_BATCH, every=0)
        with pytest.raises(ValueError):
            Fault(HOOK_WORKER_BATCH, prob=1.5)

    def test_where_matches_subset_of_context(self):
        fault = Fault(HOOK_WORKER_BATCH, where={"worker": "w1"})
        assert fault.matches({"worker": "w1", "namespace": "toy"})
        assert not fault.matches({"worker": "w0"})
        assert not fault.matches({})


# ----------------------------------------------------------------------
class TestChaosPlan:
    def test_at_counts_matching_occurrences(self):
        plan = ChaosPlan(seed=1)
        plan.inject(HOOK_WORKER_BATCH, "kill", at=3)
        hits = [plan.fires(HOOK_WORKER_BATCH) is not None for _ in range(5)]
        assert hits == [False, False, True, False, False]

    def test_where_filter_gates_occurrence_counting(self):
        """Occurrences index *matching* traffic: w0's batches do not
        advance a fault scoped to w1."""
        plan = ChaosPlan(seed=1)
        plan.inject(HOOK_WORKER_BATCH, "kill", at=2, where={"worker": "w1"})
        assert plan.fires(HOOK_WORKER_BATCH, worker="w0") is None
        assert plan.fires(HOOK_WORKER_BATCH, worker="w1") is None
        assert plan.fires(HOOK_WORKER_BATCH, worker="w0") is None
        fault = plan.fires(HOOK_WORKER_BATCH, worker="w1")
        assert fault is not None and fault.action == "kill"

    def test_every_with_count_cap(self):
        plan = ChaosPlan(seed=1)
        plan.inject(HOOK_FEEDBACK_RECORD, "corrupt", every=2, count=2)
        fired = [plan.fires(HOOK_FEEDBACK_RECORD) is not None
                 for _ in range(8)]
        # Every 2nd occurrence, capped at 2 total fires.
        assert fired == [False, True, False, True, False, False, False,
                         False]

    def test_prob_is_seed_deterministic(self):
        def draw(seed):
            plan = ChaosPlan(seed=seed)
            plan.inject(HOOK_WORKER_BATCH, "sleep", prob=0.3, count=None)
            return [plan.fires(HOOK_WORKER_BATCH) is not None
                    for _ in range(64)]

        assert draw(7) == draw(7)
        assert draw(7) != draw(8)
        assert any(draw(7))

    def test_first_match_wins_but_losers_still_count(self):
        """Two faults on one hook: the one that fires masks the other
        for that occurrence, yet the other's occurrence counter still
        advances (selectors index real traffic, not prior fires)."""
        plan = ChaosPlan(seed=1)
        first = plan.inject(HOOK_WORKER_BATCH, "kill", at=1)
        second = plan.inject(HOOK_WORKER_BATCH, "sleep", at=2)
        assert plan.fires(HOOK_WORKER_BATCH) is first
        assert plan.fires(HOOK_WORKER_BATCH) is second

    def test_pickled_copy_counts_from_zero(self):
        """A plan forked into a worker re-counts that worker's own
        occurrences — the parent's traffic does not leak in."""
        plan = ChaosPlan(seed=5)
        plan.inject(HOOK_WORKER_BATCH, "kill", at=2)
        assert plan.fires(HOOK_WORKER_BATCH) is None   # parent occurrence 1
        copy = pickle.loads(pickle.dumps(plan))
        assert copy.fires(HOOK_WORKER_BATCH) is None   # copy occurrence 1
        fault = copy.fires(HOOK_WORKER_BATCH)          # copy occurrence 2
        assert fault is not None
        # The copies' logs are independent.
        assert plan.fired_log == []
        assert len(copy.fired_log) == 1

    def test_fired_log_records_context(self):
        plan = ChaosPlan(seed=5)
        plan.inject(HOOK_WORKER_BATCH, "kill", where={"worker": "w0"})
        plan.fires(HOOK_WORKER_BATCH, worker="w0", namespace="toy",
                   incarnation=0)
        (entry,) = plan.fired_log
        assert entry["hook"] == HOOK_WORKER_BATCH
        assert entry["action"] == "kill"
        assert entry["worker"] == "w0" and entry["namespace"] == "toy"

    def test_payload_rng_stable_across_pickling(self):
        """Poison noise must be identical no matter which process asks:
        the hook rng derives from (seed, crc32), never builtin hash()."""
        plan = ChaosPlan(seed=11)
        copy = pickle.loads(pickle.dumps(plan))
        a = plan.rng(HOOK_REFINE_WEIGHTS).standard_normal(8)
        b = copy.rng(HOOK_REFINE_WEIGHTS).standard_normal(8)
        np.testing.assert_array_equal(a, b)
        # ...and distinct per hook.
        c = plan.rng(HOOK_WORKER_BATCH).standard_normal(8)
        assert not np.array_equal(a, c)

    def test_summary_shape(self):
        plan = ChaosPlan(seed=3)
        plan.inject(HOOK_REFINE_WEIGHTS, "poison")
        plan.fires(HOOK_REFINE_WEIGHTS)
        summary = plan.summary()
        assert summary["seed"] == 3
        assert summary["faults"] == [{"hook": HOOK_REFINE_WEIGHTS,
                                      "action": "poison", "fired": 1}]
        assert len(summary["fired"]) == 1

    def test_hooks_are_the_documented_set(self):
        assert set(HOOKS) == {"refine.weights", "publish.snapshot",
                              "feedback.record", "worker.batch"}


# ----------------------------------------------------------------------
class TestPayloadHelpers:
    def test_poison_state_perturbs_every_array_deterministically(self):
        state = {"w": np.zeros((3, 2), dtype=np.float32),
                 "b": np.ones(4, dtype=np.float64)}
        plan = ChaosPlan(seed=11)
        bad = poison_state(state, plan.rng(HOOK_REFINE_WEIGHTS),
                           magnitude=25.0)
        for name in state:
            assert bad[name].dtype == state[name].dtype
            assert bad[name].shape == state[name].shape
            assert not np.allclose(bad[name], state[name])
        # Originals untouched; same seed reproduces the same poison.
        assert np.array_equal(state["w"], np.zeros((3, 2)))
        again = poison_state(state, ChaosPlan(seed=11).rng(
            HOOK_REFINE_WEIGHTS), magnitude=25.0)
        for name in state:
            np.testing.assert_array_equal(bad[name], again[name])

    def test_corrupt_truth_scales_with_floor(self):
        fault = Fault(HOOK_FEEDBACK_RECORD, "corrupt",
                      params={"factor": 500.0})
        assert corrupt_truth(10.0, fault) == 5000.0
        assert corrupt_truth(0.0, fault) == 1.0          # floored
        default = Fault(HOOK_FEEDBACK_RECORD, "corrupt")
        assert corrupt_truth(2.0, default) == 2000.0     # 1000x default
