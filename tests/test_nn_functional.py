"""Tests for softmax/cross-entropy/q-error losses and Gumbel noise."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import functional as F
from repro.nn.tensor import Tensor
from tests.conftest import numeric_gradient

RNG = np.random.default_rng(1)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        logits = Tensor(RNG.standard_normal((5, 7)))
        probs = F.softmax(logits).data
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0, atol=1e-5)
        assert (probs >= 0).all()

    def test_matches_scipy(self):
        from scipy.special import softmax as scipy_softmax
        x = RNG.standard_normal((4, 6))
        np.testing.assert_allclose(F.softmax(Tensor(x)).data,
                                   scipy_softmax(x, axis=-1), atol=1e-5)

    def test_stable_with_large_logits(self):
        x = np.array([[1000.0, 1000.0, -1000.0]])
        probs = F.softmax(Tensor(x)).data
        assert np.isfinite(probs).all()
        np.testing.assert_allclose(probs[0, :2], 0.5, atol=1e-5)

    def test_gradient(self):
        x = RNG.standard_normal((3, 4))

        def fn(arr):
            return (F.softmax(Tensor(arr, requires_grad=False)) ** 2) \
                .sum().item()

        t = Tensor(x, requires_grad=True)
        (F.softmax(t) ** 2).sum().backward()
        numeric = numeric_gradient(lambda a: fn(a), x.copy())
        np.testing.assert_allclose(t.grad, numeric, atol=2e-2)

    def test_log_softmax_consistency(self):
        x = RNG.standard_normal((4, 5))
        np.testing.assert_allclose(F.log_softmax(Tensor(x)).data,
                                   np.log(F.softmax(Tensor(x)).data),
                                   atol=1e-5)


class TestCrossEntropy:
    def test_uniform_logits_give_log_k(self):
        logits = Tensor(np.zeros((8, 5)))
        targets = RNG.integers(0, 5, 8)
        loss = F.cross_entropy(logits, targets)
        assert loss.item() == pytest.approx(np.log(5), rel=1e-4)

    def test_perfect_prediction_near_zero(self):
        targets = np.array([0, 1, 2])
        logits = np.full((3, 3), -50.0)
        logits[np.arange(3), targets] = 50.0
        assert F.cross_entropy(Tensor(logits), targets).item() < 1e-4

    def test_gradient_direction(self):
        """Gradient should push the target logit up."""
        logits = Tensor(np.zeros((1, 4)), requires_grad=True)
        loss = F.cross_entropy(logits, np.array([2]))
        loss.backward()
        assert logits.grad[0, 2] < 0          # increase target logit
        assert (np.delete(logits.grad[0], 2) > 0).all()


class TestQErrorLoss:
    def test_perfect_estimate_is_one(self):
        est = Tensor(np.array([0.25, 0.5]))
        loss = F.qerror_loss(est, np.array([0.25, 0.5]))
        assert loss.item() == pytest.approx(1.0, rel=1e-5)

    def test_symmetric_in_ratio(self):
        over = F.qerror_loss(Tensor(np.array([0.4])), np.array([0.1])).item()
        under = F.qerror_loss(Tensor(np.array([0.1])), np.array([0.4])).item()
        assert over == pytest.approx(under, rel=1e-5)
        assert over == pytest.approx(4.0, rel=1e-5)

    def test_gradient_sign(self):
        est = Tensor(np.array([0.4]), requires_grad=True)
        F.qerror_loss(est, np.array([0.1])).backward()
        assert est.grad[0] > 0  # overestimate: push estimate down
        est2 = Tensor(np.array([0.05]), requires_grad=True)
        F.qerror_loss(est2, np.array([0.2])).backward()
        assert est2.grad[0] < 0  # underestimate: push estimate up

    def test_zero_estimate_clamped(self):
        loss = F.qerror_loss(Tensor(np.array([0.0])), np.array([0.5]))
        assert np.isfinite(loss.item())


class TestOtherLosses:
    def test_mse(self):
        loss = F.mse_loss(Tensor(np.array([1.0, 2.0])), np.array([0.0, 0.0]))
        assert loss.item() == pytest.approx(2.5)

    def test_msle_perfect(self):
        est = Tensor(np.array([0.1, 0.9]))
        assert F.msle_loss(est, np.array([0.1, 0.9])).item() \
            == pytest.approx(0.0, abs=1e-6)

    def test_masked_fill(self):
        logits = Tensor(np.ones((2, 3)), requires_grad=True)
        invalid = np.array([[True, False, False], [False, False, True]])
        out = F.masked_fill(logits, invalid)
        assert out.data[0, 0] == F.NEG_INF
        assert out.data[0, 1] == 1.0
        out.sum().backward()
        # Gradient flows only through the kept entries.
        np.testing.assert_allclose(logits.grad, (~invalid).astype(float))


class TestGumbelNoise:
    def test_moments(self):
        g = F.sample_gumbel((200_000,), np.random.default_rng(0))
        euler = 0.5772156649
        assert g.mean() == pytest.approx(euler, abs=0.02)
        assert g.std() == pytest.approx(np.pi / np.sqrt(6), abs=0.02)

    def test_argmax_gumbel_trick_distribution(self):
        """argmax(log pi + g) should sample from pi (Eq. 8)."""
        pi = np.array([0.6, 0.3, 0.1])
        rng = np.random.default_rng(2)
        n = 40_000
        noise = F.sample_gumbel((n, 3), rng)
        picks = (np.log(pi)[None, :] + noise).argmax(axis=1)
        freq = np.bincount(picks, minlength=3) / n
        np.testing.assert_allclose(freq, pi, atol=0.02)


@settings(max_examples=30, deadline=None)
@given(st.floats(1e-4, 1.0), st.floats(1e-4, 1.0))
def test_qerror_loss_at_least_one(est, true):
    loss = F.qerror_loss(Tensor(np.array([est])), np.array([true]))
    assert loss.item() >= 1.0 - 1e-4
