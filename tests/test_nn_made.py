"""Tests for MADE/ResMADE mask construction and the autoregressive property."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import ResMADE, Tensor
from repro.nn.encoders import (BinaryEncoder, EmbeddingEncoder, OneHotEncoder,
                               binary_code_matrix, make_encoder)
from repro.nn.made import (hidden_degrees, input_degrees, mask_between,
                           output_degrees)

RNG = np.random.default_rng(5)


class TestMaskConstruction:
    def test_input_degrees(self):
        deg = input_degrees([2, 3, 1])
        np.testing.assert_array_equal(deg, [0, 0, 1, 1, 1, 2])

    def test_hidden_degrees_balanced_and_sorted(self):
        deg = hidden_degrees(7, 4)
        assert set(deg) <= {0, 1, 2}
        # Balanced coverage (same multiset as the classic cycling
        # assignment) laid out ascending, so each sampling position
        # depends on a contiguous hidden-unit prefix — the property the
        # fused training kernels' width-restricted GEMMs rely on.
        np.testing.assert_array_equal(deg, [0, 0, 0, 1, 1, 2, 2])
        assert np.all(np.diff(deg) >= 0)

    def test_output_degrees(self):
        deg = output_degrees([2, 4])
        np.testing.assert_array_equal(deg, [0, 0, 1, 1, 1, 1])

    def test_mask_rules(self):
        in_deg = np.array([0, 1])
        out_deg = np.array([0, 1])
        hidden = mask_between(in_deg, out_deg)
        np.testing.assert_array_equal(hidden, [[1, 0], [1, 1]])
        output = mask_between(in_deg, out_deg, is_output=True)
        np.testing.assert_array_equal(output, [[0, 0], [1, 0]])


class TestEncoders:
    def test_binary_code_matrix(self):
        m = binary_code_matrix(5)
        assert m.shape == (5, 3)
        np.testing.assert_array_equal(m[3], [1, 1, 0])  # 3 = 0b011, LSB first

    def test_binary_encoder_roundtrip_distinctness(self):
        enc = BinaryEncoder(10)
        codes = np.arange(10)
        encoded = enc.encode_hard(codes)
        assert len(np.unique(encoded[:, :-1], axis=0)) == 10

    def test_wildcard_zeroes_values(self):
        enc = BinaryEncoder(8)
        out = enc.encode_hard(np.array([5, 5]), np.array([False, True]))
        assert out[0, -1] == 0 and out[1, -1] == 1
        assert out[1, :-1].sum() == 0
        assert out[0, :-1].sum() > 0

    def test_soft_encode_matches_hard_for_onehot(self):
        enc = BinaryEncoder(6)
        y = np.zeros((2, 6), dtype=np.float32)
        y[0, 3] = 1.0
        y[1, 5] = 1.0
        soft = enc.encode_soft(Tensor(y)).data
        hard = enc.encode_hard(np.array([3, 5]))
        np.testing.assert_allclose(soft, hard, atol=1e-6)

    def test_onehot_encoder(self):
        enc = OneHotEncoder(4)
        out = enc.encode_hard(np.array([2]))
        np.testing.assert_array_equal(out[0], [0, 0, 1, 0, 0])

    def test_embedding_encoder_soft_hard_agree(self):
        enc = EmbeddingEncoder(5, 3, RNG)
        y = np.zeros((1, 5), dtype=np.float32)
        y[0, 2] = 1.0
        np.testing.assert_allclose(enc.encode_soft(Tensor(y)).data,
                                   enc.encode_hard(np.array([2])), atol=1e-5)

    def test_make_encoder_dispatch(self):
        assert isinstance(make_encoder(10, RNG, "binary"), BinaryEncoder)
        assert isinstance(make_encoder(10, RNG, "onehot"), OneHotEncoder)
        assert isinstance(make_encoder(10_000, RNG, "binary",
                                       embedding_threshold=100),
                          EmbeddingEncoder)
        with pytest.raises(ValueError):
            make_encoder(10, RNG, "bogus")


class TestAutoregressiveProperty:
    @settings(max_examples=12, deadline=None)
    @given(st.lists(st.integers(2, 9), min_size=2, max_size=5),
           st.integers(0, 4))
    def test_no_forward_leakage(self, domains, perturb_seed):
        """Changing column j must not affect logits of columns <= j."""
        model = ResMADE(domains, hidden=24, num_blocks=1,
                        rng=np.random.default_rng(0))
        rng = np.random.default_rng(perturb_seed)
        n = len(domains)
        codes = np.stack([rng.integers(0, d, size=4) for d in domains], axis=1)
        target = rng.integers(0, n)
        altered = codes.copy()
        altered[:, target] = (altered[:, target] + 1) % domains[target]
        base = model.forward_np(model.encode_tuples(codes))
        pert = model.forward_np(model.encode_tuples(altered))
        for col in range(target + 1):
            np.testing.assert_allclose(
                model.logits_for_np(base, col),
                model.logits_for_np(pert, col), atol=1e-5,
                err_msg=f"col {col} leaked from col {target}")

    def test_later_columns_do_depend_on_earlier(self):
        model = ResMADE([4, 4, 4], hidden=32, num_blocks=2,
                        rng=np.random.default_rng(1))
        codes = np.array([[0, 0, 0], [3, 0, 0]])
        out = model.forward_np(model.encode_tuples(codes))
        col1 = model.logits_for_np(out, 1)
        assert np.abs(col1[0] - col1[1]).max() > 1e-6

    def test_first_column_is_constant(self):
        """Column 0's logits are the unconditional marginal (bias only)."""
        model = ResMADE([5, 3], hidden=16, num_blocks=1,
                        rng=np.random.default_rng(2))
        codes = np.array([[0, 0], [4, 2], [2, 1]])
        out = model.forward_np(model.encode_tuples(codes))
        col0 = model.logits_for_np(out, 0)
        assert np.abs(col0 - col0[0]).max() < 1e-6


class TestForwardPaths:
    def test_tensor_and_numpy_forward_agree(self):
        model = ResMADE([4, 6, 3], hidden=24, num_blocks=2,
                        rng=np.random.default_rng(3))
        codes = RNG.integers(0, [4, 6, 3], size=(7, 3))
        x = model.encode_tuples(codes)
        np.testing.assert_allclose(model.forward(Tensor(x)).data,
                                   model.forward_np(x), atol=1e-4)

    def test_column_sliced_forward_agrees(self):
        model = ResMADE([4, 6, 3], hidden=24, num_blocks=1,
                        rng=np.random.default_rng(4))
        codes = RNG.integers(0, [4, 6, 3], size=(5, 3))
        x = model.encode_tuples(codes)
        full = model.forward_np(x)
        h = model.hidden_np(x)
        for col in range(3):
            np.testing.assert_allclose(model.column_logits_np(h, col),
                                       model.logits_for_np(full, col),
                                       atol=1e-4)

    def test_column_sliced_tensor_path_agrees(self):
        model = ResMADE([4, 5], hidden=16, num_blocks=1,
                        rng=np.random.default_rng(5))
        codes = RNG.integers(0, [4, 5], size=(3, 2))
        x = Tensor(model.encode_tuples(codes))
        full = model.forward(x)
        h = model.hidden_tensor(x)
        for col in range(2):
            np.testing.assert_allclose(
                model.column_logits_from_hidden(h, col).data,
                model.logits_for(full, col).data, atol=1e-4)

    def test_nll_matches_manual(self):
        model = ResMADE([3, 4], hidden=16, num_blocks=1,
                        rng=np.random.default_rng(6))
        codes = np.array([[1, 2], [0, 3]])
        nll = model.nll_np(codes)
        logits = model.forward_np(model.encode_tuples(codes))
        manual = np.zeros(2)
        for c, domain in enumerate([3, 4]):
            lg = model.logits_for_np(logits, c)
            lg = lg - lg.max(axis=1, keepdims=True)
            logp = lg - np.log(np.exp(lg).sum(axis=1, keepdims=True))
            manual -= logp[np.arange(2), codes[:, c]]
        np.testing.assert_allclose(nll, manual, atol=1e-6)

    def test_rejects_empty_domain_list(self):
        with pytest.raises(ValueError):
            ResMADE([], hidden=8)
