"""Tests for Algorithm 1 (GS-Sampling) and the hard categorical sampler."""

import numpy as np
import pytest

from repro.core.gumbel import gs_sample, gs_sample_from_logits, hard_sample_np
from repro.nn.tensor import Tensor


class TestGumbelSoftmax:
    def test_output_is_distribution(self):
        rng = np.random.default_rng(0)
        log_probs = Tensor(np.log(np.full((16, 5), 0.2, dtype=np.float32)))
        y = gs_sample(log_probs, tau=1.0, rng=rng)
        np.testing.assert_allclose(y.data.sum(axis=1), 1.0, atol=1e-5)
        assert (y.data >= 0).all()

    def test_low_temperature_approaches_onehot(self):
        rng = np.random.default_rng(1)
        logp = Tensor(np.log(np.array([[0.5, 0.3, 0.2]] * 64,
                                      dtype=np.float32)))
        hot = gs_sample(logp, tau=0.05, rng=rng)
        assert hot.data.max(axis=1).mean() > 0.95

    def test_high_temperature_flattens(self):
        rng = np.random.default_rng(2)
        logp = Tensor(np.log(np.array([[0.8, 0.1, 0.1]] * 64,
                                      dtype=np.float32)))
        soft = gs_sample(logp, tau=20.0, rng=rng)
        assert soft.data.max(axis=1).mean() < 0.6

    def test_argmax_frequency_matches_pi(self):
        """The GS sample's argmax must be distributed as the categorical."""
        rng = np.random.default_rng(3)
        pi = np.array([0.5, 0.3, 0.15, 0.05], dtype=np.float32)
        logp = Tensor(np.log(np.tile(pi, (30_000, 1))))
        y = gs_sample(logp, tau=1.0, rng=rng)
        freq = np.bincount(y.data.argmax(axis=1), minlength=4) / 30_000
        np.testing.assert_allclose(freq, pi, atol=0.02)

    def test_gradient_flows_to_logits(self):
        """The whole point: d sample / d distribution parameters exists."""
        rng = np.random.default_rng(4)
        logits = Tensor(np.zeros((8, 4), dtype=np.float32),
                        requires_grad=True)
        y = gs_sample_from_logits(logits, tau=1.0, rng=rng)
        (y[:, 0]).sum().backward()
        assert logits.grad is not None
        assert np.abs(logits.grad).sum() > 0

    def test_invalid_temperature(self):
        with pytest.raises(ValueError):
            gs_sample(Tensor(np.zeros((1, 2))), tau=0.0,
                      rng=np.random.default_rng(0))

    def test_respects_masked_categories(self):
        """-inf log-probs (Algorithm 2's region masking) never get mass
        beyond the softmax tail."""
        rng = np.random.default_rng(5)
        logp = np.zeros((256, 4), dtype=np.float32)
        logp[:, 2] = -1e9
        y = gs_sample(Tensor(logp), tau=1.0, rng=rng)
        assert y.data[:, 2].max() < 1e-6
        assert (y.data.argmax(axis=1) != 2).all()


class TestHardSampler:
    def test_matches_distribution(self):
        rng = np.random.default_rng(6)
        probs = np.tile(np.array([0.7, 0.2, 0.1]), (50_000, 1))
        codes = hard_sample_np(probs, rng)
        freq = np.bincount(codes, minlength=3) / 50_000
        np.testing.assert_allclose(freq, [0.7, 0.2, 0.1], atol=0.01)

    def test_single_category(self):
        rng = np.random.default_rng(7)
        codes = hard_sample_np(np.ones((10, 1)), rng)
        assert (codes == 0).all()

    def test_unnormalised_rows_ok(self):
        rng = np.random.default_rng(8)
        probs = np.tile(np.array([7.0, 2.0, 1.0]), (20_000, 1))
        codes = hard_sample_np(probs, rng)
        freq = np.bincount(codes, minlength=3) / 20_000
        np.testing.assert_allclose(freq, [0.7, 0.2, 0.1], atol=0.015)

    def test_never_samples_zero_probability(self):
        rng = np.random.default_rng(9)
        probs = np.tile(np.array([0.5, 0.0, 0.5]), (5000, 1))
        codes = hard_sample_np(probs, rng)
        assert (codes != 1).all()
