"""Cross-backend parity matrix.

Parity used to be checked only pairwise — inference legacy-vs-engine on
fixed weights (``test_infer_engine``) and training-gradient
legacy-vs-engine at one point (``test_train_engine``).  This matrix
closes the loop over the full product
``train_backend x backend in {legacy, engine}^2``: a model *trained* on
either training backend and then *served* on either inference backend
must agree with the all-legacy reference within the documented 1e-4
contract, for both estimates and gradients.
"""

import numpy as np
import pytest

from repro.core import UAE
from repro.core.progressive import ProgressiveSampler
from repro.train import collect_grads, max_grad_diff

BACKENDS = ("legacy", "engine")
CONTRACT = 1e-4          # the documented parity tolerance (README/ROADMAP)
FAST = dict(hidden=16, num_blocks=1, est_samples=48, dps_samples=4,
            batch_size=128, query_batch_size=8, seed=0)


@pytest.fixture(scope="module")
def trained(tiny_table, tiny_workload):
    """One identically-seeded hybrid fit per training backend."""
    models = {}
    for tb in BACKENDS:
        uae = UAE(tiny_table, **FAST, train_backend=tb)
        uae.fit(epochs=2, workload=tiny_workload, mode="hybrid")
        models[tb] = uae
    return models


@pytest.fixture(scope="module")
def matrix_estimates(trained, tiny_table, tiny_workload):
    """Seed-pinned estimates for every (train_backend, backend) cell."""
    queries = tiny_workload.queries[:8]
    cells = {}
    for tb, uae in trained.items():
        constraints = [uae.fact.expand_masks(q.masks(tiny_table))
                       for q in queries]
        for ib in BACKENDS:
            sampler = ProgressiveSampler(uae.model, num_samples=64, seed=17,
                                         backend=ib)
            sels = sampler.estimate_batch(constraints)
            cells[(tb, ib)] = np.clip(sels, 0.0, 1.0) * tiny_table.num_rows
    return cells


@pytest.mark.parametrize("train_backend", BACKENDS)
@pytest.mark.parametrize("backend", BACKENDS)
def test_estimates_agree_across_matrix(matrix_estimates, train_backend,
                                       backend):
    """Every cell answers within the 1e-4 contract of the all-legacy
    reference (same sampling seed, so the only divergence sources are
    the fused kernels)."""
    reference = matrix_estimates[("legacy", "legacy")]
    got = matrix_estimates[(train_backend, backend)]
    np.testing.assert_allclose(got, reference, rtol=CONTRACT, atol=CONTRACT)


@pytest.mark.parametrize("train_backend", BACKENDS)
def test_trained_weights_agree_across_train_backends(trained, train_backend):
    """The two training backends walk the same trajectory: after the
    same seeded fit, weights match to float32 rounding (well inside the
    gradient contract)."""
    reference = trained["legacy"].model.state_dict()
    state = trained[train_backend].model.state_dict()
    for name in reference:
        np.testing.assert_allclose(state[name], reference[name],
                                   atol=CONTRACT, err_msg=name)


@pytest.mark.parametrize("train_backend", BACKENDS)
@pytest.mark.parametrize("grad_backend", BACKENDS)
def test_gradients_agree_at_trained_weights(trained, tiny_table,
                                            tiny_workload, train_backend,
                                            grad_backend):
    """Gradient parity holds at *every* cell's operating point, not just
    at init: whichever backend trained the weights, both backends
    compute the same hybrid gradient there (< 1e-4)."""
    source = trained[train_backend]
    queries = tiny_workload.queries[:6]
    constraints = [source.fact.expand_masks(q.masks(tiny_table))
                   for q in queries]
    sels = tiny_workload.selectivities(tiny_table.num_rows)[:6]
    codes = source.model_codes[
        np.random.default_rng(7).integers(0, len(source.model_codes), 64)]

    grads = {}
    for backend in BACKENDS:
        uae = UAE(tiny_table, **FAST, train_backend=backend)
        uae.model.load_state_dict(source.model.state_dict())
        # Pin the wildcard-dropout draws so both backends consume the
        # random stream draw for draw (the DPS Gumbel stream is already
        # aligned: both estimators are freshly built from the same seed).
        uae.rng = np.random.default_rng(99)
        loss = uae.data_loss(codes)
        uae.model.zero_grad()
        loss.backward()
        data_grads = collect_grads(uae.model)
        qloss = uae.query_loss(constraints, sels)
        uae.model.zero_grad()
        qloss.backward()
        grads[backend] = (data_grads, collect_grads(uae.model))

    ref_data, ref_query = grads["legacy"]
    got_data, got_query = grads[grad_backend]
    assert max_grad_diff(got_data, ref_data) < CONTRACT
    assert max_grad_diff(got_query, ref_query) < CONTRACT
