"""Tests for disjunction support via inclusion-exclusion."""

import numpy as np
import pytest

from repro.data import Table
from repro.estimators import SamplingEstimator
from repro.workload import (DNFQuery, Predicate, Query, estimate_disjunction,
                            intersect_queries, true_cardinality,
                            true_disjunction_cardinality)


@pytest.fixture(scope="module")
def table():
    rng = np.random.default_rng(0)
    return Table.from_raw("t", {
        "a": rng.integers(0, 10, 2000),
        "b": rng.integers(0, 6, 2000),
    })


@pytest.fixture(scope="module")
def exact(table):
    """An exact estimator (full scan) isolates the inclusion-exclusion
    arithmetic from model error."""
    return SamplingEstimator(table, fraction=1.0)


class TestIntersect:
    def test_overlapping_ranges(self, table):
        q1 = Query((Predicate("a", ">=", 2), Predicate("a", "<=", 6)))
        q2 = Query((Predicate("a", ">=", 4), Predicate("a", "<=", 8)))
        merged = intersect_queries(table, [q1, q2])
        assert true_cardinality(table, merged) == true_cardinality(
            table, Query((Predicate("a", ">=", 4), Predicate("a", "<=", 6))))

    def test_contradiction_returns_none(self, table):
        q1 = Query((Predicate("a", "=", 2),))
        q2 = Query((Predicate("a", "=", 5),))
        assert intersect_queries(table, [q1, q2]) is None

    def test_unconstrained_columns_dropped(self, table):
        q = Query((Predicate("a", ">=", 0),))  # matches the full domain
        merged = intersect_queries(table, [q])
        assert len(merged) == 0


class TestInclusionExclusion:
    def test_two_disjuncts_exact(self, table, exact):
        dnf = DNFQuery([
            Query((Predicate("a", "<=", 3),)),
            Query((Predicate("a", ">=", 7),)),
        ])
        truth = true_disjunction_cardinality(table, dnf)
        assert estimate_disjunction(exact, dnf) == pytest.approx(truth,
                                                                 abs=0.5)

    def test_overlapping_disjuncts_exact(self, table, exact):
        dnf = DNFQuery([
            Query((Predicate("a", "<=", 6),)),
            Query((Predicate("a", ">=", 3),)),
        ])
        truth = true_disjunction_cardinality(table, dnf)
        assert truth == table.num_rows  # the union covers everything
        assert estimate_disjunction(exact, dnf) == pytest.approx(truth,
                                                                 abs=0.5)

    def test_cross_column_disjunction(self, table, exact):
        dnf = DNFQuery([
            Query((Predicate("a", "=", 1),)),
            Query((Predicate("b", "=", 2),)),
        ])
        truth = true_disjunction_cardinality(table, dnf)
        assert estimate_disjunction(exact, dnf) == pytest.approx(truth,
                                                                 abs=0.5)

    def test_three_disjuncts_exact(self, table, exact):
        dnf = DNFQuery([
            Query((Predicate("a", "=", 1),)),
            Query((Predicate("a", "=", 2), Predicate("b", "<=", 3))),
            Query((Predicate("b", "=", 5),)),
        ])
        truth = true_disjunction_cardinality(table, dnf)
        assert estimate_disjunction(exact, dnf) == pytest.approx(truth,
                                                                 abs=0.5)

    def test_term_budget_enforced(self, table, exact):
        many = DNFQuery([Query((Predicate("a", "=", i),))
                         for i in range(10)])
        with pytest.raises(ValueError):
            estimate_disjunction(exact, many, max_terms=100)

    def test_with_learned_estimator(self, table):
        """The UAE path answers DNF queries end to end."""
        from repro.core import UAE
        model = UAE(table, hidden=24, num_blocks=1, est_samples=64,
                    dps_samples=4, batch_size=256, seed=0)
        model.fit(epochs=3, mode="data")
        dnf = DNFQuery([
            Query((Predicate("a", "<=", 2),)),
            Query((Predicate("a", ">=", 8),)),
        ])
        truth = true_disjunction_cardinality(table, dnf)
        est = estimate_disjunction(model, dnf)
        assert est == pytest.approx(truth, rel=0.5)

    def test_empty_dnf_rejected(self):
        with pytest.raises(ValueError):
            DNFQuery([])

    def test_str(self):
        dnf = DNFQuery([Query((Predicate("a", "=", 1),))])
        assert "OR" not in str(dnf)
        assert "a = 1" in str(dnf)
