"""Tests for the "worse than the 9" baselines: QuickSel, MHIST, STHoles,
plus the Table 1 capability matrix."""

import importlib

import numpy as np
import pytest

from repro.data import Table
from repro.estimators import (CAPABILITY_MATRIX, IMPLEMENTATIONS,
                              MHISTEstimator, QuickSelEstimator,
                              STHolesEstimator, capability_rows)
from repro.estimators.quicksel import overlap_fraction, query_box
from repro.workload import (WorkloadConfig, Predicate, Query,
                            generate_inworkload, qerrors, true_cardinality)


@pytest.fixture(scope="module")
def table():
    rng = np.random.default_rng(0)
    a = rng.integers(0, 30, 4000)
    b = (a // 2 + rng.integers(0, 5, 4000)) % 20
    return Table.from_raw("t", {"a": a, "b": b})


@pytest.fixture(scope="module")
def workload(table):
    rng = np.random.default_rng(1)
    return generate_inworkload(table, 120, rng,
                               cfg=WorkloadConfig(num_filters_min=1))


class TestQueryBox:
    def test_unconstrained_spans_domain(self, table):
        box = query_box(table, Query(()))
        np.testing.assert_array_equal(box[:, 0], 0)
        assert box[0, 1] == table.domain_sizes[0] - 1

    def test_range_predicate(self, table):
        q = Query((Predicate("a", ">=", 5), Predicate("a", "<=", 10)))
        box = query_box(table, q)
        assert box[0, 0] == 5 and box[0, 1] == 10

    def test_overlap_fraction_identity(self, table):
        box = query_box(table, Query(()))
        assert overlap_fraction(box, box) == pytest.approx(1.0)

    def test_overlap_fraction_disjoint(self):
        a = np.array([[0.0, 4.0]])
        b = np.array([[5.0, 9.0]])
        assert overlap_fraction(a, b) == 0.0


class TestQuickSel:
    def test_fits_and_improves_over_uniform(self, table, workload):
        est = QuickSelEstimator(table).fit(workload)
        errs = qerrors(est.estimate_many(workload.queries),
                       workload.cardinalities)
        # Uniform-over-space baseline for reference.
        vol = np.prod([c.size for c in table.columns])
        uniform_cards = []
        for q in workload.queries:
            qb = query_box(table, q)
            frac = np.prod(qb[:, 1] - qb[:, 0] + 1) / vol
            uniform_cards.append(frac * table.num_rows)
        uniform_errs = qerrors(np.array(uniform_cards),
                               workload.cardinalities)
        assert np.median(errs) < np.median(uniform_errs)

    def test_weights_nonnegative_and_normalised(self, table, workload):
        est = QuickSelEstimator(table).fit(workload)
        assert (est.weights >= 0).all()
        assert est.weights.sum() == pytest.approx(1.0, abs=0.1)

    def test_requires_workload(self, table):
        with pytest.raises(ValueError):
            QuickSelEstimator(table).fit(None)
        with pytest.raises(RuntimeError):
            QuickSelEstimator(table).estimate(Query(()))


class TestMHIST:
    def test_total_count_preserved(self, table):
        est = MHISTEstimator(table, max_buckets=64)
        assert est.counts.sum() == pytest.approx(table.num_rows, rel=1e-6)

    def test_full_query_returns_table_size(self, table):
        est = MHISTEstimator(table, max_buckets=64)
        assert est.estimate(Query(())) == pytest.approx(table.num_rows,
                                                        rel=1e-6)

    def test_more_buckets_no_worse(self, table, workload):
        coarse = MHISTEstimator(table, max_buckets=4)
        fine = MHISTEstimator(table, max_buckets=256)
        sub = workload.queries[:40]
        truths = workload.cardinalities[:40]
        coarse_err = np.median(qerrors(
            np.array([coarse.estimate(q) for q in sub]), truths))
        fine_err = np.median(qerrors(
            np.array([fine.estimate(q) for q in sub]), truths))
        assert fine_err <= coarse_err * 1.25

    def test_buckets_disjoint_and_counted(self, table):
        est = MHISTEstimator(table, max_buckets=32)
        # Buckets should partition rows: estimating each bucket's own box
        # equals its count.
        for bounds, count in zip(est.bounds[:5], est.counts[:5]):
            preds = []
            for j, col in enumerate(table.columns):
                lo, hi = bounds[j]
                preds.append(Predicate(col.name, ">=", col.values[int(lo)]))
                preds.append(Predicate(col.name, "<=", col.values[int(hi)]))
            q = Query(tuple(preds))
            assert est.estimate(q) >= count * 0.99


class TestSTHoles:
    def test_feedback_improves_repeated_queries(self, table, workload):
        before = STHolesEstimator(table)
        sub = workload.queries[:60]
        truths = workload.cardinalities[:60]
        errs_before = qerrors(np.array([before.estimate(q) for q in sub]),
                              truths)
        after = STHolesEstimator(table).fit(workload)
        errs_after = qerrors(np.array([after.estimate(q) for q in sub]),
                             truths)
        assert np.median(errs_after) < np.median(errs_before)

    def test_exact_on_drilled_query(self, table):
        q = Query((Predicate("a", ">=", 5), Predicate("a", "<=", 10)))
        truth = true_cardinality(table, q)
        est = STHolesEstimator(table)
        est.refine(q, truth)
        assert est.estimate(q) == pytest.approx(truth, rel=0.05)

    def test_bucket_budget_respected(self, table, workload):
        est = STHolesEstimator(table, max_buckets=8).fit(workload)
        assert est.root.num_buckets() <= 9

    def test_total_mass_preserved(self, table, workload):
        est = STHolesEstimator(table).fit(workload)
        assert est.estimate(Query(())) == pytest.approx(table.num_rows,
                                                        rel=0.01)

    def test_requires_workload(self, table):
        with pytest.raises(ValueError):
            STHolesEstimator(table).fit(None)


class TestCapabilityMatrix:
    def test_matches_paper_shape(self):
        assert len(CAPABILITY_MATRIX) == 13
        uae = next(c for c in CAPABILITY_MATRIX if "UAE" in c.method)
        # The paper's Table 1: UAE ticks every column.
        assert uae.without_assumptions and uae.learns_from_data \
            and uae.learns_from_queries and uae.incremental_data \
            and uae.incremental_queries and uae.efficient_estimation

    def test_only_uae_ticks_everything(self):
        full = [c for c in CAPABILITY_MATRIX
                if c.without_assumptions and c.learns_from_data
                and c.learns_from_queries and c.incremental_data
                and c.incremental_queries and c.efficient_estimation]
        names = {c.method for c in full}
        assert "UAE (ours)" in names
        assert len(names - {"UAE (ours)",
                            "Query-enhanced KDE (Feedback-KDE)"}) == 0

    def test_every_row_is_implemented(self):
        for method, path in IMPLEMENTATIONS.items():
            module_name, _, attr = path.rpartition(".")
            module = importlib.import_module(module_name)
            assert hasattr(module, attr), f"{method}: {path} missing"

    def test_rows_render(self):
        rows = capability_rows()
        assert len(rows) == len(CAPABILITY_MATRIX)
        from repro.bench import format_table
        text = format_table(rows, list(rows[0]))
        assert "UAE (ours)" in text
