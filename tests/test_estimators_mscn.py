"""Tests for MSCN-base and MSCN+sampling."""

import numpy as np
import pytest

from repro.data import Table
from repro.estimators import MSCNBase, MSCNSampling
from repro.workload import (WorkloadConfig, generate_inworkload,
                            generate_random, qerrors)


@pytest.fixture(scope="module")
def table():
    rng = np.random.default_rng(0)
    a = rng.integers(0, 25, 4000)
    b = (a // 3 + rng.integers(0, 3, 4000)) % 10
    c = rng.integers(0, 6, 4000)
    return Table.from_raw("t", {"a": a, "b": b, "c": c})


@pytest.fixture(scope="module")
def workloads(table):
    rng = np.random.default_rng(1)
    cfg = WorkloadConfig(num_filters_min=1)
    return {
        "train": generate_inworkload(table, 150, rng, cfg=cfg),
        "test": generate_inworkload(table, 40, rng, cfg=cfg),
        "random": generate_random(table, 40, rng, cfg=cfg),
    }


class TestFeaturization:
    def test_shapes(self, table, workloads):
        est = MSCNBase(table, epochs=1)
        feats, mask = est._featurize(workloads["train"].queries[:5])
        max_preds = max(len(q) for q in workloads["train"].queries[:5])
        assert feats.shape == (5, max_preds, est.pred_dim)
        assert mask.shape == (5, max_preds)
        assert mask.sum() == sum(len(q)
                                 for q in workloads["train"].queries[:5])

    def test_column_onehot_set(self, table, workloads):
        est = MSCNBase(table, epochs=1)
        query = workloads["train"].queries[0]
        feats, _ = est._featurize([query])
        first_pred_col = table.column_index(query.predicates[0].column)
        assert feats[0, 0, first_pred_col] == 1.0


class TestTraining:
    def test_learns_training_distribution(self, table, workloads):
        est = MSCNBase(table, epochs=40, seed=0).fit(workloads["train"])
        errs = qerrors(est.estimate_many(workloads["test"].queries),
                       workloads["test"].cardinalities)
        assert np.median(errs) < 6.0

    def test_requires_workload(self, table):
        with pytest.raises(ValueError):
            MSCNBase(table).fit(None)

    def test_estimates_clipped_to_table(self, table, workloads):
        est = MSCNBase(table, epochs=2, seed=0).fit(workloads["train"])
        cards = est.estimate_many(workloads["test"].queries)
        assert (cards >= 0).all()
        assert (cards <= table.num_rows).all()

    def test_sampling_variant_beats_base_on_shift(self, table, workloads):
        """The paper's finding 7: sample features help on random queries."""
        base = MSCNBase(table, epochs=40, seed=0).fit(workloads["train"])
        plus = MSCNSampling(table, epochs=40, seed=0).fit(workloads["train"])
        rand = workloads["random"]
        base_err = np.median(qerrors(base.estimate_many(rand.queries),
                                     rand.cardinalities))
        plus_err = np.median(qerrors(plus.estimate_many(rand.queries),
                                     rand.cardinalities))
        assert plus_err <= base_err * 1.2

    def test_bitmap_features_shape(self, table, workloads):
        est = MSCNSampling(table, epochs=1, bitmap_size=32)
        extra = est._extra_features(workloads["train"].queries[:3])
        assert extra.shape == (3, 34)
        # Fraction feature in [0, 1].
        assert (extra[:, -2] >= 0).all() and (extra[:, -2] <= 1).all()

    def test_sampling_size_includes_sample(self, table):
        base = MSCNBase(table, epochs=1)
        plus = MSCNSampling(table, epochs=1)
        assert plus.size_bytes() > base.size_bytes()
