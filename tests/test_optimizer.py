"""Tests for the planner, cost model, and Figure 6 study harness."""

import numpy as np
import pytest

from repro.data.schema import make_imdb_large
from repro.joins import JoinQuery
from repro.joins.workload import generate_job_m_focused
from repro.optimizer import (EstimatorCardAdapter, Plan, PostgresHeuristic,
                             TrueCardOracle, best_plan, connected, join_cost,
                             plan_cost, plan_for_query, plan_intermediates,
                             restrict_query, run_optimizer_study, scan_cost)
from repro.workload import Predicate


class TestCostModel:
    def test_leaf_cost_is_scan(self):
        plan = Plan(frozenset(["a"]))
        assert plan_cost(plan, lambda s: 42.0) == 42.0

    def test_join_cost_formula(self):
        assert join_cost(10, 100, 50) == 2 * 10 + 100 + 50

    def test_join_cost_symmetric_build_choice(self):
        assert join_cost(100, 10, 50) == join_cost(10, 100, 50)

    def test_plan_cost_hand_computed(self):
        cards = {frozenset(["a"]): 10.0, frozenset(["b"]): 20.0,
                 frozenset(["a", "b"]): 5.0}
        plan = Plan(frozenset(["a", "b"]),
                    Plan(frozenset(["a"])), Plan(frozenset(["b"])))
        expected = 10 + 20 + (2 * 10 + 20 + 5)
        assert plan_cost(plan, lambda s: cards[s]) == expected

    def test_plan_intermediates(self):
        plan = Plan(frozenset(["a", "b"]),
                    Plan(frozenset(["a"])), Plan(frozenset(["b"])))
        subsets = plan_intermediates(plan)
        assert frozenset(["a", "b"]) in subsets
        assert len(subsets) == 3


class TestPlanner:
    def test_connectivity_rule(self):
        assert connected(frozenset(["title"]), "title")
        assert connected(frozenset(["x"]), "title")
        assert connected(frozenset(["title", "x"]), "title")
        assert not connected(frozenset(["x", "y"]), "title")

    def test_two_table_plan(self):
        cards = {frozenset(["title"]): 100.0, frozenset(["x"]): 10.0,
                 frozenset(["title", "x"]): 50.0}
        plan = best_plan(["title", "x"], "title", lambda s: cards[s])
        assert plan.tables == frozenset(["title", "x"])
        assert not plan.is_leaf

    def test_prefers_selective_join_first(self):
        """With one tiny and one huge child, join the tiny one first."""
        cards = {
            frozenset(["title"]): 1000.0,
            frozenset(["small"]): 1.0,
            frozenset(["big"]): 10_000.0,
            frozenset(["title", "small"]): 5.0,
            frozenset(["title", "big"]): 100_000.0,
            frozenset(["title", "small", "big"]): 50.0,
        }
        plan = best_plan(["title", "small", "big"], "title",
                         lambda s: cards[s])
        # The first join must be title ⋈ small.
        first_join = plan.left if not plan.left.is_leaf else plan.right
        if first_join.is_leaf:  # both leaves: root is the first join
            first_join = plan
        assert frozenset(["title", "small"]) in plan_intermediates(plan)
        assert frozenset(["title", "big"]) not in plan_intermediates(plan)

    def test_optimal_beats_fixed_order(self):
        """DP plan cost <= any left-deep order under the same cards."""
        rng = np.random.default_rng(0)
        tables = ["title", "a", "b", "c"]
        cards = {}
        for size in range(1, 5):
            from itertools import combinations
            for combo in combinations(tables, size):
                s = frozenset(combo)
                if connected(s, "title"):
                    cards[s] = float(rng.integers(1, 10_000))

        def card(s):
            return cards[s]

        plan = best_plan(tables, "title", card)
        best_cost = plan_cost(plan, card)
        # Compare against the worst left-deep order.
        for order in ([["a", "b", "c"]], [["c", "b", "a"]]):
            current = Plan(frozenset(["title"]))
            for t in order[0]:
                joined = current.tables | {t}
                current = Plan(joined, current, Plan(frozenset([t])))
            assert best_cost <= plan_cost(current, card) + 1e-9

    def test_disconnected_raises(self):
        with pytest.raises(RuntimeError):
            best_plan(["x", "y"], "title", lambda s: 1.0)


class TestHeuristicAndOracle:
    @pytest.fixture(scope="class")
    def schema(self):
        return make_imdb_large(n_titles=400, seed=1)

    def test_postgres_base_cardinality(self, schema):
        pg = PostgresHeuristic(schema)
        card = pg.base_cardinality("title", [])
        assert card == schema.tables["title"].num_rows

    def test_postgres_join_estimate_positive(self, schema):
        pg = PostgresHeuristic(schema)
        q = JoinQuery(("title", "movie_companies"),
                      (Predicate("title.kind_id", "=", 1),))
        card = pg.cardinality(q, frozenset(q.tables))
        assert card > 0

    def test_oracle_matches_truth(self, schema):
        from repro.joins.workload import true_join_cardinality
        oracle = TrueCardOracle(schema)
        q = JoinQuery(("title", "movie_companies"), ())
        fn = oracle.card_fn(q)
        assert fn(frozenset(q.tables)) == pytest.approx(
            max(true_join_cardinality(schema, q), 1.0))

    def test_restrict_query_drops_foreign_predicates(self):
        q = JoinQuery(("title", "movie_info"),
                      (Predicate("title.kind_id", "=", 1),
                       Predicate("movie_info.info_type_id", "=", 2)))
        sub = restrict_query(q, frozenset(["title"]))
        assert len(sub.predicates) == 1
        assert sub.predicates[0].column == "title.kind_id"

    def test_study_oracle_never_slower(self, schema):
        """Planning with true cards can never lose to the heuristic."""
        rng = np.random.default_rng(2)
        wl = generate_job_m_focused(schema, 6, rng)
        results = run_optimizer_study(schema, wl.queries, [])
        oracle_result = results[0]
        assert oracle_result.estimator == "TrueCard"
        assert (oracle_result.speedups >= 1.0 - 1e-9).all()

    def test_adapter_caches(self, schema):
        calls = []

        class Fake:
            name = "fake"

            def estimate(self, q):
                calls.append(q)
                return 10.0

        adapter = EstimatorCardAdapter(Fake())
        q = JoinQuery(("title", "movie_info"), ())
        fn = adapter.card_fn(q)
        fn(frozenset(["title"]))
        fn(frozenset(["title"]))
        assert len(calls) == 1
