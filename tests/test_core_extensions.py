"""Tests for confidence intervals, early stopping, LR decay, and extended
workload operators."""

import numpy as np
import pytest

from repro.core import UAE
from repro.data import make_toy
from repro.workload import (Predicate, Query, WorkloadConfig,
                            generate_inworkload, true_cardinality)

FAST = dict(hidden=24, num_blocks=1, est_samples=64, dps_samples=4,
            batch_size=256, query_batch_size=8, seed=0)


@pytest.fixture(scope="module")
def trained():
    table = make_toy(rows=1500, seed=4, num_cols=4, max_domain=9)
    model = UAE(table, **FAST)
    model.fit(epochs=4, mode="data")
    return table, model


class TestConfidenceIntervals:
    def test_interval_contains_point(self, trained):
        table, model = trained
        rng = np.random.default_rng(0)
        wl = generate_inworkload(table, 5, rng)
        for query in wl.queries:
            est, low, high = model.estimate_interval(query)
            assert low <= est <= high
            assert 0 <= low and high <= table.num_rows

    def test_more_samples_tighter_error(self, trained):
        table, model = trained
        rng = np.random.default_rng(1)
        query = generate_inworkload(table, 1, rng).queries[0]
        constraints = model.fact.expand_masks(query.masks(table))

        from repro.core import ProgressiveSampler
        few = ProgressiveSampler(model.model, num_samples=16, seed=0)
        many = ProgressiveSampler(model.model, num_samples=1024, seed=0)
        _, err_few = few.estimate_with_error(constraints)
        _, err_many = many.estimate_with_error(constraints)
        assert err_many <= err_few * 1.1

    def test_point_query_zero_variance(self, trained):
        """Fully-specified equality queries need a single forward chain;
        the per-sample densities coincide so the error collapses."""
        table, model = trained
        anchor = table.codes[0]
        preds = tuple(Predicate(col.name, "=", col.values[anchor[j]])
                      for j, col in enumerate(table.columns))
        query = Query(preds)
        est, low, high = model.estimate_interval(query)
        assert high - low < max(est, 1.0) * 2  # tight-ish interval


class TestEarlyStopping:
    def test_stops_before_max_epochs(self):
        table = make_toy(rows=1200, seed=5, num_cols=3, max_domain=8)
        rng = np.random.default_rng(2)
        train = generate_inworkload(table, 40, rng)
        val = generate_inworkload(table, 20, rng)
        model = UAE(table, **FAST)
        model.fit(epochs=50, mode="data", validation=val, patience=2)
        assert len(model.history) < 50
        assert "val_qerror" in model.history[-1]

    def test_validation_metric_recorded_without_patience(self):
        table = make_toy(rows=800, seed=6, num_cols=3)
        rng = np.random.default_rng(3)
        val = generate_inworkload(table, 10, rng)
        model = UAE(table, **FAST)
        model.fit(epochs=2, mode="data", validation=val)
        assert all("val_qerror" in h for h in model.history)

    def test_lr_decay_applied_and_restored(self):
        table = make_toy(rows=600, seed=7, num_cols=3)
        model = UAE(table, **FAST, lr_decay=0.5)
        base = model.optimizer.lr
        model.fit(epochs=3, mode="data")
        assert model.optimizer.lr == base  # restored after fit


class TestExtendedOperators:
    def test_generator_emits_in_and_not_equal(self):
        table = make_toy(rows=1500, seed=8, num_cols=5, max_domain=12)
        rng = np.random.default_rng(4)
        cfg = WorkloadConfig(num_filters_min=3,
                             operators=("IN", "!="), in_list_size=3)
        wl = generate_inworkload(table, 20, rng, cfg=cfg)
        ops = {p.op for q in wl.queries for p in q.predicates}
        assert "IN" in ops
        assert "!=" in ops
        assert (wl.cardinalities > 0).all()

    def test_uae_answers_in_and_not_equal(self, trained):
        table, model = trained
        col = table.columns[1]
        values = tuple(int(v) for v in col.values[:2])
        query = Query((Predicate(col.name, "IN", values),
                       Predicate(table.columns[2].name, "!=",
                                 int(table.columns[2].values[0]))))
        est = model.estimate(query)
        truth = true_cardinality(table, query)
        assert 0 <= est <= table.num_rows
        # Loose agreement — small model, but the mask plumbing must work.
        assert max(est, 1) / max(truth, 1) < 30
        assert max(truth, 1) / max(est, 1) < 30
