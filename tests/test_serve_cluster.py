"""Tests for the scale-out serving tier (repro.serve.cluster/.snapshot):
snapshot codec round-trips, seqlock tear protection, and the
multi-process cluster itself (parity, zero-copy publish, crash
containment, load shedding).

The codec/layout tests run in tier-1; everything spawning worker
processes is marked ``multiproc`` (deselected from tier-1, run by the
CI scale-out step) and skips cleanly on platforms without
``multiprocessing.shared_memory``.
"""

import threading
import time

import numpy as np
import pytest

from repro.infer.compiled import (STATE_ALIGN, pack_state, state_layout,
                                  unpack_state)
from repro.serve import (HAVE_SHARED_MEMORY, ClusterEstimateService,
                         LoadShedError, SharedSnapshot, SnapshotCodec,
                         SnapshotTornError, UnknownNamespaceError)
from repro.serve.placement import WorkerUnavailableError

needs_shm = pytest.mark.skipif(
    not HAVE_SHARED_MEMORY,
    reason="multiprocessing.shared_memory unavailable on this platform")


def mixed_state() -> dict:
    """A state dict covering every dtype/shape class the codec must
    carry: f32/f64 matrices, integer vectors, bools, scalars, and a
    zero-size array."""
    rng = np.random.default_rng(5)
    return {
        "blocks.0.fc1.weight": rng.normal(size=(7, 5)).astype(np.float32),
        "blocks.0.fc1.bias": rng.normal(size=5).astype(np.float32),
        "out.weight": rng.normal(size=(3, 11)).astype(np.float64),
        "codes": rng.integers(0, 100, size=9).astype(np.int64),
        "mask": (rng.random(size=(4, 4)) > 0.5),
        "scalar": np.float32(3.25).reshape(()),
        "empty": np.zeros((0, 3), dtype=np.float32),
    }


def assert_states_equal(a: dict, b: dict) -> None:
    assert sorted(a) == sorted(b)
    for name in a:
        assert a[name].dtype == b[name].dtype, name
        assert a[name].shape == b[name].shape, name
        assert np.array_equal(a[name], b[name]), name


# ----------------------------------------------------------------------
class TestStateLayout:
    def test_offsets_aligned_and_disjoint(self):
        entries, total = state_layout(mixed_state())
        spans = []
        for entry in entries:
            assert entry["offset"] % STATE_ALIGN == 0
            spans.append((entry["offset"], entry["offset"] + entry["nbytes"]))
        spans.sort()
        for (_, hi), (lo, _) in zip(spans, spans[1:]):
            assert hi <= lo
        assert total >= max(hi for _, hi in spans)

    def test_layout_is_pure_function_of_architecture(self):
        state = mixed_state()
        other = {k: np.zeros_like(v) for k, v in state.items()}
        assert state_layout(state) == state_layout(other)

    def test_pack_unpack_round_trip_bit_exact(self):
        state = mixed_state()
        entries, total = state_layout(state)
        buf = bytearray(total)
        pack_state(state, buf, entries)
        assert_states_equal(unpack_state(buf, entries), state)

    def test_pack_rejects_mismatched_array(self):
        state = mixed_state()
        entries, total = state_layout(state)
        bad = dict(state, codes=state["codes"].astype(np.int32))
        with pytest.raises(ValueError):
            pack_state(bad, bytearray(total), entries)

    def test_model_state_dict_round_trips(self, tiny_uae):
        state = tiny_uae.model.state_dict()
        entries, total = state_layout(state)
        buf = bytearray(total)
        pack_state(state, buf, entries)
        assert_states_equal(unpack_state(buf, entries), state)


# ----------------------------------------------------------------------
class TestSnapshotCodec:
    def test_encode_decode_round_trip(self):
        state = mixed_state()
        codec = SnapshotCodec.for_state(state)
        buf = bytearray(codec.total_bytes)
        codec.init_buffer(buf)
        codec.encode(buf, state, version=7)
        version, decoded = codec.decode(buf)
        assert version == 7
        assert_states_equal(decoded, state)

    def test_codec_rebuilds_from_buffer_header(self):
        state = mixed_state()
        codec = SnapshotCodec.for_state(state)
        buf = bytearray(codec.total_bytes)
        codec.init_buffer(buf)
        codec.encode(buf, state, version=2)
        reread = SnapshotCodec.from_buffer(buf)
        assert reread.entries == codec.entries
        version, decoded = reread.decode(buf)
        assert version == 2
        assert_states_equal(decoded, state)

    def test_unpublished_buffer_times_out_torn(self):
        codec = SnapshotCodec.for_state(mixed_state())
        buf = bytearray(codec.total_bytes)
        codec.init_buffer(buf)          # seq starts odd: nothing published
        with pytest.raises(SnapshotTornError):
            codec.decode(buf, timeout=0.05)

    def test_mid_publish_never_observed_torn(self):
        """A reader racing republishes sees only complete versions: the
        decoded state must always be the exact payload matching its
        version, never a mix."""
        base = {"w": np.zeros((64, 64), dtype=np.float32)}
        states = {v: {"w": np.full((64, 64), float(v), dtype=np.float32)}
                  for v in (1, 2)}
        codec = SnapshotCodec.for_state(base)
        buf = bytearray(codec.total_bytes)
        codec.init_buffer(buf)
        codec.encode(buf, states[1], version=1)
        stop = threading.Event()

        def writer():
            v = 2
            while not stop.is_set():
                codec.encode(buf, states[1 + v % 2], version=1 + v % 2)
                v += 1
                time.sleep(0.0002)   # realistic cadence: republishes are
                                     # not a back-to-back hot loop

        thread = threading.Thread(target=writer, daemon=True)
        thread.start()
        try:
            for _ in range(300):
                version, decoded = codec.decode(buf, timeout=5.0)
                assert version in states
                assert np.array_equal(decoded["w"], states[version]["w"])
        finally:
            stop.set()
            thread.join(timeout=5.0)


# ----------------------------------------------------------------------
@needs_shm
class TestSharedSnapshot:
    def test_create_attach_read_bit_exact(self):
        state = mixed_state()
        owner = SharedSnapshot.create(state, version=3)
        try:
            reader = SharedSnapshot.attach(owner.name)
            version, decoded = reader.read()
            assert version == 3
            assert_states_equal(decoded, state)
            reader.close()
        finally:
            owner.close()
            owner.unlink()

    def test_publish_in_place_updates_attached_reader(self):
        state = mixed_state()
        owner = SharedSnapshot.create(state, version=1)
        try:
            reader = SharedSnapshot.attach(owner.name)
            new = {k: v + 1 if v.dtype != bool else ~v
                   for k, v in state.items()}
            owner.publish(new, version=2)
            version, decoded = reader.read()
            assert version == 2
            assert_states_equal(decoded, new)
            reader.close()
        finally:
            owner.close()
            owner.unlink()

    def test_only_owner_unlinks(self):
        owner = SharedSnapshot.create(mixed_state(), version=1)
        reader = SharedSnapshot.attach(owner.name)
        reader.close()
        reader.unlink()                 # no-op: reader is not the owner
        again = SharedSnapshot.attach(owner.name)   # still there
        again.close()
        owner.close()
        owner.unlink()


# ----------------------------------------------------------------------
# Multi-process cluster end-to-end (deselected from tier-1).
# ----------------------------------------------------------------------
@needs_shm
@pytest.mark.multiproc
class TestCluster:
    @pytest.fixture(scope="class")
    def parity_setup(self, tiny_uae, second_uae, tiny_workload,
                     second_workload):
        """The single-process reference answers for a seeded mixed
        stream (computed once; the cluster must match bit-for-bit)."""
        from repro.serve import RoutedEstimateService
        mixed = [q for pair in zip(tiny_workload.queries,
                                   second_workload.queries) for q in pair]
        front = RoutedEstimateService(seed=3)
        front.add_table(tiny_uae)
        front.add_table(second_uae)
        with front:
            expected = front.estimate_batch(mixed, seed=4321,
                                            use_cache=False)
        return mixed, expected

    def make_cluster(self, tiny_uae, second_uae, **kwargs) -> \
            ClusterEstimateService:
        kwargs.setdefault("workers", 2)
        kwargs.setdefault("seed", 3)
        cluster = ClusterEstimateService(**kwargs)
        cluster.add_table(tiny_uae)
        cluster.add_table(second_uae)
        return cluster

    def test_parity_with_single_process_front_door(
            self, tiny_uae, second_uae, parity_setup):
        mixed, expected = parity_setup
        with self.make_cluster(tiny_uae, second_uae) as cluster:
            got = cluster.estimate_batch(mixed, seed=4321)
            assert np.array_equal(got, expected)
            # Same stream again: the seeded path is deterministic.
            assert np.array_equal(cluster.estimate_batch(mixed, seed=4321),
                                  expected)
            assert cluster.stats()["failures"] == 0

    def test_publish_rebuilds_worker_from_shared_buffer(
            self, tiny_uae, second_uae, tiny_workload):
        probes = list(tiny_workload.queries[:6])
        refined = tiny_uae.clone()
        for p in refined.model.parameters():
            p.data += 0.05
            p.bump_version()
        with self.make_cluster(tiny_uae, second_uae) as cluster:
            ns = tiny_uae.table.name
            before = cluster.estimate_batch(probes, seed=99)
            info = cluster.publish(ns, refined)
            assert info["version"] == 2 and cluster.version(ns) == 2
            after = cluster.estimate_batch(probes, seed=99)
            assert not np.array_equal(before, after)
            # Bit-parity with a direct engine reference on the new
            # weights: the version-counter rebuild crossed the process
            # boundary intact.
            constraints = [refined.fact.expand_masks(
                q.masks(refined.table)) for q in probes]
            sels = refined.sampler.scheduler.estimate_many(
                constraints, refined.sampler.num_samples,
                np.random.default_rng(99))
            ref = np.clip(sels, 0.0, 1.0) * refined.table.num_rows
            assert np.array_equal(after, ref)

    def test_crashed_worker_typed_gap_then_recover(
            self, tiny_uae, second_uae, parity_setup):
        mixed, expected = parity_setup
        cluster = self.make_cluster(tiny_uae, second_uae)
        with cluster:
            ns = tiny_uae.table.name
            victim = cluster.assignment()[ns]
            cluster._handles[victim].process.terminate()
            cluster._handles[victim].process.join(timeout=10.0)
            with pytest.raises(WorkerUnavailableError):
                cluster.estimate_batch(mixed[:4], seed=1)
            healed = cluster.recover()
            assert victim in healed["removed"]
            assert ns in healed["moved"]
            # Post-recovery answers are bit-identical: the model state
            # lived in the shared segment, not the dead process.
            assert np.array_equal(cluster.estimate_batch(mixed, seed=4321),
                                  expected)
            assert cluster.stats()["unavailable"] > 0
            assert cluster.stats()["failures"] == 0

    def test_overload_sheds_typed_never_fails(
            self, tiny_uae, second_uae, tiny_workload):
        burst = (list(tiny_workload.queries) * 4)[:48]
        with self.make_cluster(tiny_uae, second_uae,
                               queue_depth=1) as cluster:
            cluster.estimate_batch(burst[:4])   # warm the latency EWMA
            requests = [cluster.submit(q, deadline_ms=1.0) for q in burst]
            shed = answered = 0
            for request in requests:
                try:
                    request.result(timeout=60.0)
                    answered += 1
                except LoadShedError:
                    shed += 1
            assert shed > 0
            assert shed + answered == len(burst)
            assert cluster.stats()["failures"] == 0

    def test_join_query_rejected_typed(self, tiny_uae, second_uae):
        from repro.joins import JoinQuery
        from repro.workload import Predicate
        q = JoinQuery(("title", "movie_info"),
                      (Predicate("title.kind_id", "=", 0),))
        with self.make_cluster(tiny_uae, second_uae) as cluster:
            with pytest.raises(UnknownNamespaceError):
                cluster.resolve(q)

    def test_add_table_after_start_rejected(self, tiny_uae, second_uae):
        with self.make_cluster(tiny_uae, second_uae) as cluster:
            with pytest.raises(RuntimeError):
                cluster.add_table(second_uae, namespace="late")
