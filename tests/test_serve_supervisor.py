"""Tests for cluster worker supervision (repro.serve.supervisor).

The state machine (backoff, circuit breaker, bookkeeping) is unit
tested in tier-1 against a scripted fake cluster.  The end-to-end
self-healing scenarios — a real SIGKILLed worker restarted and serving
bit-identical answers, a crash-looping worker evicted and rebalanced —
fork worker processes and are driven by the deterministic chaos
harness; they are marked ``chaos`` (deselected from tier-1, run by the
CI chaos step) and skip without ``multiprocessing.shared_memory``.
"""

import time

import numpy as np
import pytest

from repro.obs import MetricsRegistry
from repro.serve import (HAVE_SHARED_MEMORY, ChaosPlan,
                         ClusterEstimateService, LoadShedError,
                         WorkerSupervisor)
from repro.serve.placement import WorkerUnavailableError

needs_shm = pytest.mark.skipif(
    not HAVE_SHARED_MEMORY,
    reason="multiprocessing.shared_memory unavailable on this platform")


# ----------------------------------------------------------------------
# Tier-1: state machine against a scripted fake cluster (no processes).
# ----------------------------------------------------------------------
class EventRecorder:
    def __init__(self):
        self.events = []

    def emit(self, event, **fields):
        record = {"event": event, **fields}
        self.events.append(record)
        return record

    def of(self, event):
        return [e for e in self.events if e["event"] == event]


class FakeCluster:
    """Scripted stand-in: ``dead`` is the rolling dead-worker report;
    restart/evict calls are recorded, and restarts can be made to
    fail."""

    def __init__(self, restart_ok=True):
        self.metrics = MetricsRegistry()
        self.events = EventRecorder()
        self.running = True
        self.dead = []
        self.restart_ok = restart_ok
        self.restarted = []
        self.failed = []
        self.recovers = 0

    def dead_workers(self):
        return list(self.dead)

    def restart_worker(self, worker_id):
        if not self.restart_ok:
            raise RuntimeError("fork failed")
        self.restarted.append(worker_id)
        self.dead.remove(worker_id)
        return {"restarted": True, "worker": worker_id, "incarnation": 1,
                "adopted": ["toy"]}

    def fail_worker(self, worker_id):
        self.failed.append(worker_id)
        if worker_id in self.dead:
            self.dead.remove(worker_id)

    def recover(self):
        self.recovers += 1
        return {"removed": list(self.failed), "moved": ["toy"]}


def make_supervisor(cluster, **kw):
    kw.setdefault("poll_interval", 0.01)
    kw.setdefault("backoff_base_s", 0.001)
    kw.setdefault("backoff_max_s", 0.004)
    kw.setdefault("jitter", 0.0)
    kw.setdefault("seed", 0)
    return WorkerSupervisor(cluster, metrics=cluster.metrics,
                            events=cluster.events, **kw)


class TestSupervisorStateMachine:
    def test_restart_records_and_counts(self):
        cluster = FakeCluster()
        supervisor = make_supervisor(cluster, max_restarts=3)
        cluster.dead = ["w0"]
        supervisor.check()
        assert cluster.restarted == ["w0"]
        (record,) = supervisor.restarts
        assert record["worker"] == "w0" and record["attempt"] == 1
        assert record["incarnation"] == 1
        assert supervisor.stats()["evictions"] == []

    def test_backoff_doubles_then_caps(self):
        cluster = FakeCluster()
        supervisor = make_supervisor(cluster, max_restarts=8)
        for _ in range(4):
            cluster.dead = ["w0"]
            supervisor.check()
        delays = [e["delay_s"] for e in cluster.events.of("worker_backoff")]
        assert delays == pytest.approx([0.001, 0.002, 0.004, 0.004])

    def test_jitter_is_seeded(self):
        def delays(seed):
            cluster = FakeCluster()
            supervisor = make_supervisor(cluster, max_restarts=8,
                                         jitter=0.5, seed=seed)
            for _ in range(3):
                cluster.dead = ["w0"]
                supervisor.check()
            return [e["delay_s"]
                    for e in cluster.events.of("worker_backoff")]

        assert delays(3) == delays(3)
        assert delays(3) != delays(4)

    def test_circuit_breaker_evicts_after_max_restarts(self):
        cluster = FakeCluster()
        supervisor = make_supervisor(cluster, max_restarts=2)
        for _ in range(3):
            cluster.dead = ["w0"]
            supervisor.check()
        assert cluster.restarted == ["w0", "w0"]       # 2 restarts, then...
        assert cluster.failed == ["w0"]                # ...evicted
        assert cluster.recovers == 1
        (evict,) = supervisor.evictions
        assert evict["worker"] == "w0" and evict["crashes"] == 3
        assert evict["moved"] == ["toy"]
        # An evicted worker is never touched again.
        cluster.dead = ["w0"]
        supervisor.check()
        assert cluster.restarted == ["w0", "w0"]
        assert supervisor.stats()["evicted"] == ["w0"]

    def test_failed_restart_counts_as_another_crash(self):
        cluster = FakeCluster(restart_ok=False)
        supervisor = make_supervisor(cluster, max_restarts=1)
        cluster.dead = ["w0"]
        supervisor.check()                             # restart raises
        assert supervisor.restarts == []
        assert cluster.events.of("worker_restart_failed")
        supervisor.check()                             # attempt 2 > max
        assert cluster.failed == ["w0"]

    def test_crash_window_expiry_resets_attempts(self):
        cluster = FakeCluster()
        supervisor = make_supervisor(cluster, max_restarts=8,
                                     crash_window_s=0.01)
        cluster.dead = ["w0"]
        supervisor.check()
        time.sleep(0.03)                               # window expires
        cluster.dead = ["w0"]
        supervisor.check()
        delays = [e["delay_s"] for e in cluster.events.of("worker_backoff")]
        assert delays == pytest.approx([0.001, 0.001])  # attempt reset to 1

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            make_supervisor(FakeCluster(), poll_interval=0.0)
        with pytest.raises(ValueError):
            make_supervisor(FakeCluster(), max_restarts=-1)


# ----------------------------------------------------------------------
# End-to-end: real forked workers under the chaos harness.
# ----------------------------------------------------------------------
@needs_shm
@pytest.mark.chaos
class TestSupervisedCluster:
    def wave(self, cluster, queries, seed):
        """One seeded batch, retrying through the healing window (typed
        gaps only — anything untyped is a real failure)."""
        deadline = time.monotonic() + 60.0
        while True:
            try:
                return cluster.estimate_batch(queries, seed=seed)
            except (WorkerUnavailableError, LoadShedError):
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.05)

    def make_cluster(self, tiny_uae, second_uae, plan):
        cluster = ClusterEstimateService(workers=2, seed=3, chaos=plan)
        cluster.add_table(tiny_uae)
        cluster.add_table(second_uae)
        return cluster

    def test_killed_worker_restarts_bit_identical(
            self, tiny_uae, second_uae, tiny_workload, second_workload):
        plan = ChaosPlan(seed=29)
        # Crash-once: the victim's 2nd batch dies in incarnation 0 only
        # (each forked worker counts its own occurrences from zero).
        plan.inject("worker.batch", "kill", at=2,
                    where={"worker": "w0", "incarnation": 0})
        mixed = [q for pair in zip(tiny_workload.queries[:8],
                                   second_workload.queries[:8])
                 for q in pair]
        with self.make_cluster(tiny_uae, second_uae, plan) as cluster:
            supervisor = cluster.supervise(poll_interval=0.02,
                                           backoff_base_s=0.02,
                                           backoff_max_s=0.5,
                                           max_restarts=3, seed=7)
            expected = self.wave(cluster, mixed, seed=777)  # occurrence 1
            self.wave(cluster, mixed, seed=777)             # occurrence 2:
            deadline = time.monotonic() + 60.0              # kill + heal
            while not supervisor.restarts \
                    and time.monotonic() < deadline:
                time.sleep(0.02)
            assert supervisor.restarts, "supervisor never restarted w0"
            assert supervisor.restarts[0]["worker"] == "w0"
            # Restarted worker re-attached to the retained shared
            # segments: answers are bit-identical to pre-crash.
            post = self.wave(cluster, mixed, seed=777)
            assert np.array_equal(post, expected)
            stats = cluster.stats()
            assert stats["workers"]["w0"]["incarnation"] >= 1
            assert stats["failures"] == 0
            assert stats["supervisor"]["evictions"] == []

    def test_crash_loop_evicted_and_rebalanced(
            self, tiny_uae, second_uae, tiny_workload, second_workload):
        plan = ChaosPlan(seed=31)
        # No incarnation guard: every incarnation of w0 dies on its
        # first batch — restarting cannot heal this.
        plan.inject("worker.batch", "kill", at=1,
                    where={"worker": "w0"}, count=None)
        mixed = [q for pair in zip(tiny_workload.queries[:6],
                                   second_workload.queries[:6])
                 for q in pair]
        with self.make_cluster(tiny_uae, second_uae, plan) as cluster:
            supervisor = cluster.supervise(poll_interval=0.02,
                                           backoff_base_s=0.02,
                                           backoff_max_s=0.2,
                                           max_restarts=2,
                                           crash_window_s=30.0, seed=7)
            deadline = time.monotonic() + 90.0
            while not supervisor.evictions \
                    and time.monotonic() < deadline:
                try:
                    cluster.estimate_batch(mixed, seed=55)
                except (WorkerUnavailableError, LoadShedError):
                    time.sleep(0.05)
            (evict,) = supervisor.evictions
            assert evict["worker"] == "w0"
            assert evict["crashes"] == 3               # 2 restarts + 1
            # Namespaces rebalanced onto the survivor: full coverage,
            # deterministic answers, no untyped failures.
            assignment = cluster.assignment()
            assert set(assignment.values()) == {"w1"}
            a = self.wave(cluster, mixed, seed=55)
            b = self.wave(cluster, mixed, seed=55)
            assert np.array_equal(a, b)
            assert cluster.stats()["failures"] == 0
