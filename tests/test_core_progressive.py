"""Tests for inference-time progressive sampling.

The decisive check: on a tiny domain the model's joint distribution can be
enumerated exactly, so the progressive-sampling estimate must converge to
the exact region mass (it is unbiased — paper Section 4.2).
"""

import numpy as np
import pytest

from repro.core.progressive import ProgressiveSampler, UniformSampler
from repro.nn import ResMADE


def exact_region_mass(model: ResMADE, masks: list) -> float:
    """Brute-force sum of the model's joint over a masked region."""
    domains = model.domain_sizes
    grids = np.meshgrid(*[np.arange(d) for d in domains], indexing="ij")
    tuples = np.stack([g.reshape(-1) for g in grids], axis=1)
    nll = model.nll_np(tuples)
    probs = np.exp(-nll)
    keep = np.ones(len(tuples), dtype=bool)
    for col, mask in enumerate(masks):
        if mask is not None:
            keep &= mask[tuples[:, col]]
    return float(probs[keep].sum())


@pytest.fixture(scope="module")
def small_model():
    rng = np.random.default_rng(0)
    model = ResMADE([4, 3, 5], hidden=24, num_blocks=1, rng=rng)
    # Perturb weights so the joint is non-uniform but well-behaved.
    for p in model.parameters():
        p.data += rng.standard_normal(p.data.shape).astype(np.float32) * 0.3
    return model


def fixed(mask):
    return ("fixed", np.asarray(mask, dtype=bool))


class TestUnbiasedness:
    def test_converges_to_exact_mass(self, small_model):
        masks = [np.array([True, True, False, False]),
                 np.array([True, False, True]),
                 np.array([False, True, True, True, False])]
        exact = exact_region_mass(small_model, masks)
        sampler = ProgressiveSampler(small_model, num_samples=4000, seed=1)
        estimate = sampler.estimate([fixed(m) for m in masks])
        assert estimate == pytest.approx(exact, rel=0.1)

    def test_full_region_is_one(self, small_model):
        masks = [np.ones(4, bool), np.ones(3, bool), np.ones(5, bool)]
        sampler = ProgressiveSampler(small_model, num_samples=500, seed=2)
        estimate = sampler.estimate([fixed(m) for m in masks])
        assert estimate == pytest.approx(1.0, abs=1e-5)

    def test_empty_region_is_zero(self, small_model):
        masks = [np.zeros(4, bool), None, None]
        sampler = ProgressiveSampler(small_model, num_samples=100, seed=3)
        assert sampler.estimate([fixed(masks[0]), None, None]) == 0.0

    def test_wildcard_columns_marginalised(self, small_model):
        """Constraining only column 0 must match the exact marginal mass."""
        mask0 = np.array([True, False, False, True])
        exact = exact_region_mass(small_model, [mask0, None, None])
        sampler = ProgressiveSampler(small_model, num_samples=2000, seed=4)
        estimate = sampler.estimate([fixed(mask0), None, None])
        # Only needs one forward pass (first queried col is last queried);
        # the wildcard marginalisation is learned, so allow looser tolerance.
        assert estimate == pytest.approx(exact, rel=0.35, abs=0.05)


class TestBatching:
    def test_batch_matches_individual(self, small_model):
        rng = np.random.default_rng(5)
        queries = []
        for _ in range(4):
            masks = [rng.random(4) < 0.7, rng.random(3) < 0.7,
                     rng.random(5) < 0.7]
            masks = [m if m.any() else np.ones_like(m) for m in masks]
            queries.append([fixed(m) for m in masks])
        batch_sampler = ProgressiveSampler(small_model, num_samples=3000,
                                           seed=6)
        batched = batch_sampler.estimate_batch(queries)
        for i, constraints in enumerate(queries):
            solo = ProgressiveSampler(small_model, num_samples=3000,
                                      seed=7 + i).estimate(constraints)
            assert batched[i] == pytest.approx(solo, rel=0.25, abs=0.02)

    def test_mixed_wildcards_in_batch(self, small_model):
        q1 = [fixed(np.array([True, False, True, True])), None, None]
        q2 = [None, None, fixed(np.array([True, True, False, False, True]))]
        sampler = ProgressiveSampler(small_model, num_samples=1500, seed=8)
        out = sampler.estimate_batch([q1, q2])
        assert out.shape == (2,)
        assert (out >= 0).all() and (out <= 1).all()


class TestScaledConstraints:
    def test_gain_scales_expectation(self, small_model):
        """A constant gain g must multiply the estimate by exactly g."""
        mask = np.ones(4, dtype=bool)
        gain = np.full(4, 0.25)
        plain = ProgressiveSampler(small_model, num_samples=800, seed=9)
        base = plain.estimate([fixed(np.array([True, True, False, False])),
                               None, None])
        scaled = ProgressiveSampler(small_model, num_samples=800, seed=9)
        est = scaled.estimate([
            ("scaled", mask, gain),
            None,
            fixed(np.array([True, True, False, False, True])),
        ])
        # E[0.25 * 1(region)] = 0.25 * P(region)
        ref = ProgressiveSampler(small_model, num_samples=3000, seed=10)
        unscaled = ref.estimate([
            fixed(mask), None,
            fixed(np.array([True, True, False, False, True]))])
        assert est == pytest.approx(0.25 * unscaled, rel=0.15)
        assert base >= 0  # smoke: plain path still works

    def test_value_dependent_gain(self, small_model):
        """E[g(X)] for g = 1/(code+1) against exact enumeration."""
        gain = 1.0 / (np.arange(4) + 1.0)
        sampler = ProgressiveSampler(small_model, num_samples=4000, seed=11)
        est = sampler.estimate([("scaled", np.ones(4, bool), gain),
                                None, None])
        # Exact: sum_v P(X0 = v) * g(v).
        domains = small_model.domain_sizes
        grids = np.meshgrid(*[np.arange(d) for d in domains], indexing="ij")
        tuples = np.stack([g.reshape(-1) for g in grids], axis=1)
        probs = np.exp(-small_model.nll_np(tuples))
        exact = float((probs * gain[tuples[:, 0]]).sum())
        assert est == pytest.approx(exact, rel=0.1)


class TestUniformSampler:
    def test_matches_progressive_in_expectation(self, small_model):
        masks = [np.array([True, True, True, False]),
                 np.array([True, True, False]), None]
        exact = exact_region_mass(small_model, masks)
        uniform = UniformSampler(small_model, num_samples=6000, seed=12)
        est = uniform.estimate([fixed(masks[0]), fixed(masks[1]), None])
        assert est == pytest.approx(exact, rel=0.35, abs=0.05)

    def test_empty_region(self, small_model):
        uniform = UniformSampler(small_model, num_samples=10, seed=13)
        assert uniform.estimate([fixed(np.zeros(4, bool)), None, None]) == 0.0

    def test_rejects_scaled(self, small_model):
        uniform = UniformSampler(small_model, num_samples=10, seed=14)
        with pytest.raises(NotImplementedError):
            uniform.estimate([("scaled", np.ones(4, bool), np.ones(4)),
                              None, None])
